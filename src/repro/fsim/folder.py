"""The local sync folder: an in-memory filesystem with change notification.

Every cloud storage client watches "a designated local folder ... in which
every file operation is noticed and synchronized to the cloud" (§1).
:class:`SyncFolder` is that folder: it holds :class:`~repro.content.Content`
per path, and each mutation emits a :class:`FileEvent` to subscribers (the
sync client engine) at the current simulated time.
"""

from __future__ import annotations

import enum

import numpy as np
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..content import Content, random_content
from ..simnet import Simulator


class FileOp(enum.Enum):
    """The paper's file-operation taxonomy (§2, Table 1), plus the
    metadata-only operations real sync folders also see."""

    CREATE = "create"
    MODIFY = "modify"
    DELETE = "delete"
    RENAME = "rename"


@dataclass(frozen=True)
class FileEvent:
    """One observed change in the sync folder."""

    time: float
    path: str
    op: FileOp
    size: int             # file size after the operation
    update_bytes: int     # altered bytes relative to the previous state
    old_path: Optional[str] = None  # source path for renames


class MissingFileError(KeyError):
    """Operation on a path that does not exist in the folder."""


class SyncFolder:
    """In-memory sync folder bound to a simulator clock."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._files: Dict[str, Content] = {}
        self._listeners: List[Callable[[FileEvent], None]] = []
        self.events: List[FileEvent] = []

    # -- subscription -------------------------------------------------------

    def subscribe(self, listener: Callable[[FileEvent], None]) -> None:
        """Register a watcher; called synchronously on every mutation."""
        self._listeners.append(listener)

    def _emit(self, path: str, op: FileOp, size: int, update_bytes: int) -> FileEvent:
        event = FileEvent(self.sim.now, path, op, size, update_bytes)
        self.events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    # -- reads --------------------------------------------------------------

    def get(self, path: str) -> Content:
        content = self._files.get(path)
        if content is None:
            raise MissingFileError(path)
        return content

    def exists(self, path: str) -> bool:
        return path in self._files

    def paths(self) -> List[str]:
        return sorted(self._files)

    def total_bytes(self) -> int:
        return sum(c.size for c in self._files.values())

    # -- mutations ------------------------------------------------------------

    def create(self, path: str, content: Content) -> FileEvent:
        """Place a new file in the folder (the paper's file creation)."""
        if path in self._files:
            raise FileExistsError(f"{path} already exists in the sync folder")
        self._files[path] = content
        return self._emit(path, FileOp.CREATE, content.size, content.size)

    def write(self, path: str, content: Content) -> FileEvent:
        """Replace a file's content wholesale."""
        old = self._files.get(path)
        if old is None:
            raise MissingFileError(path)
        self._files[path] = content
        update = _altered_bytes(old, content)
        return self._emit(path, FileOp.MODIFY, content.size, update)

    def append(self, path: str, extra: Content) -> FileEvent:
        """Append bytes — Experiment 6's "X KB/X sec" primitive."""
        old = self.get(path)
        new = old.append(extra)
        self._files[path] = new
        return self._emit(path, FileOp.MODIFY, new.size, extra.size)

    def modify_random_byte(self, path: str, seed: int = 0) -> FileEvent:
        """Experiment 3's primitive: flip one random byte in place."""
        old = self.get(path)
        new = old.modify_random_byte(seed=seed)
        self._files[path] = new
        return self._emit(path, FileOp.MODIFY, new.size, 1)

    def delete(self, path: str) -> FileEvent:
        old = self._files.pop(path, None)
        if old is None:
            raise MissingFileError(path)
        return self._emit(path, FileOp.DELETE, 0, 0)

    def create_empty(self, path: str) -> FileEvent:
        return self.create(path, random_content(0))

    def truncate(self, path: str, length: int) -> FileEvent:
        """Cut a file down to ``length`` bytes (log rotation, editors)."""
        old = self.get(path)
        if length < 0 or length > old.size:
            raise ValueError(f"cannot truncate {old.size}-byte file to {length}")
        new = old.slice(0, length)
        self._files[path] = new
        return self._emit(path, FileOp.MODIFY, new.size, old.size - length)

    def insert(self, path: str, offset: int, extra: Content) -> FileEvent:
        """Insert bytes mid-file — the workload rsync's rolling match exists
        for (every byte after ``offset`` shifts)."""
        old = self.get(path)
        if offset < 0 or offset > old.size:
            raise ValueError(f"offset {offset} outside file of {old.size} bytes")
        new = Content(old.data[:offset] + extra.data + old.data[offset:])
        self._files[path] = new
        return self._emit(path, FileOp.MODIFY, new.size, extra.size)

    def rename(self, old_path: str, new_path: str) -> FileEvent:
        """Move a file — content unchanged, so the update size is zero and a
        well-designed client syncs it as a metadata-only operation."""
        if new_path in self._files:
            raise FileExistsError(f"{new_path} already exists")
        content = self._files.pop(old_path, None)
        if content is None:
            raise MissingFileError(old_path)
        self._files[new_path] = content
        event = FileEvent(self.sim.now, new_path, FileOp.RENAME,
                          content.size, 0, old_path=old_path)
        self.events.append(event)
        for listener in self._listeners:
            listener(event)
        return event


    # -- remote application ---------------------------------------------------
    #
    # A download arriving from the cloud mutates the folder too, but it is
    # not a *local* update: it must neither wake the sync engine (it would
    # echo straight back up the wire) nor count into the data-update-size
    # denominator of TUE.  These applications therefore bypass _emit().

    def apply_remote(self, path: str, content: Content) -> None:
        """Install content delivered by the cloud without emitting an event."""
        self._files[path] = content

    def remove_remote(self, path: str) -> None:
        """Apply a remote deletion silently; missing paths are tolerated
        because a remote delete can race a local one."""
        self._files.pop(path, None)

    def rename_remote(self, old_path: str, new_path: str) -> None:
        """Apply a remote rename silently (content unchanged)."""
        content = self._files.pop(old_path, None)
        if content is None:
            raise MissingFileError(old_path)
        self._files[new_path] = content


def _altered_bytes(old: Content, new: Content) -> int:
    """Size of the altered region — the paper's *data update size*.

    For an in-place overwrite this is the number of differing bytes; growth
    or shrinkage counts the size difference as altered too.
    """
    common = min(old.size, new.size)
    if common == 0:
        differing = 0
    else:
        left = np.frombuffer(old.data, dtype=np.uint8, count=common)
        right = np.frombuffer(new.data, dtype=np.uint8, count=common)
        differing = int(np.count_nonzero(left != right))
    return differing + abs(old.size - new.size)

"""Local filesystem simulation: the sync folder and its change events."""

from .folder import FileEvent, FileOp, MissingFileError, SyncFolder

__all__ = ["FileEvent", "FileOp", "MissingFileError", "SyncFolder"]

"""repro — reproduction of "Towards Network-level Efficiency for Cloud
Storage Services" (Li et al., IMC 2014).

The package is organised as the paper is:

* :mod:`repro.core` — the TUE metric (Eq. 1), Experiments 1–7', Algorithm 1
  (dedup-granularity inference), and the sync-deferment probe;
* :mod:`repro.client` — the sync-client engine, the six service × three
  access-method design-choice profiles, hardware profiles (Table 4), and the
  defer policies including the paper's proposed ASD (Eq. 2);
* :mod:`repro.cloud` — the RESTful back-end substrate (object store, chunk
  mid-layer, metadata/versioning, dedup index, accounts);
* :mod:`repro.simnet` — the simulated measurement rig (event loop, links,
  TCP/TLS/HTTP cost model, Wireshark-style metering, network emulation);
* :mod:`repro.delta` — a real rsync implementation (rolling checksum,
  signatures, delta streams) powering incremental data sync;
* :mod:`repro.compress`, :mod:`repro.chunking`, :mod:`repro.content`,
  :mod:`repro.fsim` — compression levels, fingerprinting, deterministic
  content, and the local sync folder;
* :mod:`repro.trace` — the statistical twin of the paper's 153-user trace
  plus every trace analysis the paper reports.

Quick start::

    from repro import SyncSession, AccessMethod
    session = SyncSession("Dropbox", AccessMethod.PC)
    session.create_random_file("report.bin", 1024 * 1024)
    session.run_until_idle()
    print(session.total_traffic, session.tue())
"""

from .client import (
    AccessMethod,
    AdaptiveSyncDefer,
    ByteCounterDefer,
    FixedDefer,
    NoDefer,
    SERVICES,
    SyncClient,
    SyncSession,
    all_profiles,
    machine,
    service_profile,
)
from .core import tue
from .version import __version__

__all__ = [
    "AccessMethod",
    "AdaptiveSyncDefer",
    "ByteCounterDefer",
    "FixedDefer",
    "NoDefer",
    "SERVICES",
    "SyncClient",
    "SyncSession",
    "__version__",
    "all_profiles",
    "machine",
    "service_profile",
    "tue",
]

"""Shared-folder fan-out: commit interception, epochs, conflict naming.

A shared folder has one server-side namespace (all members sync as one
``user``) and many writers.  Every commit-shaped server call made by any
member passes through an origin-tagging proxy which, besides forwarding to
the real :class:`~repro.cloud.CloudServer`, announces the change to the
:class:`SharedFolderHub`.  The hub opens a **commit epoch** — a ledger entry
naming the origin, the path/version, and the members that were live at
commit time — then fans the notification out to every live member except
the origin.  Followers meter what the fan-out costs them; the ledger
accumulates the same bytes on the server side, which is exactly what the
``fanout-conservation`` audit invariant balances.

Write-write races resolve as deterministic Dropbox-style conflict copies:
``name (conflicted copy of <client>)`` (see :func:`conflict_copy_name`),
while path metadata stays last-writer-wins through the server's append-only
version log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING, Tuple

from ..cloud import CloudServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simnet import Simulator
    from .member import FleetMember

#: Reserved epoch tag for join-time backfill downloads: they move real
#: bytes but belong to no commit epoch, so the fan-out audit skips them.
EPOCH_BACKFILL = -1


def conflict_copy_name(path: str, member: str,
                       exists: Callable[[str], bool]) -> str:
    """Deterministic Dropbox-style conflict-copy name for ``path``.

    ``"w0/doc.bin"`` conflicted on ``client2`` becomes
    ``"w0/doc (conflicted copy of client2).bin"``; collisions append a
    counter (`` 2``, `` 3``, ...) until the name is free locally.
    """
    directory, sep, filename = path.rpartition("/")
    stem, dot, ext = filename.rpartition(".")
    if not dot or not stem:
        # Extensionless files, and dotfiles whose only dot leads the name:
        # ".gitignore" splits to an empty stem, but the lone leading dot
        # *is* the stem — the marker goes at the end, no extension
        # re-attached (otherwise the copy would be named
        # " (conflicted copy of ...).gitignore").
        stem, suffix = filename, ""
    else:
        suffix = f".{ext}"
    base = f"{directory}{sep}{stem} (conflicted copy of {member})"
    candidate = base + suffix
    counter = 2
    while exists(candidate):
        candidate = f"{base} {counter}{suffix}"
        counter += 1
    return candidate


@dataclass
class FanoutEpoch:
    """One committed change and its fan-out accounting.

    ``pushed_bytes`` accumulates the down-direction bytes the server pushed
    for this epoch — the notification frames plus every follower download
    (including failed attempts, whose bytes are just as real).  The same
    bytes are recorded on the follower side as ``fanout-notification`` span
    attributes, and the audit requires the two views to agree.
    """

    epoch: int
    origin: str
    path: str
    version: int
    kind: str                    # "commit" | "delete" | "rename"
    committed_at: float
    targets: Tuple[str, ...]     # live members other than the origin
    old_path: Optional[str] = None   # renames: the vacated path
    old_version: int = 0             # renames: the old path's tombstone
    pushed_bytes: int = 0
    deliveries: int = 0


class SharedFolderHub:
    """Fan-out of one shared folder's commits to its live members.

    Members register in join order and are notified in that order on every
    announce — a plain list walk, never set/dict iteration, so the event
    interleaving (and therefore every byte count) is a pure function of the
    seed.
    """

    def __init__(self, sim: "Simulator", server: CloudServer,
                 user: str = "shared", notification_delay: float = 0.2):
        self.sim = sim
        self.server = server
        self.user = user
        self.notification_delay = notification_delay
        self.members: List["FleetMember"] = []
        self._by_name: Dict[str, "FleetMember"] = {}
        self.ledger: List[FanoutEpoch] = []

    def register(self, member: "FleetMember") -> None:
        if member.name in self._by_name:
            raise ValueError(f"duplicate fleet member name {member.name!r}")
        self.members.append(member)
        self._by_name[member.name] = member

    def proxy_for(self, origin: str) -> "_OriginTaggingProxy":
        """The server handle a member's SyncClient should talk to."""
        return _OriginTaggingProxy(self.server, self, origin)

    def live_members(self) -> List["FleetMember"]:
        return [member for member in self.members if member.live]

    def announce(self, origin: str, path: str, version: int, kind: str,
                 old_path: Optional[str] = None,
                 old_version: int = 0) -> FanoutEpoch:
        """Open a commit epoch and notify every live member but the origin."""
        targets = [member for member in self.members
                   if member.live and member.name != origin]
        entry = FanoutEpoch(
            epoch=len(self.ledger), origin=origin, path=path, version=version,
            kind=kind, committed_at=self.sim.now,
            targets=tuple(member.name for member in targets),
            old_path=old_path, old_version=old_version)
        self.ledger.append(entry)
        origin_member = self._by_name.get(origin)
        if origin_member is not None:
            # Self-echo suppression: the origin already holds this version.
            origin_member.note_own_commit(entry)
        for member in targets:
            member.receive_notification(entry)
        return entry


class _OriginTaggingProxy:
    """Duck-typed :class:`CloudServer` handed to one member's SyncClient.

    Forwards the whole sync-session API; the four commit-shaped calls
    additionally announce the change to the hub tagged with the member that
    made it, which is what turns a private namespace into a shared folder.
    """

    def __init__(self, server: CloudServer, hub: SharedFolderHub, origin: str):
        self._server = server
        self._hub = hub
        self._origin = origin

    # -- pass-through (no fan-out) ----------------------------------------

    def set_time(self, now: float) -> None:
        self._server.set_time(now)

    def check_available(self, now=None) -> None:
        self._server.check_available(now)

    def negotiate(self, user, digests):
        return self._server.negotiate(user, digests)

    def resolve(self, user, digest):
        return self._server.resolve(user, digest)

    def upload_chunk(self, user, digest, data):
        return self._server.upload_chunk(user, digest, data)

    def download(self, user, path):
        return self._server.download(user, path)

    def head_version(self, user, path):
        return self._server.head_version(user, path)

    # -- commit-shaped calls (announced) ----------------------------------

    def commit(self, user, path, size, md5, chunk_digests, chunk_keys,
               stored_sizes):
        version = self._server.commit(user, path, size, md5, chunk_digests,
                                      chunk_keys, stored_sizes)
        self._hub.announce(self._origin, path, version.version, "commit")
        return version

    def apply_delta(self, user, path, delta, expected_md5):
        version = self._server.apply_delta(user, path, delta, expected_md5)
        self._hub.announce(self._origin, path, version.version, "commit")
        return version

    def delete_file(self, user, path):
        version = self._server.delete_file(user, path)
        self._hub.announce(self._origin, path, version.version, "delete")
        return version

    def rename_file(self, user, old_path, new_path):
        version = self._server.rename_file(user, old_path, new_path)
        old_version = self._server.head_version(user, old_path)
        self._hub.announce(self._origin, new_path, version.version, "rename",
                           old_path=old_path, old_version=old_version)
        return version

"""Fleet-scale shared-folder simulation on the deterministic scheduler.

Many concurrent :class:`~repro.client.SyncClient`s — each with its own
link, meter, and seeded RNG stream — interleave against one
:class:`~repro.cloud.CloudServer` through a single global event queue.
Commits fan out to collaborators, write-write races resolve as
deterministic conflict copies, and clients may join or leave mid-run.
"""

from .fleet import Fleet, schedule_writer_workload
from .member import FleetMember, MemberStats
from .report import FleetReport, MemberReport, fleet_tue
from .shared import (
    EPOCH_BACKFILL,
    FanoutEpoch,
    SharedFolderHub,
    conflict_copy_name,
)

__all__ = [
    "EPOCH_BACKFILL",
    "FanoutEpoch",
    "Fleet",
    "FleetMember",
    "FleetReport",
    "MemberReport",
    "MemberStats",
    "SharedFolderHub",
    "conflict_copy_name",
    "fleet_tue",
    "schedule_writer_workload",
]

"""Fleet-level traffic accounting: merged reports and fan-out amplification.

A fleet's TUE differs from a single session's: the numerator is every byte
any member moved (uploads *and* the fan-out downloads the cloud pushed to
the other N-1 members), while the denominator is only the *local* data
updates members actually made.  As collaborator count N grows, each commit
is paid for roughly N times — the TUE(N) amplification the collaboration
experiment sweeps.

Unlike :attr:`~repro.core.tue.TrafficReport.tue` (which raises on a zero
denominator because a per-session report should always have updates),
:func:`fleet_tue` follows the repo-wide rendering convention directly:
``nan`` when nothing happened at all, ``inf`` for traffic without updates
(pure-follower members are exactly that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..core.tue import TrafficReport


def fleet_tue(traffic: int, update: int) -> float:
    """TUE with the repo's nan/inf conventions instead of raising."""
    if update > 0:
        return traffic / update
    if traffic > 0:
        return math.inf
    return math.nan


@dataclass(frozen=True)
class MemberReport:
    """One member's traffic plus its follower-side counters."""

    name: str
    live: bool
    joined_at: float
    traffic: TrafficReport
    notifications: int
    fanout_fetches: int
    suppressed: int
    conflicts: int
    backfilled: int

    @property
    def tue(self) -> float:
        return fleet_tue(self.traffic.total, self.traffic.data_update_size)


@dataclass(frozen=True)
class FleetReport:
    """Whole-fleet accounting for one shared-folder run."""

    service: str
    clients: int
    members: Tuple[MemberReport, ...]
    commit_epochs: int
    fanout_pushed_bytes: int
    conflicts: int

    @property
    def update_bytes(self) -> int:
        """Σ local data updates across members (the TUE denominator)."""
        return int(sum(member.traffic.data_update_size
                       for member in self.members))

    @property
    def traffic_bytes(self) -> int:
        """Σ sync traffic across members (the TUE numerator)."""
        return int(sum(member.traffic.total for member in self.members))

    @property
    def merged(self) -> TrafficReport:
        """Field-wise sum of every member's traffic report."""
        return TrafficReport(
            up_payload=int(sum(m.traffic.up_payload for m in self.members)),
            up_overhead=int(sum(m.traffic.up_overhead for m in self.members)),
            down_payload=int(sum(m.traffic.down_payload
                                 for m in self.members)),
            down_overhead=int(sum(m.traffic.down_overhead
                                  for m in self.members)),
            data_update_size=self.update_bytes,
            up_wasted=int(sum(m.traffic.up_wasted for m in self.members)),
            down_wasted=int(sum(m.traffic.down_wasted
                                for m in self.members)),
        )

    @property
    def tue(self) -> float:
        return fleet_tue(self.traffic_bytes, self.update_bytes)

    def amplification(self, baseline: "FleetReport") -> float:
        """TUE(N) / TUE(baseline) — the fan-out amplification factor."""
        base = baseline.tue
        mine = self.tue
        if math.isnan(base) or math.isnan(mine) or base == 0:
            return math.nan
        return mine / base

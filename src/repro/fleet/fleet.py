"""Fleet assembly: N concurrent sync clients over one shared folder.

:class:`Fleet` is the collaboration-scale counterpart of
:class:`~repro.client.session.SyncSession`: one seeded
:class:`~repro.simnet.Simulator` (a calendar-queue event loop keyed by
``(time, seq)`` — the global scheduler), one
:class:`~repro.cloud.CloudServer`, one :class:`~repro.fleet.shared.
SharedFolderHub`, and per-member links/meters/engines.  Everything the run
does — notification interleaving, retry jitter, conflict-copy naming — is a
pure function of the constructor arguments, so ``Fleet(..., seed=S)`` is
byte-identical across reruns at any client count.

``domains=D`` shards the same simulation into ``D`` independently
schedulable event domains (a :class:`~repro.simnet.DomainScheduler`):
members are placed ``index % D``, each domain owns its members' queues,
and commit fan-out crosses domains as epoch-stamped messages.  Because
every event is stamped from one global epoch counter, the sharded run is
byte-identical to the ``domains=1`` run — same traffic totals, same span
streams, same rendered report (pinned by the differential tests in
``tests/test_fleet_sharded.py``).

Client churn composes with the rest: :meth:`Fleet.join` mid-run spawns a
member that backfills current server state, :meth:`FleetMember.leave`
drops a member out of all future fan-outs, and a
:class:`~repro.simnet.FaultSchedule` applies the same failure windows to
every member plus the server front door.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..client.hardware import M1, MachineProfile
from ..client.profiles import AccessMethod, ServiceProfile, service_profile
from ..client.retry import RetryPolicy
from ..cloud import CloudServer
from ..content import Content, random_content
from ..obs.recorder import TraceHub, current_hub, session_recorder
from ..simnet import (
    DomainScheduler,
    FaultInjector,
    FaultSchedule,
    LinkSpec,
    Simulator,
)
from ..units import KB
from .member import FleetMember
from .report import FleetReport, MemberReport
from .shared import SharedFolderHub


class Fleet:
    """N clients of one service collaborating on one shared folder."""

    def __init__(
        self,
        profile: Union[str, ServiceProfile],
        access: AccessMethod = AccessMethod.PC,
        clients: int = 2,
        machine: MachineProfile = M1,
        link_spec: Optional[LinkSpec] = None,
        seed: int = 0,
        notification_delay: float = 0.2,
        user: str = "shared",
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultSchedule] = None,
        record: bool = False,
        domains: int = 1,
    ):
        if isinstance(profile, str):
            profile = service_profile(profile, access)
        self.profile = profile
        self.machine = machine
        self.link_spec = link_spec
        self.seed = seed
        self.retry = retry
        self.faults = faults

        #: ``domains > 1`` shards the fleet into that many independently
        #: schedulable event domains (members placed ``index % domains``);
        #: every event is stamped from one global epoch counter, so the run
        #: is byte-identical to the single-queue run at any domain count.
        if domains < 1:
            raise ValueError(f"need at least one event domain (got {domains})")
        self.domains = domains
        if domains == 1:
            self.sim: Union[Simulator, DomainScheduler] = Simulator()
        else:
            self.sim = DomainScheduler(
                domains,
                trace_messages=record or current_hub() is not None)
        self.server = CloudServer(
            dedup=profile.dedup,
            storage_chunk_size=profile.storage_chunk_size,
            name=profile.name,
            backend=profile.storage_backend)
        self.server_faults: Optional[FaultInjector] = None
        if faults is not None:
            self.server_faults = FaultInjector(faults)
            self.server.attach_faults(self.server_faults)
        self.hub = SharedFolderHub(self.sim, self.server, user=user,
                                   notification_delay=notification_delay)
        #: An ambient recording context (``with recording(...)``) wins; the
        #: ``record`` flag otherwise stands up a private hub so audits can
        #: run without the caller managing one.
        self.trace_hub: Optional[TraceHub] = None
        if record and current_hub() is None:
            self.trace_hub = TraceHub()
        for _ in range(clients):
            self._spawn()

    # -- membership ---------------------------------------------------------

    @property
    def members(self) -> List[FleetMember]:
        return self.hub.members

    def live_members(self) -> List[FleetMember]:
        return self.hub.live_members()

    def _recorder(self, name: str):
        label = f"{self.profile.name}/{name}"
        if self.trace_hub is not None:
            return self.trace_hub.new_recorder(label)
        return session_recorder(label)

    def _spawn(self, name: Optional[str] = None) -> FleetMember:
        index = len(self.hub.members)
        name = name or f"client{index}"
        # Pure algorithmic placement (shard = f(UID)): join-order index
        # alone decides the domain, so churn keeps placement deterministic.
        sim = (self.sim.domain_for(index)
               if isinstance(self.sim, DomainScheduler) else self.sim)
        return FleetMember(
            hub=self.hub, index=index, name=name, profile=self.profile,
            machine=self.machine, link_spec=self.link_spec, seed=self.seed,
            retry=self.retry, fault_schedule=self.faults,
            recorder=self._recorder(name), sim=sim)

    def join(self, name: Optional[str] = None) -> FleetMember:
        """A client joins mid-run and backfills current shared state."""
        member = self._spawn(name)
        member.backfill()
        return member

    # -- execution ----------------------------------------------------------

    def run_until_idle(self, max_time: float = 1e7) -> float:
        return self.sim.run_until_idle(max_time)

    # -- inspection ---------------------------------------------------------

    def folder_state(self, member: FleetMember) -> Dict[str, str]:
        """path → md5 of one member's current folder (comparison key)."""
        return {path: member.folder.get(path).md5
                for path in member.folder.paths()}

    def converged(self) -> bool:
        """All live members hold identical folder state."""
        live = self.live_members()
        if len(live) < 2:
            return True
        reference = self.folder_state(live[0])
        return all(self.folder_state(member) == reference
                   for member in live[1:])

    def report(self) -> FleetReport:
        members = tuple(
            MemberReport(
                name=member.name, live=member.live,
                joined_at=member.joined_at,
                traffic=member.traffic_report(),
                notifications=member.stats.notifications,
                fanout_fetches=member.stats.fanout_fetches,
                suppressed=member.stats.suppressed,
                conflicts=member.stats.conflicts,
                backfilled=member.stats.backfilled,
            )
            for member in self.hub.members)
        return FleetReport(
            service=self.profile.name,
            clients=len(self.hub.members),
            members=members,
            commit_epochs=len(self.hub.ledger),
            fanout_pushed_bytes=int(sum(entry.pushed_bytes
                                        for entry in self.hub.ledger)),
            conflicts=int(sum(member.stats.conflicts
                              for member in self.hub.members)),
        )

    def audit(self) -> None:
        """Verify conservation plus the fan-out invariant; raise on failure.

        Requires the fleet to have been recording (``record=True`` or an
        ambient hub).
        """
        from ..obs.audit import (
            ConservationAuditor,
            audit_domain_protocol,
            audit_fleet_fanout,
        )

        recorders = [member.recorder for member in self.hub.members
                     if member.recorder is not None]
        auditor = ConservationAuditor()
        for recorder in recorders:
            auditor.audit(recorder)
        audit_fleet_fanout(self.hub.ledger, recorders)
        if isinstance(self.sim, DomainScheduler):
            audit_domain_protocol(self.sim)


def schedule_writer_workload(
    fleet: Fleet,
    writers: int,
    files_per_writer: int = 2,
    file_size: int = 64 * KB,
    spacing: float = 20.0,
    start: float = 1.0,
    seed: int = 0,
) -> int:
    """Stagger seeded file creations across the first ``writers`` members.

    Writes are spaced far enough apart (default 20 s against a 0.2 s
    notification delay) that each commit fans out fully before the next
    lands — the conflict-free regime the collaboration sweep measures.
    Returns the total bytes of data update scheduled.
    """
    if writers > len(fleet.members):
        raise ValueError(
            f"workload wants {writers} writers but fleet has "
            f"{len(fleet.members)} members")
    total = 0
    for round_index in range(files_per_writer):
        for index in range(writers):
            member = fleet.members[index]
            content = random_content(
                file_size, seed=seed * 100_003 + index * 1_000
                + round_index + 1)
            at = start + (round_index * writers + index) * spacing
            # Schedule through the member's own handle so a sharded fleet
            # keeps each writer's kickoff in the writer's domain.
            member.sim.schedule_at(at, member.folder.create,
                                   f"w{index}/doc{round_index}.bin", content)
            total += file_size
    return total

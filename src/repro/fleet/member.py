"""One fleet member: a full SyncClient plus the follower half of the folder.

Each member owns the same rig a :class:`~repro.client.SyncSession` would
assemble — folder, link, network emulator, meter, channel, client engine —
but its engine talks to the cloud through the hub's origin-tagging proxy,
and the member additionally *receives*: hub notifications land here, get a
metered notification frame immediately, and schedule a download one
notification delay later (serialised per member, like
:class:`~repro.client.devices.MirrorDevice`).

Remote application never echoes: folder mutations go through the silent
``apply_remote``/``remove_remote``/``rename_remote`` paths and the engine's
synced basis is kept consistent via ``absorb_remote``/``drop_remote``/
``move_remote``, so a download can never masquerade as a local update.

Race resolution (deterministic, documented in DESIGN.md):

* remote **commit** over a local pending edit → the local file moves to a
  :func:`~repro.fleet.shared.conflict_copy_name` conflict copy (whose own
  folder event re-queues the edit for upload) and the remote content takes
  the original path;
* remote **delete** under a local pending edit → the edit wins; the member
  forgets the synced basis so its next sync recreates the file;
* remote **rename** against local pending state → conflict copies for the
  edited source/occupied destination, then the move applies (metadata-only
  when the local bytes already match the server head, a download
  otherwise).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from ..client.engine import SyncClient
from ..client.hardware import M1, MachineProfile
from ..client.profiles import ServiceProfile
from ..client.retry import RetryPolicy
from ..cloud import NotFound, TransientError
from ..content import Content
from ..delta import compute_delta, compute_signature
from ..fsim import SyncFolder
from ..simnet import (
    FaultInjector,
    FaultSchedule,
    Link,
    LinkSpec,
    NetworkEmulator,
    TrafficMeter,
    TransferInterrupted,
    mn_link,
)
from .shared import EPOCH_BACKFILL, FanoutEpoch, SharedFolderHub, conflict_copy_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Union

    from ..obs.recorder import TraceRecorder
    from ..simnet import EventDomain, Simulator

    SimLike = Union[Simulator, EventDomain]

#: Wire framing of the small follower-side metadata exchanges.
_FETCH_META_UP = 300
_RENAME_META_UP, _RENAME_META_DOWN = 240, 160
_DELETE_META_UP, _DELETE_META_DOWN = 200, 150
#: Push notifications are at least a minimal frame even for services whose
#: profile reports no post-commit notify traffic (same floor as MirrorDevice).
_NOTIFY_FLOOR = 120


@dataclass
class MemberStats:
    """Counters describing one member's follower behaviour."""

    notifications: int = 0
    fanout_fetches: int = 0
    fanout_renames: int = 0
    suppressed: int = 0
    conflicts: int = 0
    fetch_giveups: int = 0
    backfilled: int = 0


class FleetMember:
    """A live participant in one shared folder."""

    #: Follower downloads survive faults with a seeded jittered backoff; a
    #: notification is one-shot, so after this many attempts it gives up
    #: (a later epoch for the path will bring the member back in sync).
    MAX_FETCH_ATTEMPTS = 8

    def __init__(
        self,
        hub: SharedFolderHub,
        index: int,
        name: str,
        profile: ServiceProfile,
        machine: MachineProfile = M1,
        link_spec: Optional[LinkSpec] = None,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        fault_schedule: Optional[FaultSchedule] = None,
        recorder: Optional["TraceRecorder"] = None,
        sim: Optional["SimLike"] = None,
    ):
        self.hub = hub
        #: The member's scheduling surface: the fleet-global simulator, or
        #: this member's :class:`~repro.simnet.EventDomain` when sharded.
        self.sim = sim if sim is not None else hub.sim
        self.index = index
        self.name = name
        self.profile = profile
        self.machine = machine
        self.live = True
        self.joined_at = self.sim.now
        self.left_at: Optional[float] = None

        self.link = Link(link_spec or mn_link())
        self.netem = NetworkEmulator(self.sim, self.link)
        self.meter = TrafficMeter()
        self.folder = SyncFolder(self.sim)
        self.recorder = recorder
        if recorder is not None:
            recorder.bind_meter(self.meter)
            hub.server.attach_recorder(recorder)
        #: Per-member seeded stream (fetch-backoff jitter) — one
        #: ``random.Random`` per client per REP002, keyed off seed + index.
        self.rng = random.Random(seed * 1_000_003 + index)
        #: Injectors are stateful, so each member gets its own bound to the
        #: shared schedule; the same failure windows hit the whole fleet.
        self.faults = (FaultInjector(fault_schedule)
                       if fault_schedule is not None else None)
        self.client = SyncClient(
            sim=self.sim, folder=self.folder, server=hub.proxy_for(name),
            profile=profile, machine=machine, link=self.link, meter=self.meter,
            user=hub.user, retry=retry, faults=self.faults, recorder=recorder)
        self.channel = self.client.channel

        self.stats = MemberStats()
        #: path → newest version this member has locally applied or
        #: originated; the follower's re-download suppression state.
        self._versions: Dict[str, int] = {}
        self._busy_until = 0.0
        self._update_bytes = 0
        self.folder.subscribe(self._track_update)
        hub.register(self)

    def _track_update(self, event) -> None:
        self._update_bytes += event.update_bytes

    # -- membership ---------------------------------------------------------

    def leave(self) -> None:
        """Leave the folder: no further notifications, fetches, or uploads."""
        self.live = False
        self.left_at = self.sim.now
        for path in self.client.pending_paths():
            self.client.discard_pending(path)

    # -- origin bookkeeping --------------------------------------------------

    def note_own_commit(self, entry: FanoutEpoch) -> None:
        """Record versions this member itself just pushed (no self-echo)."""
        self._versions[entry.path] = max(
            self._versions.get(entry.path, 0), entry.version)
        if entry.old_path is not None:
            self._versions[entry.old_path] = max(
                self._versions.get(entry.old_path, 0), entry.old_version)

    # -- notification intake -------------------------------------------------

    def receive_notification(self, entry: FanoutEpoch) -> None:
        """The server pushes a notification frame at commit time."""
        self.stats.notifications += 1
        before = self.meter.snapshot()
        self.channel.notify(max(self.profile.overhead.notify_down,
                                _NOTIFY_FLOOR))
        delta = self.meter.since(before)
        entry.pushed_bytes += delta.down_total
        if self.recorder is not None:
            now = self.sim.now
            self.recorder.record_span(
                "fanout-notification", "notify", f"fleet:{self.name}",
                now, now, epoch=entry.epoch, origin=entry.origin,
                path=entry.path, member=self.name,
                down_bytes=delta.down_total)
        self.sim.schedule(self.hub.notification_delay,
                          self._fetch_entry, entry)

    def _fetch_entry(self, entry: FanoutEpoch) -> None:
        if not self.live:
            return
        start = max(self.sim.now, self._busy_until)
        self.sim.schedule_at(start, self._apply_entry, entry)

    def _apply_entry(self, entry: FanoutEpoch) -> None:
        if not self.live:
            return
        before = self.meter.snapshot()
        try:
            applied, duration = self._apply(entry)
        except (TransientError, TransferInterrupted) as error:
            # Retries exhausted: whatever the failed attempts burned is on
            # the meter (and in the epoch ledger); a later epoch for this
            # path will re-converge the member.
            self.stats.fetch_giveups += 1
            delta = self.meter.since(before)
            entry.pushed_bytes += delta.down_total
            if self.recorder is not None:
                now = self.sim.now
                self.recorder.record_span(
                    "fanout-notification", "give-up", f"fleet:{self.name}",
                    now, now, epoch=entry.epoch, origin=entry.origin,
                    path=entry.path, member=self.name,
                    down_bytes=delta.down_total, error=str(error))
            return
        delta = self.meter.since(before)
        entry.pushed_bytes += delta.down_total
        if not applied:
            self.stats.suppressed += 1
            return
        entry.deliveries += 1
        self.stats.fanout_fetches += 1
        if self.recorder is not None:
            now = self.sim.now
            self.recorder.record_span(
                "fanout-notification", "fetch", f"fleet:{self.name}",
                now, now + duration, epoch=entry.epoch, origin=entry.origin,
                path=entry.path, member=self.name,
                down_bytes=delta.down_total, up_bytes=delta.up_total)
        self._busy_until = self.sim.now + duration

    # -- remote-change application -------------------------------------------

    def _apply(self, entry: FanoutEpoch):
        if entry.kind == "delete":
            return self._apply_delete(entry)
        if entry.kind == "rename":
            return self._apply_rename(entry)
        return self._apply_commit(entry)

    def _apply_commit(self, entry: FanoutEpoch):
        path = entry.path
        if self._versions.get(path, 0) >= entry.version:
            return False, 0.0
        if self.client.has_pending(path):
            if self.folder.exists(path):
                self._conflict_copy(path, entry, "write-write")
            else:
                # Local pending delete races a remote write: the write wins
                # (the deletion never reached the cloud).
                self.client.discard_pending(path)
                self._note_conflict(entry, "delete-write", path, None)
        return True, self._download(path, entry.version, entry.epoch)

    def _apply_delete(self, entry: FanoutEpoch):
        path = entry.path
        if self._versions.get(path, 0) >= entry.version:
            return False, 0.0
        self._versions[path] = entry.version
        if self.client.has_pending(path) and self.folder.exists(path):
            # Local edit wins over the remote delete: keep the file and its
            # pending upload; the recommit fans the content back out.
            self.client.drop_remote(path)
            self._note_conflict(entry, "delete-edit", path, None)
            return True, 0.0
        self.client.discard_pending(path)
        self.folder.remove_remote(path)
        self.client.drop_remote(path)
        duration = self._fanout_exchange(
            up_meta=_DELETE_META_UP, down_meta=_DELETE_META_DOWN,
            kind="delete-sync")
        return True, duration

    def _apply_rename(self, entry: FanoutEpoch):
        old, new = entry.old_path, entry.path
        assert old is not None
        changed = False
        duration = 0.0
        if self._versions.get(new, 0) < entry.version:
            if self.client.has_pending(new) and self.folder.exists(new):
                self._conflict_copy(new, entry, "rename-write")
            if self.client.has_pending(old):
                if self.folder.exists(old):
                    # A local edit of the moved file becomes a conflict
                    # copy; the rename itself then applies cleanly.
                    self._conflict_copy(old, entry, "rename-edit")
                else:
                    self.client.discard_pending(old)
                self.client.drop_remote(old)
            try:
                head_md5 = self.hub.server.metadata.head(
                    self.hub.user, new).md5
            except NotFound:
                head_md5 = None
            if (head_md5 is not None and self.folder.exists(old)
                    and self.folder.get(old).md5 == head_md5):
                # The local bytes are already the server head: apply the
                # move as pure metadata, mirroring the origin's exchange.
                self.folder.rename_remote(old, new)
                self.client.move_remote(old, new)
                duration += self._fanout_exchange(
                    up_meta=_RENAME_META_UP, down_meta=_RENAME_META_DOWN,
                    kind="fanout-rename")
                self._versions[new] = max(
                    entry.version,
                    self.hub.server.head_version(self.hub.user, new))
                self.stats.fanout_renames += 1
            else:
                duration += self._download(new, entry.version, entry.epoch)
            changed = True
        # The vacated path's tombstone may still need applying locally even
        # when the destination was already up to date.
        if self._versions.get(old, 0) < entry.old_version:
            self._versions[old] = entry.old_version
            if self.folder.exists(old) and not self.client.has_pending(old):
                self.folder.remove_remote(old)
                self.client.drop_remote(old)
                changed = True
        return changed, duration

    def _download(self, path: str, version: int, epoch: int) -> float:
        """Bring ``path`` to the server head, delta-encoded when possible."""
        server = self.hub.server
        try:
            data = server.download(self.hub.user, path)
        except NotFound:
            # Tombstoned between commit and fetch: the deletion's own epoch
            # removes the local copy, so only suppress this version.
            self._versions[path] = max(self._versions.get(path, 0), version)
            return 0.0
        content = Content(data)
        old = self.folder.get(path) if self.folder.exists(path) else None
        if self.profile.uses_ids and old is not None and old.size > 0:
            signature = compute_signature(old.data, self.profile.delta_block)
            delta = compute_delta(signature, content.data)
            literals = b"".join(op.data for op in delta.ops
                                if hasattr(op, "data"))
            wire = (self.profile.download_compression.wire_size(
                Content(literals)) + (delta.wire_size - len(literals)))
        else:
            wire = self.profile.download_compression.wire_size(content)
        duration = self._fanout_exchange(
            up_meta=_FETCH_META_UP, down_payload=wire,
            down_meta=self.profile.overhead.meta_down // 2,
            kind="fanout-delta" if old is not None and self.profile.uses_ids
            and old.size > 0 else "fanout-download")
        self.folder.apply_remote(path, content)
        self.client.absorb_remote(path, content)
        # Record the head actually delivered, not just the notified
        # version: two commits inside one notification delay must not
        # trigger a second identical download (same contract as
        # MirrorDevice._download_now).
        self._versions[path] = max(
            version, server.head_version(self.hub.user, path))
        return duration

    def _fanout_exchange(self, kind: str = "fanout-download",
                         **kwargs) -> float:
        """One follower-side exchange, retried under a seeded backoff."""
        duration = 0.0
        attempt = 0
        while True:
            try:
                self.hub.server.check_available(self.channel.effective_now())
                return duration + self.channel.exchange(kind=kind, **kwargs)
            except (TransientError, TransferInterrupted) as error:
                if isinstance(error, TransientError):
                    # A rejected request still burns its framing.
                    error.elapsed = self.channel.error_exchange(
                        kind=kind + "-rejected")
                attempt += 1
                if attempt >= self.MAX_FETCH_ATTEMPTS:
                    raise
                wait = min(0.5 * (2 ** (attempt - 1)), 20.0) \
                    * (0.75 + 0.5 * self.rng.random())
                retry_at = getattr(error, "retry_at", None)
                if retry_at is not None:
                    wait = max(wait, retry_at - self.channel.effective_now())
                if self.recorder is not None:
                    at = self.channel.effective_now()
                    self.recorder.record_span(
                        "retry-attempt", type(error).__name__,
                        f"fleet:{self.name}", at, at + wait,
                        attempt=attempt, wait=wait, error=str(error))
                self.channel.wait(wait)
                duration += getattr(error, "elapsed", 0.0) + wait

    # -- conflict copies -----------------------------------------------------

    def _conflict_copy(self, path: str, entry: FanoutEpoch,
                       flavor: str) -> None:
        """Move the locally-edited file aside under a deterministic name.

        The rename's own folder event re-queues the local edit (the engine
        carries the pending state to the conflict path), and discarding the
        original path's pending entry hands that path to the remote
        content.
        """
        conflict_path = conflict_copy_name(path, self.name,
                                           self.folder.exists)
        self.folder.rename(path, conflict_path)
        self.client.discard_pending(path)
        self._note_conflict(entry, flavor, path, conflict_path)

    def _note_conflict(self, entry: FanoutEpoch, flavor: str, path: str,
                       conflict_path: Optional[str]) -> None:
        self.stats.conflicts += 1
        if self.recorder is not None:
            now = self.sim.now
            self.recorder.record_span(
                "conflict-resolved", flavor, f"fleet:{self.name}", now, now,
                epoch=entry.epoch, origin=entry.origin, path=path,
                conflict_path=conflict_path, member=self.name)

    # -- join-time catch-up ----------------------------------------------------

    def backfill(self) -> None:
        """Download every live shared path (a client joining mid-run)."""
        server = self.hub.server
        total = 0.0
        for path in server.metadata.list_paths(self.hub.user):
            before = self.meter.snapshot()
            head = server.head_version(self.hub.user, path)
            try:
                total += self._download(path, head, EPOCH_BACKFILL)
            except (TransientError, TransferInterrupted) as error:
                self.stats.fetch_giveups += 1
                delta = self.meter.since(before)
                if self.recorder is not None:
                    now = self.sim.now
                    self.recorder.record_span(
                        "fanout-notification", "give-up",
                        f"fleet:{self.name}", now, now,
                        epoch=EPOCH_BACKFILL, path=path, member=self.name,
                        down_bytes=delta.down_total, error=str(error))
                continue
            delta = self.meter.since(before)
            self.stats.backfilled += 1
            if self.recorder is not None:
                now = self.sim.now
                self.recorder.record_span(
                    "fanout-notification", "backfill", f"fleet:{self.name}",
                    now, now, epoch=EPOCH_BACKFILL, path=path,
                    member=self.name, down_bytes=delta.down_total)
        self._busy_until = self.sim.now + total

    # -- measurement -----------------------------------------------------------

    @property
    def data_update_bytes(self) -> int:
        """This member's accumulated *local* data update size (remote
        applications are silent and never count)."""
        return self._update_bytes

    def traffic_report(self):
        """Per-member :class:`~repro.core.tue.TrafficReport`."""
        from ..core.tue import TrafficReport  # local: core imports client

        return TrafficReport.from_meter(self.meter, self._update_bytes)

"""Observability: wire-level event tracing and byte-conservation auditing.

The paper's methodology rests on trusting a packet capture — every TUE,
overhead-split, and deferment number is a Wireshark ledger read at the
client's NIC.  Our :class:`~repro.simnet.meter.TrafficMeter` plays that
role, and this package is the instrument that makes it trustworthy:

* :class:`TraceRecorder` — a ledger of typed spans (connect, exchange,
  retry-attempt, defer-window, dedup-hit, fault-episode, sync-transaction)
  emitted by the channel, the client engine, and the cloud server, each
  carrying start/end sim-time and the meter delta it produced;
* :class:`ConservationAuditor` — replays a recorder and asserts the
  invariants that make the meter a faithful capture (span deltas sum to
  meter totals, wire bytes match the packetisation model, wasted is a
  decomposition, clocks are monotone), raising structured
  :class:`AuditViolation` errors that name the offending span;
* :func:`recording` — an ambient :class:`TraceHub` context so every
  experiment (1–8) and CLI command can run traced/audited without any
  signature changes, at near-zero overhead when disabled (a single
  ``is None`` check per wire event).
"""

from .audit import (
    AuditViolation,
    ConservationAuditor,
    audit_domain_protocol,
    audit_fleet_fanout,
    audit_hub,
    audit_replay_report,
    audit_rest_ledger,
    verify_fleet_fanout,
    verify_replay_merge,
    verify_replay_report,
    verify_rest_ledger,
)
from .recorder import (
    BUNDLE_COMMIT,
    CONNECT,
    DEDUP_HIT,
    DEFER_WINDOW,
    DELTA_EXCHANGE,
    EXCHANGE,
    FAULT_EPISODE,
    METER_RESET,
    RETRY_ATTEMPT,
    SPAN_KINDS,
    STRATEGY_SELECT,
    SYNC_TRANSACTION,
    WIRE_KINDS,
    PhaseStat,
    Span,
    TraceHub,
    TraceRecorder,
    current_hub,
    load_jsonl,
    recording,
    session_recorder,
)

__all__ = [
    "AuditViolation",
    "BUNDLE_COMMIT",
    "CONNECT",
    "ConservationAuditor",
    "DEDUP_HIT",
    "DEFER_WINDOW",
    "DELTA_EXCHANGE",
    "EXCHANGE",
    "FAULT_EPISODE",
    "METER_RESET",
    "PhaseStat",
    "RETRY_ATTEMPT",
    "SPAN_KINDS",
    "STRATEGY_SELECT",
    "SYNC_TRANSACTION",
    "Span",
    "TraceHub",
    "TraceRecorder",
    "WIRE_KINDS",
    "audit_domain_protocol",
    "audit_fleet_fanout",
    "audit_hub",
    "audit_replay_report",
    "audit_rest_ledger",
    "current_hub",
    "load_jsonl",
    "recording",
    "session_recorder",
    "verify_fleet_fanout",
    "verify_replay_merge",
    "verify_replay_report",
    "verify_rest_ledger",
]

"""Typed span ledger for wire-level event tracing.

A :class:`TraceRecorder` collects :class:`Span` entries emitted by the
channel, the sync engine, and the cloud server.  Spans come in two
families:

* **wire spans** (``connect``, ``exchange``) — every call that puts bytes
  on the metered wire produces exactly one, carrying the
  :class:`~repro.simnet.meter.MeterSnapshot` delta it caused plus the
  model inputs (payload/wire byte counts) needed to recompute the
  packetisation arithmetic independently;
* **logical spans** (``retry-attempt``, ``defer-window``, ``dedup-hit``,
  ``fault-episode``, ``sync-transaction``, ``meter-reset``,
  ``strategy-select``, ``delta-exchange``) — zero-cost markers that
  explain *why* the wire spans look the way they do.

Emitters never import this module: they duck-type on an injected recorder
object and use plain-string kinds, so tracing adds a single ``is None``
check per event when disabled and cannot create import cycles.

The ambient :class:`TraceHub` (installed by :func:`recording`) lets
experiment code that builds its sessions internally pick up a recorder per
session without any signature changes.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..simnet.meter import MeterSnapshot, TrafficMeter

#: Span kinds.  Wire spans carry a meter delta; logical spans explain them.
CONNECT = "connect"
EXCHANGE = "exchange"
RETRY_ATTEMPT = "retry-attempt"
DEFER_WINDOW = "defer-window"
DEDUP_HIT = "dedup-hit"
FAULT_EPISODE = "fault-episode"
SYNC_TRANSACTION = "sync-transaction"
METER_RESET = "meter-reset"
CONFLICT_RESOLVED = "conflict-resolved"
FANOUT_NOTIFICATION = "fanout-notification"
BUNDLE_COMMIT = "bundle-commit"
STRATEGY_SELECT = "strategy-select"
DELTA_EXCHANGE = "delta-exchange"

WIRE_KINDS = frozenset({CONNECT, EXCHANGE})
SPAN_KINDS = WIRE_KINDS | frozenset({
    RETRY_ATTEMPT, DEFER_WINDOW, DEDUP_HIT, FAULT_EPISODE,
    SYNC_TRANSACTION, METER_RESET, CONFLICT_RESOLVED, FANOUT_NOTIFICATION,
    BUNDLE_COMMIT, STRATEGY_SELECT, DELTA_EXCHANGE,
})


@dataclass(frozen=True)
class Span:
    """One traced interval: ``[start, end]`` in sim-time plus its evidence.

    ``delta`` is the meter movement the span produced (``None`` for
    zero-cost logical spans); ``attrs`` holds the emitter's model inputs
    (JSON-serialisable scalars only) so the auditor can recompute the wire
    arithmetic without trusting the meter.
    """

    index: int
    kind: str
    name: str
    source: str
    start: float
    end: float
    delta: Optional[MeterSnapshot] = None
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def wire(self) -> bool:
        return self.kind in WIRE_KINDS

    def describe(self) -> str:
        return (f"span #{self.index} {self.kind}/{self.name} "
                f"[{self.start:.3f}, {self.end:.3f}] from {self.source}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "name": self.name,
            "source": self.source,
            "start": self.start,
            "end": self.end,
            "delta": asdict(self.delta) if self.delta is not None else None,
            "attrs": dict(self.attrs),
        }


@dataclass
class PhaseStat:
    """Aggregated timing/bytes for one (kind, name) phase of a trace."""

    kind: str
    name: str
    events: int = 0
    seconds: float = 0.0
    up_bytes: int = 0
    down_bytes: int = 0
    wasted_bytes: int = 0

    def absorb(self, other: "PhaseStat") -> None:
        self.events += other.events
        self.seconds += other.seconds
        self.up_bytes += other.up_bytes
        self.down_bytes += other.down_bytes
        self.wasted_bytes += other.wasted_bytes


class TraceRecorder:
    """Ordered ledger of spans for one session (one meter)."""

    def __init__(self, label: str = "session",
                 meter: Optional[TrafficMeter] = None) -> None:
        self.label = label
        self.meter = meter
        self.spans: List[Span] = []
        #: Exported totals, used instead of a live meter after JSONL reload.
        self.totals: Optional[MeterSnapshot] = None

    def bind_meter(self, meter: TrafficMeter) -> None:
        self.meter = meter

    def record_span(self, kind: str, name: str, source: str,
                    start: float, end: float,
                    delta: Optional[MeterSnapshot] = None,
                    **attrs: Any) -> Span:
        if kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {kind!r}")
        span = Span(len(self.spans), kind, name, source,
                    float(start), float(end), delta, attrs)
        self.spans.append(span)
        return span

    def note_reset(self, time: float) -> Span:
        """Mark a meter reset: spans before this point belong to a closed
        accounting epoch and are no longer reflected in meter totals."""
        return self.record_span(METER_RESET, "reset", "meter", time, time)

    # -- views ------------------------------------------------------------

    def wire_spans(self) -> List[Span]:
        return [span for span in self.spans if span.wire]

    def final_epoch_wire_spans(self) -> List[Span]:
        """Wire spans emitted after the last meter reset (the only epoch
        the live meter totals still describe)."""
        epoch_start = 0
        for span in self.spans:
            if span.kind == METER_RESET:
                epoch_start = span.index + 1
        return [span for span in self.spans[epoch_start:] if span.wire]

    def final_totals(self) -> Optional[MeterSnapshot]:
        if self.meter is not None:
            return self.meter.snapshot()
        return self.totals

    def phase_breakdown(self) -> List[PhaseStat]:
        """Per-(kind, name) totals: event count, wall time, wire bytes.

        Byte columns count wire spans only — logical spans (e.g. a
        sync-transaction wrapping several exchanges) would double-count.
        """
        stats: Dict[Tuple[str, str], PhaseStat] = {}
        for span in self.spans:
            if span.kind == METER_RESET:
                continue
            stat = stats.setdefault((span.kind, span.name),
                                    PhaseStat(span.kind, span.name))
            stat.events += 1
            stat.seconds += max(span.duration, 0.0)
            if span.wire and span.delta is not None:
                stat.up_bytes += span.delta.up_total
                stat.down_bytes += span.delta.down_total
                stat.wasted_bytes += span.delta.wasted
        return sorted(stats.values(), key=lambda s: (s.kind, s.name))


class TraceHub:
    """A bag of recorders, one per session, sharing one trace context."""

    def __init__(self) -> None:
        self.recorders: List[TraceRecorder] = []

    def new_recorder(self, label: str = "session") -> TraceRecorder:
        recorder = TraceRecorder(f"{label}#{len(self.recorders)}")
        self.recorders.append(recorder)
        return recorder

    @property
    def span_count(self) -> int:
        return sum(len(recorder.spans) for recorder in self.recorders)

    def phase_breakdown(self) -> List[PhaseStat]:
        merged: Dict[Tuple[str, str], PhaseStat] = {}
        for recorder in self.recorders:
            for stat in recorder.phase_breakdown():
                merged.setdefault((stat.kind, stat.name),
                                  PhaseStat(stat.kind, stat.name)).absorb(stat)
        return sorted(merged.values(), key=lambda s: (s.kind, s.name))

    # -- JSONL export ------------------------------------------------------

    def to_jsonl(self, path: str) -> None:
        """One line per span, preceded by a per-session header carrying the
        final meter totals so an exported trace stays auditable."""
        with open(path, "w", encoding="utf-8") as stream:
            for recorder in self.recorders:
                totals = recorder.final_totals()
                stream.write(json.dumps({
                    "type": "session",
                    "session": recorder.label,
                    "totals": asdict(totals) if totals is not None else None,
                }) + "\n")
                for span in recorder.spans:
                    line = span.to_dict()
                    line["type"] = "span"
                    line["session"] = recorder.label
                    stream.write(json.dumps(line) + "\n")

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceHub":
        hub = cls()
        current: Optional[TraceRecorder] = None
        for entry in _read_jsonl_entries(path):
            if entry["type"] == "session":
                current = TraceRecorder(entry["session"])
                if entry["totals"] is not None:
                    current.totals = MeterSnapshot(**entry["totals"])
                hub.recorders.append(current)
                continue
            if current is None:
                raise ValueError("span line before any session header")
            delta = (MeterSnapshot(**entry["delta"])
                     if entry["delta"] is not None else None)
            current.spans.append(Span(
                entry["index"], entry["kind"], entry["name"], entry["source"],
                entry["start"], entry["end"], delta, entry.get("attrs", {})))
        return hub


def _read_jsonl_entries(path: str) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def load_jsonl(path: str) -> "TraceHub":
    """Load an exported span trace back into an auditable ``TraceHub``."""
    return TraceHub.from_jsonl(path)


# -- ambient hub ----------------------------------------------------------
#
# Experiments build their SyncSessions internally, so tracing is opted into
# ambiently: ``with recording() as hub:`` installs a hub; every session
# constructed inside the block asks session_recorder() for a recorder.
# When no hub is installed the answer is None and every emitter reduces to
# one ``is None`` check — the overhead-when-disabled guarantee.

_HUB: Optional[TraceHub] = None


def current_hub() -> Optional[TraceHub]:
    return _HUB


def session_recorder(label: str = "session") -> Optional[TraceRecorder]:
    """A fresh recorder from the ambient hub, or None when not recording."""
    if _HUB is None:
        return None
    return _HUB.new_recorder(label)


@contextmanager
def recording(hub: Optional[TraceHub] = None, audit: bool = False,
              jsonl: Optional[str] = None) -> Iterator[TraceHub]:
    """Install an ambient :class:`TraceHub` for the duration of the block.

    ``jsonl`` exports the trace on exit (even after an exception, for
    post-mortems); ``audit=True`` runs the full conservation audit on
    normal exit and raises :class:`~repro.obs.audit.AuditViolation` on the
    first broken invariant.
    """
    global _HUB
    active = hub if hub is not None else TraceHub()
    previous = _HUB
    _HUB = active
    try:
        yield active
    finally:
        _HUB = previous
        if jsonl is not None:
            active.to_jsonl(jsonl)
    if audit:
        from .audit import audit_hub
        audit_hub(active)

"""Byte-conservation auditing over a recorded trace.

The auditor replays a :class:`~repro.obs.recorder.TraceRecorder` and
asserts the invariants that make the :class:`~repro.simnet.meter.TrafficMeter`
a trustworthy stand-in for the paper's Wireshark capture:

``span-sanity``
    Every span has ``end >= start``; every wire span carries a
    non-negative meter delta with ``wasted <= total`` per direction.
``monotone-clock``
    Wire spans from one channel start in non-decreasing sim-time order —
    a channel cannot put bytes on the wire in the past.
``wire-packetisation``
    For every wire span, the meter delta equals the packetisation model
    recomputed from the span's own inputs: forward bytes are
    ``wire + per-packet headers + retransmissions`` and the reverse
    direction carries the ACK stream, exactly as
    :meth:`repro.simnet.link.Link.wire_cost` defines them.
``sum-conservation``
    The wire spans of the final accounting epoch (after the last meter
    reset) sum — field by field, including record count — to the meter's
    live totals.  Every metered byte is explained by exactly one span.
``kind-conservation``
    Per-kind payload/overhead/wasted totals sum to the meter-wide
    counters and respect ``wasted <= total`` within each kind.
``bundle-conservation``
    Every bundled small-file commit explains its wire bytes file by file:
    the ``bundle-commit`` logical span's per-file ledger sums to its
    payload, and across the trace the ledger totals equal the payload of
    the ``bundle-commit`` wire exchanges — no byte rides a bundle
    unattributed.
``strategy-conservation``
    Every strategy-routed transfer explains its payload: each
    ``delta-exchange`` logical span's claimed ``payload`` is non-negative
    and bounded by its measured ``wire_bytes``, and per strategy the
    ledger sums equal the upstream payload of the wire exchanges the
    strategy declared it speaks through (its ``wire_names``) — no byte
    rides a sync strategy unattributed, and no two strategies claim the
    same exchange vocabulary.
``replay-conservation`` (:func:`verify_replay_report`)
    A :class:`~repro.trace.replay.ReplayReport`'s per-user counters sum
    to its merged totals and every decomposition stays within bounds;
    :func:`verify_replay_merge` checks shard reports add up to a merged
    report counter by counter.
``rest-conservation`` (:func:`verify_rest_ledger`)
    An :class:`~repro.cloud.object_store.ObjectStore`'s op ledger balances
    against its physical state: lifetime ``put_bytes`` minus reclaimed
    (deleted + overwritten) bytes equals the bytes currently stored.

Violations are reported as structured :class:`AuditViolation` errors
naming the invariant and the offending span.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..simnet.link import Link
from .recorder import Span, TraceHub, TraceRecorder


class AuditViolation(Exception):
    """A broken conservation invariant, pinned to the span that broke it."""

    def __init__(self, invariant: str, message: str,
                 span: Optional[Span] = None,
                 session: Optional[str] = None) -> None:
        self.invariant = invariant
        self.span = span
        self.session = session
        where = f" at {span.describe()}" if span is not None else ""
        who = f" (session {session})" if session else ""
        super().__init__(f"[{invariant}]{who} {message}{where}")


class ConservationAuditor:
    """Replays a recorder's span ledger and checks every invariant."""

    def verify(self, recorder: TraceRecorder) -> List[AuditViolation]:
        """All violations in ``recorder``, empty when the trace is clean."""
        violations: List[AuditViolation] = []
        violations.extend(self._check_span_sanity(recorder))
        violations.extend(self._check_monotone_clocks(recorder))
        violations.extend(self._check_wire_math(recorder))
        violations.extend(self._check_sum_conservation(recorder))
        violations.extend(self._check_kind_conservation(recorder))
        violations.extend(self._check_bundle_conservation(recorder))
        violations.extend(self._check_strategy_conservation(recorder))
        return violations

    def audit(self, recorder: TraceRecorder) -> None:
        """Raise the first violation found, if any."""
        violations = self.verify(recorder)
        if violations:
            raise violations[0]

    # -- invariants -------------------------------------------------------

    def _check_span_sanity(self, recorder: TraceRecorder) -> List[AuditViolation]:
        out: List[AuditViolation] = []
        for span in recorder.spans:
            if span.end < span.start:
                out.append(AuditViolation(
                    "span-sanity", f"end {span.end:.3f} precedes start "
                    f"{span.start:.3f}", span, recorder.label))
            if not span.wire:
                continue
            delta = span.delta
            if delta is None:
                out.append(AuditViolation(
                    "span-sanity", "wire span carries no meter delta",
                    span, recorder.label))
                continue
            for name in ("up_payload", "up_overhead", "up_wasted",
                         "down_payload", "down_overhead", "down_wasted",
                         "record_count"):
                if getattr(delta, name) < 0:
                    out.append(AuditViolation(
                        "span-sanity", f"negative delta field {name}",
                        span, recorder.label))
            if delta.up_wasted > delta.up_total:
                out.append(AuditViolation(
                    "span-sanity",
                    f"up wasted {delta.up_wasted} exceeds up total "
                    f"{delta.up_total}", span, recorder.label))
            if delta.down_wasted > delta.down_total:
                out.append(AuditViolation(
                    "span-sanity",
                    f"down wasted {delta.down_wasted} exceeds down total "
                    f"{delta.down_total}", span, recorder.label))
        return out

    def _check_monotone_clocks(self, recorder: TraceRecorder) -> List[AuditViolation]:
        out: List[AuditViolation] = []
        last_start: dict = {}
        for span in recorder.spans:
            if not span.wire:
                continue
            previous = last_start.get(span.source)
            if previous is not None and span.start < previous:
                out.append(AuditViolation(
                    "monotone-clock",
                    f"wire span starts at {span.start:.3f}, before the "
                    f"previous {span.source} span at {previous:.3f}",
                    span, recorder.label))
            last_start[span.source] = span.start
        return out

    def _check_wire_math(self, recorder: TraceRecorder) -> List[AuditViolation]:
        out: List[AuditViolation] = []
        for span in recorder.spans:
            if not span.wire or span.delta is None:
                continue
            violation = self._recompute_span(span, recorder.label)
            if violation is not None:
                out.append(violation)
        return out

    def _recompute_span(self, span: Span,
                        session: str) -> Optional[AuditViolation]:
        """Recompute the packetisation arithmetic from the span's inputs and
        compare it with the meter delta the span actually produced."""
        attrs = span.attrs
        delta = span.delta
        assert delta is not None
        op = attrs.get("op")
        if op is None:
            return AuditViolation(
                "wire-packetisation", "wire span has no op attribute",
                span, session)

        def mismatch(what: str, expected: int, got: int) -> AuditViolation:
            return AuditViolation(
                "wire-packetisation",
                f"{what}: model says {expected}, meter recorded {got}",
                span, session)

        if op == "handshake":
            expected_up = attrs.get("up_bytes")
            expected_down = attrs.get("down_bytes")
            if delta.up_total != expected_up:
                return mismatch("handshake up bytes", expected_up,
                                delta.up_total)
            if delta.down_total != expected_down:
                return mismatch("handshake down bytes", expected_down,
                                delta.down_total)
            if delta.payload != 0 or delta.wasted != 0:
                return mismatch("handshake payload/wasted", 0,
                                delta.payload + delta.wasted)
            return None

        if op in ("exchange", "rejected"):
            up_wire = attrs.get("up_wire", 0)
            down_wire = attrs.get("down_wire", 0)
            up_retx = attrs.get("up_retx", 0)
            down_retx = attrs.get("down_retx", 0)
            up_hdr, up_acks = Link.wire_cost(up_wire)
            down_hdr, down_acks = Link.wire_cost(down_wire)
            expected_up = up_wire + up_hdr + down_acks + up_retx
            expected_down = down_wire + down_hdr + up_acks + down_retx
            if delta.up_total != expected_up:
                return mismatch("up wire bytes", expected_up, delta.up_total)
            if delta.down_total != expected_down:
                return mismatch("down wire bytes", expected_down,
                                delta.down_total)
            if op == "exchange":
                if delta.up_payload != attrs.get("up_payload", 0):
                    return mismatch("up payload", attrs.get("up_payload", 0),
                                    delta.up_payload)
                if delta.down_payload != attrs.get("down_payload", 0):
                    return mismatch("down payload",
                                    attrs.get("down_payload", 0),
                                    delta.down_payload)
                if delta.up_wasted != up_retx:
                    return mismatch("up wasted (retransmissions)", up_retx,
                                    delta.up_wasted)
                if delta.down_wasted != down_retx:
                    return mismatch("down wasted (retransmissions)",
                                    down_retx, delta.down_wasted)
            else:  # rejected: fully wasted, no payload
                if delta.payload != 0:
                    return mismatch("rejected payload", 0, delta.payload)
                if delta.up_wasted != delta.up_total:
                    return mismatch("rejected up wasted", delta.up_total,
                                    delta.up_wasted)
                if delta.down_wasted != delta.down_total:
                    return mismatch("rejected down wasted", delta.down_total,
                                    delta.down_wasted)
            return None

        if op == "restart":
            wire_bytes = attrs.get("wire_bytes", 0)
            hdr, acks = Link.wire_cost(wire_bytes)
            if delta.up_total != wire_bytes + hdr:
                return mismatch("restart up bytes", wire_bytes + hdr,
                                delta.up_total)
            if delta.down_total != acks:
                return mismatch("restart ack bytes", acks, delta.down_total)
            if delta.up_wasted != delta.up_total \
                    or delta.down_wasted != delta.down_total:
                return mismatch("restart wasted", delta.total, delta.wasted)
            if delta.payload != 0:
                return mismatch("restart payload", 0, delta.payload)
            return None

        if op == "aborted":
            sent_up = attrs.get("sent_up", 0)
            sent_down = attrs.get("sent_down", 0)
            if delta.up_total != sent_up:
                return mismatch("aborted up bytes", sent_up, delta.up_total)
            if delta.down_total != sent_down:
                return mismatch("aborted down bytes", sent_down,
                                delta.down_total)
            if delta.wasted != delta.total:
                return mismatch("aborted wasted", delta.total, delta.wasted)
            if delta.payload != 0:
                return mismatch("aborted payload", 0, delta.payload)
            return None

        if op == "notification":
            nbytes = attrs.get("nbytes", 0)
            hdr, acks = Link.wire_cost(nbytes)
            if delta.down_total != nbytes + hdr:
                return mismatch("notification down bytes", nbytes + hdr,
                                delta.down_total)
            if delta.up_total != acks:
                return mismatch("notification ack bytes", acks,
                                delta.up_total)
            if delta.payload != 0 or delta.wasted != 0:
                return mismatch("notification payload/wasted", 0,
                                delta.payload + delta.wasted)
            return None

        return AuditViolation(
            "wire-packetisation", f"unknown wire op {op!r}", span, session)

    def _check_sum_conservation(self, recorder: TraceRecorder) -> List[AuditViolation]:
        totals = recorder.final_totals()
        if totals is None:
            return []
        out: List[AuditViolation] = []
        fields = ("up_payload", "up_overhead", "up_wasted", "down_payload",
                  "down_overhead", "down_wasted", "record_count")
        sums = {name: 0 for name in fields}
        for span in recorder.final_epoch_wire_spans():
            if span.delta is None:
                continue  # reported by span-sanity
            for name in fields:
                sums[name] += getattr(span.delta, name)
        for name in fields:
            if sums[name] != getattr(totals, name):
                out.append(AuditViolation(
                    "sum-conservation",
                    f"wire spans sum to {name}={sums[name]} but the meter "
                    f"holds {getattr(totals, name)} — some traffic is "
                    f"unexplained by spans (or double-counted)",
                    session=recorder.label))
        if totals.up_wasted > totals.up_total:
            out.append(AuditViolation(
                "sum-conservation", "meter up wasted exceeds up total",
                session=recorder.label))
        if totals.down_wasted > totals.down_total:
            out.append(AuditViolation(
                "sum-conservation", "meter down wasted exceeds down total",
                session=recorder.label))
        return out

    def _check_kind_conservation(self, recorder: TraceRecorder) -> List[AuditViolation]:
        meter = recorder.meter
        if meter is None:
            return []
        out: List[AuditViolation] = []
        kinds = meter.totals_by_kind()
        payload = sum(t.payload for t in kinds.values())
        overhead = sum(t.overhead for t in kinds.values())
        wasted = sum(t.wasted for t in kinds.values())
        if payload != meter.payload_bytes:
            out.append(AuditViolation(
                "kind-conservation",
                f"per-kind payload sums to {payload}, meter holds "
                f"{meter.payload_bytes}", session=recorder.label))
        if overhead != meter.overhead_bytes:
            out.append(AuditViolation(
                "kind-conservation",
                f"per-kind overhead sums to {overhead}, meter holds "
                f"{meter.overhead_bytes}", session=recorder.label))
        if wasted != meter.wasted_bytes:
            out.append(AuditViolation(
                "kind-conservation",
                f"per-kind wasted sums to {wasted}, meter holds "
                f"{meter.wasted_bytes}", session=recorder.label))
        for kind, totals in kinds.items():
            if totals.wasted > totals.total:
                out.append(AuditViolation(
                    "kind-conservation",
                    f"kind {kind!r} wasted {totals.wasted} exceeds its "
                    f"total {totals.total}", session=recorder.label))
        return out

    def _check_bundle_conservation(self, recorder: TraceRecorder
                                   ) -> List[AuditViolation]:
        """Bundled commits must explain their wire bytes file by file.

        Each logical ``bundle-commit`` span carries a per-file ledger
        (``[path, wire_bytes, file_bytes]`` entries) whose wire column
        sums to the span's ``payload``; across the trace the ledger total
        must equal the upstream payload of the ``bundle-commit``-named
        wire exchanges.  Rejected/aborted attempts carry no payload and
        are excluded on both sides.
        """
        out: List[AuditViolation] = []
        ledger_total = 0
        wire_total = 0
        for span in recorder.spans:
            if span.kind == "bundle-commit":
                ledger = span.attrs.get("ledger")
                files = span.attrs.get("files")
                payload = span.attrs.get("payload", 0)
                if ledger is None:
                    out.append(AuditViolation(
                        "bundle-conservation",
                        "bundle-commit span carries no per-file ledger",
                        span, recorder.label))
                    continue
                if files != len(ledger):
                    out.append(AuditViolation(
                        "bundle-conservation",
                        f"span claims {files} files but its ledger has "
                        f"{len(ledger)} entries", span, recorder.label))
                entry_sum = 0
                for entry in ledger:
                    wire_bytes = int(entry[1])
                    if wire_bytes < 0 or int(entry[2]) < 0:
                        out.append(AuditViolation(
                            "bundle-conservation",
                            f"negative ledger entry for {entry[0]!r}",
                            span, recorder.label))
                    entry_sum += wire_bytes
                if entry_sum != payload:
                    out.append(AuditViolation(
                        "bundle-conservation",
                        f"ledger sums to {entry_sum} wire bytes but the "
                        f"bundle payload is {payload}", span,
                        recorder.label))
                ledger_total += entry_sum
            elif (span.kind == "exchange" and span.name == "bundle-commit"
                    and span.attrs.get("op") == "exchange"):
                wire_total += span.attrs.get("up_payload", 0)
        if ledger_total != wire_total:
            out.append(AuditViolation(
                "bundle-conservation",
                f"per-file ledgers explain {ledger_total} bundled wire "
                f"bytes but bundle-commit exchanges carried {wire_total}",
                session=recorder.label))
        return out

    def _check_strategy_conservation(self, recorder: TraceRecorder
                                     ) -> List[AuditViolation]:
        """Strategy-routed transfers must explain their payload bytes.

        Each ``delta-exchange`` logical span claims, model-side, the
        upstream payload its transfer shipped (``payload``), the exchange
        names carrying it (``wire_names``), plus its cost vector
        (``wire_bytes``, ``round_trips``, ``cpu_units``).  Per strategy,
        the claimed payloads must sum to the ``up_payload`` of the wire
        exchanges bearing those names — two independent accounting paths
        (the client's call sites vs. the channel's span attributes) that
        only agree when every byte is attributed to exactly one strategy.
        """
        out: List[AuditViolation] = []
        ledger_sums: dict = {}
        wire_names: dict = {}
        claimed_by: dict = {}
        for span in recorder.spans:
            if span.kind != "delta-exchange":
                continue
            strategy = span.attrs.get("strategy", span.name)
            payload = span.attrs.get("payload")
            names = span.attrs.get("wire_names")
            if payload is None or names is None:
                out.append(AuditViolation(
                    "strategy-conservation",
                    "delta-exchange span lacks payload/wire_names attrs",
                    span, recorder.label))
                continue
            if payload < 0:
                out.append(AuditViolation(
                    "strategy-conservation",
                    f"negative claimed payload {payload}", span,
                    recorder.label))
            wire_bytes = span.attrs.get("wire_bytes", 0)
            if wire_bytes < payload:
                out.append(AuditViolation(
                    "strategy-conservation",
                    f"claimed payload {payload} exceeds measured wire "
                    f"bytes {wire_bytes}", span, recorder.label))
            if span.attrs.get("round_trips", 0) < 0 \
                    or span.attrs.get("cpu_units", 0) < 0:
                out.append(AuditViolation(
                    "strategy-conservation",
                    "negative round_trips/cpu_units in cost vector",
                    span, recorder.label))
            ledger_sums[strategy] = ledger_sums.get(strategy, 0) + payload
            wire_names.setdefault(strategy, set()).update(names)
            for name in names:
                owner = claimed_by.setdefault(name, strategy)
                if owner != strategy:
                    out.append(AuditViolation(
                        "strategy-conservation",
                        f"exchange name {name!r} claimed by both "
                        f"{owner!r} and {strategy!r}", span,
                        recorder.label))
        if not ledger_sums:
            return out
        wire_sums: dict = {}
        for span in recorder.spans:
            if span.kind != "exchange" \
                    or span.attrs.get("op") != "exchange":
                continue
            wire_sums[span.name] = (wire_sums.get(span.name, 0)
                                    + span.attrs.get("up_payload", 0))
        for strategy, claimed in sorted(ledger_sums.items()):
            carried = sum(wire_sums.get(name, 0)
                          for name in sorted(wire_names[strategy]))
            if claimed != carried:
                out.append(AuditViolation(
                    "strategy-conservation",
                    f"strategy {strategy!r} ledgers claim {claimed} "
                    f"payload bytes but its exchanges carried {carried}",
                    session=recorder.label))
        return out


def audit_hub(hub: TraceHub) -> None:
    """Audit every recorder in ``hub``; raise the first violation found."""
    auditor = ConservationAuditor()
    for recorder in hub.recorders:
        auditor.audit(recorder)


# -- replay-report conservation -------------------------------------------

def verify_replay_report(report: Any) -> List[AuditViolation]:
    """Conservation checks over a (possibly merged) ReplayReport."""
    out: List[AuditViolation] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            out.append(AuditViolation("replay-conservation", message,
                                      session=report.service))

    for name in ("traffic_bytes", "data_update_bytes", "overhead_bytes",
                 "saved_by_compression", "saved_by_dedup", "saved_by_bds",
                 "saved_by_ids", "file_count", "upload_events"):
        check(getattr(report, name) >= 0, f"negative counter {name}")
    for user, value in report.per_user_traffic.items():
        check(value >= 0, f"negative per-user traffic for user {user}")
    per_user_sum = sum(report.per_user_traffic.values())
    check(per_user_sum == report.traffic_bytes,
          f"per-user traffic sums to {per_user_sum} but the merged report "
          f"holds traffic_bytes={report.traffic_bytes}")
    check(report.overhead_bytes <= report.traffic_bytes,
          f"overhead {report.overhead_bytes} exceeds total traffic "
          f"{report.traffic_bytes}")
    for user, value in report.per_user_modification_traffic.items():
        check(value >= 0,
              f"negative per-user modification traffic for user {user}")
        check(value <= report.per_user_traffic.get(user, 0),
              f"user {user} modification traffic {value} exceeds the "
              f"user's total traffic")
    return out


def audit_replay_report(report: Any) -> None:
    violations = verify_replay_report(report)
    if violations:
        raise violations[0]


def verify_replay_merge(parts: List[Any], merged: Any,
                        settle_credits: Optional[dict] = None
                        ) -> List[AuditViolation]:
    """Shard reports must sum, counter by counter, to the merged report.

    ``settle_credits`` is the phase-2 CROSS_USER dedup correction the
    parallel merge applied (per-user bytes re-credited from
    ``traffic_bytes`` to ``saved_by_dedup``); with it, raw phase-one
    shard reports balance against the final merged report exactly —
    traffic drops by the total credit, dedup savings rise by the same
    total, and each user's traffic drops by their own credit, so not a
    byte appears or vanishes in the settlement.  Without it (the
    default), the merge must be purely additive.
    """
    out: List[AuditViolation] = []
    credits = settle_credits or {}

    def check(condition: bool, message: str) -> None:
        if not condition:
            out.append(AuditViolation("replay-conservation", message,
                                      session=merged.service))

    for user, value in credits.items():
        check(value >= 0,
              f"settle credit for {user} is negative ({value}): phase 2 "
              f"can only move bytes from traffic into dedup savings")
    adjustment = sum(credits.values())
    for name in ("traffic_bytes", "data_update_bytes", "overhead_bytes",
                 "saved_by_compression", "saved_by_dedup", "saved_by_bds",
                 "saved_by_ids", "file_count", "upload_events"):
        total = sum(getattr(part, name) for part in parts)
        if name == "traffic_bytes":
            total -= adjustment
        elif name == "saved_by_dedup":
            total += adjustment
        check(total == getattr(merged, name),
              f"shard {name} sums to {total} after settlement, merged "
              f"report holds {getattr(merged, name)}")
    for dict_name in ("per_user_traffic", "per_user_modification_traffic",
                      "per_user_modification_update"):
        summed: dict = {}
        for part in parts:
            for user, value in getattr(part, dict_name).items():
                summed[user] = summed.get(user, 0) + value
        if dict_name == "per_user_traffic":
            for user, value in credits.items():
                check(user in summed,
                      f"settle credit for unknown user {user}")
                summed[user] = summed.get(user, 0) - value
        check(summed == getattr(merged, dict_name),
              f"per-user dict {dict_name} does not merge additively")
    return out


# -- fleet fan-out conservation -------------------------------------------

def verify_fleet_fanout(ledger: List[Any],
                        recorders: List[TraceRecorder]) -> List[AuditViolation]:
    """Balance each commit epoch's server-side push against follower intake.

    The shared-folder hub's ledger records, per epoch, the bytes the server
    pushed down (notification frames plus every follower fetch, successful
    or not); followers record the same bytes as ``down_bytes`` attributes
    on their ``fanout-notification`` spans.  Per epoch:

    * server ``pushed_bytes`` == Σ follower span ``down_bytes``;
    * exactly the epoch's ``targets`` were notified, the origin never.

    Backfill downloads (epoch < 0) move real bytes outside any commit
    epoch and are exempt by construction.
    """
    out: List[AuditViolation] = []
    by_epoch_bytes: dict = {}
    by_epoch_notified: dict = {}
    for recorder in recorders:
        for span in recorder.spans:
            if span.kind != "fanout-notification":
                continue
            epoch = span.attrs.get("epoch")
            if epoch is None:
                out.append(AuditViolation(
                    "fanout-conservation",
                    f"fanout-notification span {span.name!r} carries no "
                    f"epoch attribute", span=span, session=recorder.label))
                continue
            if epoch < 0:
                continue  # join-time backfill: no commit epoch to balance
            if epoch >= len(ledger):
                out.append(AuditViolation(
                    "fanout-conservation",
                    f"span references unknown epoch {epoch} "
                    f"(ledger holds {len(ledger)})",
                    span=span, session=recorder.label))
                continue
            by_epoch_bytes[epoch] = (by_epoch_bytes.get(epoch, 0)
                                     + int(span.attrs.get("down_bytes", 0)))
            if span.name == "notify":
                by_epoch_notified.setdefault(epoch, []).append(
                    span.attrs.get("member"))
    for entry in ledger:
        notified = by_epoch_notified.get(entry.epoch, [])
        if sorted(notified) != sorted(entry.targets):
            out.append(AuditViolation(
                "fanout-conservation",
                f"epoch {entry.epoch} targeted {sorted(entry.targets)} but "
                f"notified {sorted(notified)}"))
        if entry.origin in notified:
            out.append(AuditViolation(
                "fanout-conservation",
                f"epoch {entry.epoch} origin {entry.origin!r} received its "
                f"own notification (self-echo)"))
        received = by_epoch_bytes.get(entry.epoch, 0)
        if received != entry.pushed_bytes:
            out.append(AuditViolation(
                "fanout-conservation",
                f"epoch {entry.epoch} ({entry.kind} {entry.path!r} by "
                f"{entry.origin}): server pushed {entry.pushed_bytes} bytes "
                f"but followers received {received}"))
    return out


def audit_fleet_fanout(ledger: List[Any],
                       recorders: List[TraceRecorder]) -> None:
    """Raise the first fan-out conservation violation, if any."""
    violations = verify_fleet_fanout(ledger, recorders)
    if violations:
        raise violations[0]


def audit_domain_protocol(scheduler: Any) -> None:
    """Raise on the first broken cross-domain message invariant.

    The sharded fleet's fan-out crosses event domains as epoch-stamped
    messages; this invariant holds the message accounting itself to the
    same standard as the byte ledgers (matrix/total agreement, no
    self-crossings, monotone epochs, causal delivery).  The per-epoch
    byte balance across domains is already covered by
    ``fanout-conservation``, which is domain-agnostic by construction.
    """
    from ..simnet.domains import verify_domain_protocol

    violations = verify_domain_protocol(scheduler)
    if violations:
        raise AuditViolation("domain-protocol", violations[0])


# -- REST cost-ledger conservation ------------------------------------------

def verify_rest_ledger(store: Any) -> List[AuditViolation]:
    """Balance an ObjectStore's op counters against its physical state.

    Lifetime conservation: every byte ever PUT is either still stored or
    was reclaimed by a DELETE or an overwriting PUT —
    ``put_bytes - (delete_bytes + overwritten_bytes) == stored_bytes``.
    This is the invariant the ``delete_bytes``/``overwritten_bytes``
    counters exist to make checkable; backends that lose track of
    displaced bytes fail here.
    """
    out: List[AuditViolation] = []
    ops = store.ops

    def check(condition: bool, message: str) -> None:
        if not condition:
            out.append(AuditViolation("rest-conservation", message))

    for name in ("put", "get", "delete", "head", "list", "put_bytes",
                 "get_bytes", "delete_bytes", "overwritten_bytes"):
        check(getattr(ops, name) >= 0, f"negative counter {name}")
    check(ops.reclaimed_bytes <= ops.put_bytes,
          f"reclaimed {ops.reclaimed_bytes} bytes exceed lifetime "
          f"put_bytes {ops.put_bytes}")
    balance = ops.put_bytes - ops.reclaimed_bytes
    check(balance == store.stored_bytes,
          f"ledger balance put_bytes - reclaimed = {balance} but the store "
          f"physically holds {store.stored_bytes} bytes — displaced bytes "
          f"went uncounted")
    return out


def audit_rest_ledger(store: Any) -> None:
    """Raise the first REST-ledger conservation violation, if any."""
    violations = verify_rest_ledger(store)
    if violations:
        raise violations[0]

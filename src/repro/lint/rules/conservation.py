"""Byte-conservation rules (REP010–REP012).

The conservation audit (PR 3) proves, at runtime, that every byte on the
wire is accounted exactly once.  That proof only works because the ledger
is integer-only and mutated through a single code path; these rules pin
both properties down statically.  TUE, ratios, and fractions *derived
from* the ledger are deliberately float — the rules fire only when float
arithmetic flows back **into** a byte-named counter.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional

from ..engine import FileContext, Finding, Rule, dotted_name

#: Identifier shapes treated as byte counters.
_BYTEISH_EXACT = frozenset({"payload", "overhead", "wasted", "traffic",
                            "nbytes", "wire"})
_BYTEISH_SUFFIXES = ("_bytes", "_traffic", "_wire", "_size")
_BYTEISH_PREFIXES = ("bytes_",)

#: Modules exempt from REP010: pure display code whose job is to turn the
#: integer ledger into human-readable floats.
_DISPLAY_MODULES = ("repro.reporting", "repro.units")

#: Modules allowed to mutate a TrafficMeter (REP011): the meter itself and
#: the single Channel wire path that the conservation audit cross-checks.
METER_MUTATION_MODULES = ("repro.simnet.meter", "repro.simnet.protocol")

#: Names that hold a TUE denominator; guarding them with ``max(x, 1)``
#: silently reports TUE == traffic for a zero-byte update (the PR 3 bug
#: class) instead of the inf/nan convention.
_DENOMINATOR_RE = re.compile(r"(data_update|update_bytes|denominator)")


def is_byteish(name: str) -> bool:
    return (name in _BYTEISH_EXACT
            or name.endswith(_BYTEISH_SUFFIXES)
            or name.startswith(_BYTEISH_PREFIXES))


def _direct_name(node: ast.AST) -> str:
    """The identifier an expression *is*: a name, an attribute, or a call
    of a named accessor (``meter.total_bytes()``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _direct_name(node.func)
    return ""


def _mentioned_byteish(node: ast.AST) -> Optional[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and is_byteish(child.id):
            return child.id
        if isinstance(child, ast.Attribute) and is_byteish(child.attr):
            return child.attr
    return None


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _is_int_wrapped(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("int", "len", "round"))


def _division_inside(node: ast.AST) -> Optional[ast.AST]:
    """The first true division anywhere under ``node``, or None."""
    for child in ast.walk(node):
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div):
            return child
    return None


def _float_feeds(value: ast.AST) -> Optional[ast.AST]:
    """The first float-producing sub-expression of ``value`` (a true
    division or a ``float()`` cast).

    ``int(...)``-wrapped subtrees re-floor their result, which forgives
    float *scaling* (``int(bytes * 1.5)``) — but not true division:
    ``int(a * b / c)`` computes the quotient as a float first, so above
    2**53 the value is already wrong before ``int()`` sees it.  Divisions
    are therefore flagged even under an int/round wrapper; ``a * b // c``
    is the exact form.
    """
    if _is_int_wrapped(value):
        return _division_inside(value)
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Div):
        return value
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.id == "float":
        return value
    for child in ast.iter_child_nodes(value):
        culprit = _float_feeds(child)
        if culprit is not None:
            return culprit
    return None


class FloatByteArithmeticRule(Rule):
    """REP010: byte counters are integers; floats must not feed them."""

    id = "REP010"
    summary = "float arithmetic feeding a byte counter"
    hint = ("use integer // — int(a / b) rounds through a float and is "
            "already wrong above 2**53")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro") or ctx.in_package(*_DISPLAY_MODULES):
            return
        for node in ctx.walk():
            # float(<byte counter>) — the cast that launders ints away.
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "float" and node.args:
                name = _mentioned_byteish(node.args[0])
                if name:
                    yield self.at(ctx, node,
                                  f"float() cast of byte counter '{name}'")
                continue
            # <byte target> = ... / ...  (or float(...)), incl. += and :=-free
            # AnnAssign; int(...)-wrapped values are already re-floored.
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [node.target], node.value
            if value is not None:
                names = [n for t in targets for n in _target_names(t)
                         if is_byteish(n)]
                if isinstance(node, ast.AugAssign) and names \
                        and isinstance(node.op, ast.Div):
                    yield self.at(ctx, node,
                                  f"'/=' on byte counter '{names[0]}'")
                    continue
                if names:
                    culprit = _float_feeds(value)
                    if culprit is not None:
                        yield self.at(
                            ctx, culprit,
                            f"float-valued expression assigned to byte "
                            f"counter '{names[0]}'")
            # f(..., some_bytes=<float expr>) — float flowing into a
            # byte-named parameter (meter fields, report counters).
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg and is_byteish(keyword.arg):
                        culprit = _float_feeds(keyword.value)
                        if culprit is not None:
                            yield self.at(
                                ctx, culprit,
                                f"float-valued expression passed as byte "
                                f"argument '{keyword.arg}='")


def meter_mutation_call(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it mutates a TrafficMeter, else None.

    Matches ``<x>.meter.record(...)`` / ``meter.record(...)``, direct
    ``.records`` list mutation, and ``._totals`` access on a meter-ish
    receiver.
    """
    if not isinstance(node, ast.Call) \
            or not isinstance(node.func, ast.Attribute):
        return None
    attr = node.func.attr
    receiver = node.func.value
    receiver_name = _direct_name(receiver)
    if attr == "record" and "meter" in receiver_name:
        return f"{receiver_name}.record(...)"
    if attr in ("append", "extend", "clear") \
            and isinstance(receiver, ast.Attribute) \
            and receiver.attr == "records" \
            and "meter" in _direct_name(receiver.value):
        return f".records.{attr}(...)"
    return None


class MeterMutationRule(Rule):
    """REP011: the meter is mutated only by the Channel wire path."""

    id = "REP011"
    summary = "TrafficMeter mutated outside simnet.protocol"
    hint = ("route the bytes through Channel.exchange()/error_exchange() "
            "so the conservation audit sees a span for them")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro") \
                or ctx.in_package(*METER_MUTATION_MODULES):
            return
        for node in ctx.walk():
            description = meter_mutation_call(node)
            if description:
                yield self.at(ctx, node,
                              f"{description} in {ctx.module} bypasses the "
                              f"audited Channel wire path")
            if isinstance(node, ast.Attribute) and node.attr == "_totals" \
                    and "meter" in _direct_name(node.value):
                yield self.at(ctx, node,
                              "direct access to TrafficMeter._totals "
                              "bypasses the record() invariant checks")


class MaskedZeroDenominatorRule(Rule):
    """REP012: ``max(x, 1)`` denominators hide zero-update runs."""

    id = "REP012"
    summary = "max(..., 1) masks a zero denominator"
    hint = ("propagate the zero and let TUE report inf/nan "
            "(the PR 3 zero-size convention)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        for node in ctx.walk():
            if not self._is_max_one(node):
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.BinOp) \
                    and isinstance(parent.op, (ast.Div, ast.FloorDiv)) \
                    and parent.right is node:
                yield self.at(ctx, node,
                              "max(..., 1) as a division denominator "
                              "silently treats a zero update as one byte")
            elif isinstance(parent, ast.keyword) and parent.arg \
                    and _DENOMINATOR_RE.search(parent.arg):
                yield self.at(ctx, node,
                              f"max(..., 1) bound to TUE denominator "
                              f"'{parent.arg}=' hides zero-update runs")
            elif isinstance(parent, ast.Assign) and any(
                    _DENOMINATOR_RE.search(name)
                    for target in parent.targets
                    for name in _target_names(target)):
                yield self.at(ctx, node,
                              "max(..., 1) assigned to a TUE denominator "
                              "hides zero-update runs")

    @staticmethod
    def _is_max_one(node: ast.AST) -> bool:
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "max" and len(node.args) == 2):
            return False
        return any(isinstance(arg, ast.Constant) and arg.value == 1
                   for arg in node.args)

"""The reprolint rule registry.

Per-file families (see DESIGN.md, "Static invariants and reprolint"):

* determinism — REP001 wall clocks, REP002 unseeded RNGs, REP003
  unordered iteration in accounting code, REP004 ambient entropy,
  REP005 salted ``hash()``, REP006 environment reads;
* byte-conservation — REP010 float arithmetic feeding byte counters,
  REP011 meter mutation outside the Channel path, REP012 ``max(x, 1)``
  denominators masking zero updates;
* observability — REP020 meter mutation without a span emit, REP021
  swallowed failure evidence, REP022 unknown span kinds.

Whole-program families (run by ``lint_project`` over a
:class:`~repro.lint.project.ProjectContext`):

* concurrency/fork-safety — REP030 fork primitives outside the
  ``_fork_lock`` discipline, REP031 shared-memory lifecycle, REP032
  non-daemon spawns, REP033 locks held across forking call chains,
  REP034 process-global multiprocessing configuration;
* interprocedural determinism taint — REP040 nondeterminism reaching
  byte accounting, REP041 deterministic code consuming tainted helpers
  across the fence, REP042 import-time entropy constants, REP043
  tainted span stamps / RNG seeds;
* contract conformance — REP050 orphan ``verify_*`` invariants, REP051
  cross-module span-kind resolution, REP052 CLI/list parity, REP053
  ``*Stats`` mirror completeness.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..engine import Rule
from ..project import ProjectRule
from .concurrency import (ForkDisciplineRule, GlobalStartMethodRule,
                          LockAcrossForkRule, NonDaemonSpawnRule,
                          SharedMemoryLifecycleRule)
from .conservation import (FloatByteArithmeticRule, MaskedZeroDenominatorRule,
                           MeterMutationRule)
from .contracts import (CliParityRule, SpanKindResolutionRule,
                        StatsMirrorRule, UnregisteredVerifyRule)
from .determinism import (AmbientEntropyRule, AmbientEnvironmentRule,
                          SaltedHashRule, UnorderedIterationRule,
                          UnseededRngRule, WallClockRule)
from .observability import (SwallowedFailureRule, UnknownSpanKindRule,
                            UnpairedEmitRule)
from .taint import (CrossModuleLaunderRule, TaintedAccountingRule,
                    TaintedConstantRule, TaintedStampOrSeedRule)

ALL_RULES: List[Rule] = [
    WallClockRule(),
    UnseededRngRule(),
    UnorderedIterationRule(),
    AmbientEntropyRule(),
    SaltedHashRule(),
    AmbientEnvironmentRule(),
    FloatByteArithmeticRule(),
    MeterMutationRule(),
    MaskedZeroDenominatorRule(),
    UnpairedEmitRule(),
    SwallowedFailureRule(),
    UnknownSpanKindRule(),
]

PROJECT_RULES: List[ProjectRule] = [
    ForkDisciplineRule(),
    SharedMemoryLifecycleRule(),
    NonDaemonSpawnRule(),
    LockAcrossForkRule(),
    GlobalStartMethodRule(),
    TaintedAccountingRule(),
    CrossModuleLaunderRule(),
    TaintedConstantRule(),
    TaintedStampOrSeedRule(),
    UnregisteredVerifyRule(),
    SpanKindResolutionRule(),
    CliParityRule(),
    StatsMirrorRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
RULES_BY_ID.update({rule.id: rule for rule in PROJECT_RULES})

#: Every rule id a pragma or baseline entry may legally name.
KNOWN_IDS: Set[str] = set(RULES_BY_ID)

__all__ = ["ALL_RULES", "PROJECT_RULES", "RULES_BY_ID", "KNOWN_IDS"]

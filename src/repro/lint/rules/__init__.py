"""The reprolint rule registry.

Three families (see DESIGN.md, "Static invariants and reprolint"):

* determinism — REP001 wall clocks, REP002 unseeded RNGs, REP003
  unordered iteration in accounting code, REP004 ambient entropy,
  REP005 salted ``hash()``, REP006 environment reads;
* byte-conservation — REP010 float arithmetic feeding byte counters,
  REP011 meter mutation outside the Channel path, REP012 ``max(x, 1)``
  denominators masking zero updates;
* observability — REP020 meter mutation without a span emit, REP021
  swallowed failure evidence, REP022 unknown span kinds.
"""

from __future__ import annotations

from typing import Dict, List

from ..engine import Rule
from .conservation import (FloatByteArithmeticRule, MaskedZeroDenominatorRule,
                           MeterMutationRule)
from .determinism import (AmbientEntropyRule, AmbientEnvironmentRule,
                          SaltedHashRule, UnorderedIterationRule,
                          UnseededRngRule, WallClockRule)
from .observability import (SwallowedFailureRule, UnknownSpanKindRule,
                            UnpairedEmitRule)

ALL_RULES: List[Rule] = [
    WallClockRule(),
    UnseededRngRule(),
    UnorderedIterationRule(),
    AmbientEntropyRule(),
    SaltedHashRule(),
    AmbientEnvironmentRule(),
    FloatByteArithmeticRule(),
    MeterMutationRule(),
    MaskedZeroDenominatorRule(),
    UnpairedEmitRule(),
    SwallowedFailureRule(),
    UnknownSpanKindRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID"]

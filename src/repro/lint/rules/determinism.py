"""Determinism rules (REP001–REP006).

Byte-identical replay (PR 2) and traced-vs-untraced equality (PR 3) both
assume simulation code never consults ambient state: no wall clocks, no
unseeded or process-global RNGs, no iteration order that depends on hash
randomisation, no entropy sources, no environment variables.  Each rule
here turns one of those assumptions into a static check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, dotted_name

#: Packages whose code must be a pure function of its inputs: everything
#: the simulator, the trace pipeline, and the accounting layers run.
DETERMINISTIC_PACKAGES = (
    "repro.simnet", "repro.client", "repro.cloud", "repro.trace",
    "repro.core", "repro.obs", "repro.content", "repro.delta",
    "repro.chunking", "repro.compress", "repro.workloads",
    "repro.fleet", "repro.fsim",
)

#: Modules whose dict/set iteration feeds byte accounting or shard merges,
#: where ordering must be forced with ``sorted(...)`` (REP003).
ACCOUNTING_MODULES = (
    "repro.trace.replay", "repro.trace.analysis", "repro.trace.schema",
    "repro.simnet.meter", "repro.simnet.analysis", "repro.obs",
    "repro.cloud.dedup", "repro.core.tue",
)

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Functions on the process-global ``random`` RNG (shared mutable state:
#: any draw perturbs every later draw in the process).
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "triangular", "seed", "getrandbits",
})

#: Legacy numpy global-state RNG entry points.
_NUMPY_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "seed", "choice", "shuffle",
    "permutation", "normal", "uniform",
})

_ENTROPY_CALLS = frozenset({
    "os.urandom", "urandom", "uuid.uuid1", "uuid.uuid4", "uuid1", "uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.choice",
})


class WallClockRule(Rule):
    """REP001: no wall-clock reads inside the simulation."""

    id = "REP001"
    summary = "wall-clock call in deterministic simulation code"
    hint = "use the Simulator's virtual clock (sim.now) or pass time in"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*DETERMINISTIC_PACKAGES):
            return
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield self.at(ctx, node,
                                  f"wall-clock call {name}() in "
                                  f"{ctx.module} breaks replayability")


class UnseededRngRule(Rule):
    """REP002: every RNG must be constructed with an explicit seed."""

    id = "REP002"
    summary = "unseeded or process-global RNG"
    hint = ("construct random.Random(seed) / np.random.default_rng(seed) "
            "with a seed derived from the call's inputs")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*DETERMINISTIC_PACKAGES):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            tail = name.split(".")[-1]
            seedless = not node.args and not node.keywords
            if name in ("random.Random", "Random") and seedless:
                yield self.at(ctx, node,
                              "random.Random() without a seed draws from "
                              "OS entropy")
            elif tail == "default_rng" and seedless:
                yield self.at(ctx, node,
                              "default_rng() without a seed draws from "
                              "OS entropy")
            elif name.startswith("random.") and tail in _GLOBAL_RANDOM_FNS:
                yield self.at(ctx, node,
                              f"{name}() uses the process-global RNG; "
                              f"draws couple unrelated call sites")
            elif (name.startswith(("np.random.", "numpy.random."))
                    and tail in _NUMPY_GLOBAL_FNS):
                yield self.at(ctx, node,
                              f"{name}() uses numpy's global RNG state")


class UnorderedIterationRule(Rule):
    """REP003: accounting/merge code must not iterate unordered views."""

    id = "REP003"
    summary = "iteration over an unordered view in accounting code"
    hint = "wrap the iterable in sorted(...) to pin a deterministic order"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*ACCOUNTING_MODULES):
            return
        for node in ctx.walk():
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                reason = self._unordered(ctx, candidate)
                if reason:
                    yield self.at(ctx, candidate, reason)

    def _unordered(self, ctx: FileContext, node: ast.AST) -> str:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("set", "frozenset"):
                return ("iterating a set literal couples accounting to hash "
                        "order")
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "keys":
                return (".keys() iteration order is insertion order — merge "
                        "and accounting code must not depend on it")
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "iterating a set couples accounting to hash order"
        if isinstance(node, ast.Name) \
                and node.id in ctx.set_bound_names(node):
            return (f"'{node.id}' is set-typed; its iteration order depends "
                    f"on hash seeding")
        return ""


class AmbientEntropyRule(Rule):
    """REP004: no entropy sources outside tests."""

    id = "REP004"
    summary = "ambient entropy source in library code"
    hint = "derive identifiers from seeded RNGs or deterministic counters"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _ENTROPY_CALLS:
                    yield self.at(ctx, node,
                                  f"{name}() is fresh entropy on every run")


class SaltedHashRule(Rule):
    """REP005: no builtin ``hash()`` in deterministic code.

    ``hash(str_or_bytes)`` is salted per process (PYTHONHASHSEED), so any
    value derived from it differs between the sequential replay and a fork
    pool's children started in another interpreter.  ``__hash__``
    implementations are exempt — delegating to ``hash()`` there is how
    Python composes hashes, and container *membership* stays correct.
    """

    id = "REP005"
    summary = "builtin hash() is salted per process"
    hint = "use hashlib (or the record's digest) for any persisted value"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*DETERMINISTIC_PACKAGES):
            return
        for node in ctx.walk():
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "hash":
                function = ctx.enclosing_function(node)
                if function is not None and function.name == "__hash__":
                    continue
                yield self.at(ctx, node)


class AmbientEnvironmentRule(Rule):
    """REP006: no environment reads inside the simulation."""

    id = "REP006"
    summary = "environment read in deterministic simulation code"
    hint = "thread configuration through parameters, not os.environ"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*DETERMINISTIC_PACKAGES):
            return
        for node in ctx.walk():
            if isinstance(node, ast.Attribute) \
                    and dotted_name(node) in ("os.environ", "sys.argv"):
                yield self.at(ctx, node,
                              f"{dotted_name(node)} read in {ctx.module}")
            elif isinstance(node, ast.Call) \
                    and dotted_name(node.func) in ("os.getenv",):
                yield self.at(ctx, node, "os.getenv() read in simulation code")

"""Interprocedural determinism taint (REP040–REP043).

REP001/REP004 catch a wall-clock or entropy call *where it happens*; they
cannot see the value after it is stored in a helper's return, a module
constant, or an argument that crosses a module boundary into byte
accounting.  This family runs a small dataflow analysis over the whole
project:

* **sources** — wall clocks, entropy, process-global RNG draws (the same
  tables REP001/REP002/REP004 use);
* **propagation** — assignments inside a function (a monotone local
  fixpoint: a name once tainted stays tainted), function return values
  (a global fixpoint over the call graph), and module-level constants;
* **sinks** — meter mutation arguments, byte-named assignment targets and
  keyword arguments, ``*Report`` constructors, ``record_span`` start/end
  stamps, and RNG seeds.

Known false negatives (documented in DESIGN.md): taint is not tracked
through function *parameters*, containers, attributes of ``self``, or
string formatting — the analysis only misses, it never invents, so every
finding is a real resolvable flow.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine import FileContext, Finding, dotted_name
from ..graph import FunctionInfo, ModuleInfo
from ..project import ProjectContext, ProjectRule
from .conservation import is_byteish, meter_mutation_call
from .determinism import (DETERMINISTIC_PACKAGES, _ENTROPY_CALLS,
                          _GLOBAL_RANDOM_FNS, _WALL_CLOCK_CALLS)

_MAX_LOCAL_PASSES = 8
_MAX_GLOBAL_PASSES = 8


def source_call_reason(dotted: str) -> Optional[str]:
    """Why a call's result is nondeterministic, or None if it isn't."""
    if dotted in _WALL_CLOCK_CALLS:
        return f"wall clock {dotted}()"
    if dotted in _ENTROPY_CALLS:
        return f"entropy source {dotted}()"
    if dotted.startswith("random.") \
            and dotted.split(".")[-1] in _GLOBAL_RANDOM_FNS:
        return f"process-global RNG {dotted}()"
    return None


class TaintAnalysis:
    """Project-wide nondeterminism taint: constants and return values."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        #: "module.CONST" -> reason the constant is tainted.
        self.tainted_constants: Dict[str, str] = {}
        #: function node_id -> reason its return value is tainted.
        self.tainted_returns: Dict[str, str] = {}
        self._local_cache: Dict[str, Dict[str, str]] = {}
        self._compute()

    # -- construction ------------------------------------------------------

    def _compute(self) -> None:
        for info in self.project.modules.values():
            for name, expr in info.constants.items():
                reason = self.expr_taint(info, expr, {})
                if reason is not None:
                    self.tainted_constants[f"{info.module}.{name}"] = reason
        for _ in range(_MAX_GLOBAL_PASSES):
            changed = False
            self._local_cache.clear()
            for info in self.project.modules.values():
                for fn in info.functions.values():
                    if fn.node_id in self.tainted_returns:
                        continue
                    reason = self._return_taint(info, fn)
                    if reason is not None:
                        self.tainted_returns[fn.node_id] = reason
                        changed = True
            if not changed:
                break
        self._local_cache.clear()

    def _return_taint(self, info: ModuleInfo,
                      fn: FunctionInfo) -> Optional[str]:
        local = self.local_taint(info, fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                reason = self.expr_taint(info, node.value, local)
                if reason is not None:
                    return reason
        return None

    # -- queries -----------------------------------------------------------

    def local_taint(self, info: ModuleInfo,
                    fn: FunctionInfo) -> Dict[str, str]:
        """Names tainted inside ``fn``: name -> reason (monotone fixpoint)."""
        cached = self._local_cache.get(fn.node_id)
        if cached is not None:
            return cached
        local: Dict[str, str] = {}
        for _ in range(_MAX_LOCAL_PASSES):
            changed = False
            for node in ast.walk(fn.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                reason = self.expr_taint(info, value, local)
                if reason is None:
                    continue
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name) \
                                and leaf.id not in local:
                            local[leaf.id] = reason
                            changed = True
            if not changed:
                break
        self._local_cache[fn.node_id] = local
        return local

    def expr_taint(self, info: ModuleInfo, expr: ast.expr,
                   local: Dict[str, str]) -> Optional[str]:
        """The first taint reason found anywhere under ``expr``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                dotted = info.expand(dotted_name(node.func))
                reason = source_call_reason(dotted)
                if reason is not None:
                    return reason
                callee = self.project.resolve_function(
                    info, dotted_name(node.func))
                if callee is not None \
                        and callee.node_id in self.tainted_returns:
                    return (f"{callee.node_id}() returns "
                            f"{self.tainted_returns[callee.node_id]}")
            elif isinstance(node, ast.Name):
                if node.id in local:
                    return local[node.id]
                constant = self._constant_taint(info, node.id)
                if constant is not None:
                    return constant
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted:
                    constant = self._constant_taint(info, dotted)
                    if constant is not None:
                        return constant
        return None

    def _constant_taint(self, info: ModuleInfo,
                        dotted: str) -> Optional[str]:
        expanded = info.expand(dotted)
        if "." not in expanded:
            key = f"{info.module}.{expanded}"
            if key in self.tainted_constants:
                return f"constant {key} = {self.tainted_constants[key]}"
            return None
        owner, rest = self.project.split_module(expanded)
        if owner is None or "." in rest:
            return None
        key = f"{owner}.{rest}"
        if key in self.tainted_constants:
            return f"constant {key} = {self.tainted_constants[key]}"
        return None


def _analysis(project: ProjectContext) -> TaintAnalysis:
    """One shared TaintAnalysis per ProjectContext (cached on it)."""
    cached = getattr(project, "_taint_analysis", None)
    if cached is None:
        cached = TaintAnalysis(project)
        project._taint_analysis = cached  # type: ignore[attr-defined]
    return cached


def _iter_function_scopes(info: ModuleInfo,
                          analysis: TaintAnalysis,
                          ) -> Iterator[Tuple[FunctionInfo, Dict[str, str]]]:
    for fn in info.functions.values():
        yield fn, analysis.local_taint(info, fn)


class TaintedAccountingRule(ProjectRule):
    """REP040: nondeterministic values must not reach byte accounting."""

    id = "REP040"
    summary = "nondeterministic value flows into byte accounting"
    hint = ("byte counters, meter records, and replay reports must be pure "
            "functions of the trace; derive the value from simulated time "
            "or the record's inputs")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis(project)
        for info in project.repro_modules():
            ctx = info.ctx
            for fn, local in _iter_function_scopes(info, analysis):
                for finding in self._check_scope(ctx, info, analysis,
                                                 fn.node, local):
                    yield finding

    def _check_scope(self, ctx: FileContext, info: ModuleInfo,
                     analysis: TaintAnalysis, scope: ast.AST,
                     local: Dict[str, str]) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if isinstance(node, ast.Call):
                mutation = meter_mutation_call(node)
                is_report = dotted_name(node.func).split(".")[-1] \
                    .endswith("Report")
                for arg in list(node.args) \
                        + [kw.value for kw in node.keywords]:
                    reason = analysis.expr_taint(info, arg, local)
                    if reason is None:
                        continue
                    if mutation:
                        yield self.at(ctx, arg,
                                      f"{reason} flows into {mutation} — "
                                      f"the meter ledger is no longer a "
                                      f"function of the trace")
                        break
                    if is_report:
                        yield self.at(ctx, arg,
                                      f"{reason} flows into "
                                      f"{dotted_name(node.func)}(...) — "
                                      f"replay reports must replay")
                        break
                for keyword in node.keywords:
                    if keyword.arg and is_byteish(keyword.arg):
                        reason = analysis.expr_taint(info, keyword.value,
                                                     local)
                        if reason is not None:
                            yield self.at(ctx, keyword.value,
                                          f"{reason} passed as byte "
                                          f"argument '{keyword.arg}='")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                byteish = [t for t in targets
                           for leaf in ast.walk(t)
                           if isinstance(leaf, (ast.Name, ast.Attribute))
                           and is_byteish(getattr(leaf, "id", None)
                                          or getattr(leaf, "attr", ""))]
                if not byteish or node.value is None:
                    continue
                reason = analysis.expr_taint(info, node.value, local)
                if reason is not None:
                    yield self.at(ctx, node,
                                  f"{reason} assigned to a byte counter")


class CrossModuleLaunderRule(ProjectRule):
    """REP041: deterministic code calling a tainted helper elsewhere.

    The helper's own module may legitimately touch the clock (cli,
    reporting); the violation is *importing the result* into a package
    that promises determinism — exactly what per-file REP001 cannot see.
    """

    id = "REP041"
    summary = "deterministic code consumes a nondeterministic helper"
    hint = ("the callee returns wall-clock/entropy data; inline a "
            "deterministic equivalent or pass the value in from the edge")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis(project)
        for info in project.repro_modules():
            if not info.ctx.in_package(*DETERMINISTIC_PACKAGES):
                continue
            ctx = info.ctx
            for node in ctx.walk():
                if not isinstance(node, ast.Call):
                    continue
                callee = project.resolve_function(info,
                                                  dotted_name(node.func))
                if callee is None \
                        or callee.node_id not in analysis.tainted_returns:
                    continue
                if callee.module == info.module or any(
                        callee.module == p or callee.module.startswith(p + ".")
                        for p in DETERMINISTIC_PACKAGES):
                    # In-fence taint is REP001/REP040's jurisdiction.
                    continue
                reason = analysis.tainted_returns[callee.node_id]
                yield self.at(ctx, node,
                              f"{info.module} calls {callee.node_id}() "
                              f"which returns {reason}; the determinism "
                              f"fence is breached from outside")


class TaintedConstantRule(ProjectRule):
    """REP042: module constants must not capture run-time entropy."""

    id = "REP042"
    summary = "module-level constant captures wall-clock/entropy at import"
    hint = ("a constant evaluated at import time differs per process; "
            "compute the value inside the run from its inputs")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis(project)
        for info in project.repro_modules():
            ctx = info.ctx
            for name, expr in sorted(info.constants.items()):
                key = f"{info.module}.{name}"
                reason = analysis.tainted_constants.get(key)
                if reason is not None:
                    yield self.at(ctx, expr,
                                  f"{key} = ... captures {reason} at "
                                  f"import time")


class TaintedStampOrSeedRule(ProjectRule):
    """REP043: span stamps and RNG seeds must be deterministic."""

    id = "REP043"
    summary = "nondeterministic span stamp or RNG seed"
    hint = ("span start/end come from the simulated clock; seeds derive "
            "from the record's identity, never from entropy")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis(project)
        for info in project.repro_modules():
            ctx = info.ctx
            for fn, local in _iter_function_scopes(info, analysis):
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for finding in self._check_call(ctx, info, analysis,
                                                    node, local):
                        yield finding

    def _check_call(self, ctx: FileContext, info: ModuleInfo,
                    analysis: TaintAnalysis, node: ast.Call,
                    local: Dict[str, str]) -> Iterator[Finding]:
        dotted = info.expand(dotted_name(node.func))
        tail = dotted.split(".")[-1]
        if tail == "record_span":
            stamps = list(node.args[3:5])
            stamps += [kw.value for kw in node.keywords
                       if kw.arg in ("start", "end")]
            for stamp in stamps:
                reason = analysis.expr_taint(info, stamp, local)
                if reason is not None:
                    yield self.at(ctx, stamp,
                                  f"span stamp derives from {reason}; the "
                                  f"audit would see different timings "
                                  f"every run")
        elif tail in ("Random", "default_rng", "seed"):
            for arg in list(node.args) \
                    + [kw.value for kw in node.keywords]:
                reason = analysis.expr_taint(info, arg, local)
                if reason is not None:
                    yield self.at(ctx, arg,
                                  f"RNG seeded from {reason}; every run "
                                  f"draws a different stream")

"""Observability rules (REP020–REP022).

The conservation audit (PR 3) can only balance the books if every wire
event produced a span and no failure signal was silently swallowed on the
way to it.  These rules keep the emit sites and the failure paths honest.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..engine import FileContext, Finding, Rule, dotted_name
from .conservation import METER_MUTATION_MODULES, meter_mutation_call

#: Exceptions that carry audit/failure evidence; a handler that catches
#: one and does nothing destroys the evidence the auditor needs.
_CRITICAL_EXCEPTIONS = frozenset({
    "AuditViolation", "FaultError", "TransferInterrupted", "SimulationError",
    "IntegrityError", "RetriesExhausted",
})

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Constant names exported by repro.obs.recorder for span kinds.
_SPAN_KIND_CONSTANTS = frozenset({
    "CONNECT", "EXCHANGE", "RETRY_ATTEMPT", "DEFER_WINDOW", "DEDUP_HIT",
    "FAULT_EPISODE", "SYNC_TRANSACTION", "METER_RESET",
    "CONFLICT_RESOLVED", "FANOUT_NOTIFICATION", "BUNDLE_COMMIT",
})


def _known_span_kinds() -> frozenset:
    """The single source of truth: repro.obs.recorder.SPAN_KINDS."""
    from ...obs.recorder import SPAN_KINDS
    return frozenset(SPAN_KINDS)


class UnpairedEmitRule(Rule):
    """REP020: a meter-mutating function must also emit a span."""

    id = "REP020"
    summary = "meter mutation without a recorder emit site"
    hint = ("emit recorder.record_span(...) next to the meter.record(...) "
            "so the conservation audit can balance this path")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # The meter module itself cannot emit spans (it is what spans
        # describe); everything else that touches the wire must pair up.
        if not ctx.in_package("repro") \
                or ctx.in_package("repro.simnet.meter"):
            return
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            mutations: List[ast.AST] = []
            emits = False
            for child in ast.walk(node):
                if meter_mutation_call(child):
                    mutations.append(child)
                if isinstance(child, ast.Call) \
                        and isinstance(child.func, ast.Attribute) \
                        and child.func.attr in ("record_span", "note_reset"):
                    emits = True
            if mutations and not emits:
                yield self.at(ctx, mutations[0],
                              f"{ctx.module}.{node.name}() mutates the "
                              f"meter but never emits a span")


class SwallowedFailureRule(Rule):
    """REP021: no do-nothing handlers around failure signals."""

    id = "REP021"
    summary = "exception handler silently swallows failure evidence"
    hint = "narrow the exception type, or record/re-raise what was caught"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._noop_body(node.body):
                continue
            caught = self._caught_names(node.type)
            critical = sorted(set(caught) & _CRITICAL_EXCEPTIONS)
            if critical:
                yield self.at(ctx, node,
                              f"except {critical[0]}: pass destroys the "
                              f"failure evidence the audit needs")
            elif (node.type is None or set(caught) & _BROAD_EXCEPTIONS) \
                    and ctx.in_package("repro"):
                yield self.at(ctx, node,
                              "bare/broad except with an empty body would "
                              "swallow AuditViolation and FaultError too")

    @staticmethod
    def _noop_body(body: List[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, (ast.Pass, ast.Continue)):
                continue
            if isinstance(statement, ast.Expr) \
                    and isinstance(statement.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    @staticmethod
    def _caught_names(node: Optional[ast.expr]) -> List[str]:
        if node is None:
            return []
        elements = node.elts if isinstance(node, ast.Tuple) else [node]
        names = []
        for element in elements:
            name = dotted_name(element)
            if name:
                names.append(name.split(".")[-1])
        return names


class UnknownSpanKindRule(Rule):
    """REP022: span kinds must be literals the auditor understands."""

    id = "REP022"
    summary = "record_span() with an unknown span kind"
    hint = "use a kind from repro.obs.recorder.SPAN_KINDS"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        known = _known_span_kinds()
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "record_span"):
                continue
            kind_expr = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "kind"), None)
            if kind_expr is None:
                continue
            if isinstance(kind_expr, ast.Constant) \
                    and isinstance(kind_expr.value, str):
                if kind_expr.value not in known:
                    yield self.at(ctx, kind_expr,
                                  f"span kind {kind_expr.value!r} is not in "
                                  f"SPAN_KINDS; the audit would reject it "
                                  f"at runtime")
            elif isinstance(kind_expr, ast.Name) \
                    and kind_expr.id.isupper() \
                    and kind_expr.id not in _SPAN_KIND_CONSTANTS:
                yield self.at(ctx, kind_expr,
                              f"span kind constant {kind_expr.id!r} is not "
                              f"an exported SPAN_KINDS name")

"""Contract-conformance rules (REP050–REP053).

The runtime contracts — the ConservationAuditor's invariants, the span
registry, the CLI surface, the backend stats mirrors — are each defined
in one module and *used* from others.  Per-file rules cannot tell a
registered invariant from an orphan; these project rules close that gap.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..engine import Finding, dotted_name
from ..graph import ModuleInfo
from ..project import ProjectContext, ProjectRule


def _known_span_kinds() -> Set[str]:
    """The single source of truth: repro.obs.recorder.SPAN_KINDS."""
    from ...obs.recorder import SPAN_KINDS
    return set(SPAN_KINDS)


class UnregisteredVerifyRule(ProjectRule):
    """REP050: every ``verify_*`` invariant must have a caller.

    An invariant nobody calls is an invariant nobody checks — the audit
    claims coverage it does not have.  Call sites are counted anywhere in
    the ``repro`` package (method or function, resolved or not, matched
    by name), so the rule only fires on true orphans.
    """

    id = "REP050"
    summary = "verify_* invariant defined but never invoked"
    hint = ("call it from the audit path (audit_hub / the experiment "
            "driver) or delete it; unchecked invariants rot")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        called = project.called_names.get("repro", set())
        for info in project.repro_modules():
            for fn in sorted(info.functions.values(),
                             key=lambda f: f.qualname):
                if not fn.name.startswith("verify_"):
                    continue
                if fn.name in called:
                    continue
                yield self.at(info.ctx, fn.node,
                              f"{fn.node_id}() is never called from any "
                              f"repro module; the invariant is not part "
                              f"of the audit")


class SpanKindResolutionRule(ProjectRule):
    """REP051: span kinds behind names must resolve into SPAN_KINDS.

    REP022 checks literals and recognises the exported constant names;
    this rule chases *any* name — including a constant defined in another
    module or re-exported through an alias — down to its literal and
    validates that against the registry.  Unresolvable kinds are skipped
    (documented false negative), never guessed.
    """

    id = "REP051"
    summary = "span kind resolves to a value outside SPAN_KINDS"
    hint = "use a kind from repro.obs.recorder.SPAN_KINDS"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        known = _known_span_kinds()
        for info in project.repro_modules():
            ctx = info.ctx
            for node in ctx.walk():
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "record_span"):
                    continue
                kind_expr = node.args[0] if node.args else next(
                    (kw.value for kw in node.keywords
                     if kw.arg == "kind"), None)
                if kind_expr is None \
                        or isinstance(kind_expr, ast.Constant):
                    continue  # literals are REP022's jurisdiction
                dotted = dotted_name(kind_expr)
                if not dotted or dotted.startswith("self."):
                    continue
                resolved = project.resolve_constant(info, dotted)
                if not (isinstance(resolved, ast.Constant)
                        and isinstance(resolved.value, str)):
                    continue
                if resolved.value not in known:
                    yield self.at(ctx, kind_expr,
                                  f"span kind {dotted} resolves to "
                                  f"{resolved.value!r}, which is not in "
                                  f"SPAN_KINDS; record_span() would "
                                  f"reject it at runtime")


class CliParityRule(ProjectRule):
    """REP052: ``repro list`` and the argparse surface must agree.

    Every registered subcommand (except ``list`` itself) must appear in
    the ``cmd_list`` table, and the table must not advertise commands
    that do not exist.
    """

    id = "REP052"
    summary = "repro list table out of sync with registered subcommands"
    hint = "add the command to cmd_list's rows (or remove the dead row)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        info = project.modules.get("repro.cli")
        if info is None:
            return
        listed = self._listed_commands(info)
        registered = self._registered_commands(info)
        if listed is None or registered is None:
            return
        listed_names = {name for name, _ in listed}
        registered_names = {name for name, _ in registered}
        for name, node in sorted(registered):
            if name != "list" and name not in listed_names:
                yield self.at(info.ctx, node,
                              f"subcommand '{name}' is registered but "
                              f"missing from the `repro list` table")
        for name, node in sorted(listed):
            if name not in registered_names:
                yield self.at(info.ctx, node,
                              f"`repro list` advertises '{name}' but no "
                              f"such subcommand is registered")

    @staticmethod
    def _listed_commands(info: ModuleInfo,
                         ) -> Optional[List[Tuple[str, ast.AST]]]:
        fn = info.functions.get("cmd_list")
        if fn is None:
            return None
        commands: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "rows"
                            for t in node.targets)
                    and isinstance(node.value, ast.List)):
                continue
            for row in node.value.elts:
                if isinstance(row, (ast.List, ast.Tuple)) and row.elts \
                        and isinstance(row.elts[0], ast.Constant) \
                        and isinstance(row.elts[0].value, str):
                    commands.append((row.elts[0].value, row.elts[0]))
            return commands
        return None

    @staticmethod
    def _registered_commands(info: ModuleInfo,
                             ) -> Optional[List[Tuple[str, ast.AST]]]:
        fn = info.functions.get("build_parser")
        if fn is None:
            return None
        commands: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "add" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                commands.append((node.args[0].value, node))
        return commands or None


class StatsMirrorRule(ProjectRule):
    """REP053: every ``*Stats`` field must be written somewhere.

    A counter that exists but is never incremented reads as zero forever
    — in a mirror (``ServerStats`` copying ``PackShardStats``) that is a
    silent hole in the reported numbers, not an idle feature.
    """

    id = "REP053"
    summary = "Stats field never written anywhere in the project"
    hint = ("wire the counter to the code path it describes, or delete "
            "the field — a always-zero stat misreports the experiment")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        written = self._written_names(project)
        for info in project.repro_modules():
            ctx = info.ctx
            for node in ctx.walk():
                if not (isinstance(node, ast.ClassDef)
                        and node.name.endswith("Stats")
                        and self._is_dataclass(node)):
                    continue
                for stmt in node.body:
                    if not (isinstance(stmt, ast.AnnAssign)
                            and isinstance(stmt.target, ast.Name)):
                        continue
                    field = stmt.target.id
                    if field.startswith("_") or field in written:
                        continue
                    yield self.at(ctx, stmt,
                                  f"{info.module}.{node.name}.{field} is "
                                  f"never written by any repro module; "
                                  f"it will report 0 forever")

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            if dotted_name(target).split(".")[-1] == "dataclass":
                return True
        return False

    @staticmethod
    def _written_names(project: ProjectContext) -> Set[str]:
        """Attribute names stored to, plus keyword-argument names, project
        wide — a deliberately generous write set so the rule only fires
        on fields *nothing* could possibly be feeding."""
        mutators = frozenset({"append", "extend", "add", "insert",
                              "update", "setdefault", "pop", "clear"})
        written: Set[str] = set()
        for info in project.repro_modules():
            for node in info.ctx.walk():
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, (ast.Store, ast.Del)):
                    written.add(node.attr)
                elif isinstance(node, ast.Call):
                    for keyword in node.keywords:
                        if keyword.arg:
                            written.add(keyword.arg)
                    # stats.field.append(...) mutates `field` in place.
                    if isinstance(node.func, ast.Attribute) \
                            and node.func.attr in mutators \
                            and isinstance(node.func.value, ast.Attribute):
                        written.add(node.func.value.attr)
        return written

"""Concurrency / fork-safety rules (REP030–REP034).

PR 7's parallel replay deadlocked in CI because a ``fork()`` could run
while another thread held the stdio or resource-tracker lock: the child
inherits the locked lock with no owner to release it.  The hand fix was
the ``_fork_lock`` discipline in ``repro.trace.replay`` — every fork
primitive runs under one designated lock so no two threads interleave a
fork with lock-holding work.  These rules make that discipline (and the
shared-memory lifecycle around it) a static invariant instead of
tribal knowledge.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..engine import FileContext, Finding, dotted_name
from ..graph import ModuleInfo
from ..project import ProjectContext, ProjectRule

#: Call shapes that fork the process or arm the fork machinery.  Matched
#: on the import-expanded dotted name's tail so both
#: ``multiprocessing.Process`` and ``context.Process`` are seen.
_FORK_TAILS = frozenset({
    "fork", "Process", "Pool", "ProcessPoolExecutor", "ensure_running",
})

_FORK_EXACT = frozenset({
    "os.fork", "os.forkpty",
})


def _is_fork_lock(name: str) -> bool:
    return name.split(".")[-1].endswith("fork_lock")


def _is_lockish(name: str) -> bool:
    tail = name.split(".")[-1].lower()
    return ("lock" in tail or "mutex" in tail) and not _is_fork_lock(name)


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _is_shm_create(node: ast.AST, info: ModuleInfo) -> bool:
    """``SharedMemory(..., create=True)`` — attach-only calls are safe."""
    if not isinstance(node, ast.Call):
        return False
    dotted = info.expand(dotted_name(node.func))
    if dotted.split(".")[-1] != "SharedMemory":
        return False
    create = _keyword(node, "create")
    return isinstance(create, ast.Constant) and create.value is True


def _fork_primitive(node: ast.AST, info: ModuleInfo) -> Optional[str]:
    """Describe ``node`` if it is a fork primitive call, else None."""
    if not isinstance(node, ast.Call):
        return None
    dotted = info.expand(dotted_name(node.func))
    if not dotted:
        return None
    if dotted in _FORK_EXACT:
        return f"{dotted}()"
    tail = dotted.split(".")[-1]
    if tail == "Thread":
        return None  # threads don't fork; REP032 owns them
    if tail in _FORK_TAILS:
        # A bare ``Pool`` resolving to nothing multiprocessing-ish could
        # be a domain object; require either a known module prefix or a
        # resolution miss on an mp-style name.
        if tail == "Pool" and "." in dotted \
                and not dotted.startswith(("multiprocessing", "mp.")):
            return None
        return f"{dotted}()"
    if _is_shm_create(node, info):
        return f"{dotted}(create=True)"
    return None


def _under_fork_lock(ctx: FileContext, node: ast.AST) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if _is_fork_lock(dotted_name(item.context_expr)):
                    return True
    return False


class ForkDisciplineRule(ProjectRule):
    """REP030: fork primitives only under the ``_fork_lock`` discipline.

    The stdio and resource-tracker locks always exist, so *any* fork can
    inherit one mid-acquire; serialising every fork primitive under one
    module lock is the only shape that cannot deadlock.
    """

    id = "REP030"
    summary = "fork primitive outside the _fork_lock discipline"
    hint = ("wrap the fork/Process/SharedMemory-create/ensure_running call "
            "in `with _fork_lock:` (see repro.trace.replay)")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.repro_modules():
            ctx = info.ctx
            for node in ctx.walk():
                description = _fork_primitive(node, info)
                if description is None:
                    continue
                if not _under_fork_lock(ctx, node):
                    yield self.at(ctx, node,
                                  f"{description} in {info.module} runs "
                                  f"outside `with _fork_lock:`; a concurrent "
                                  f"lock holder deadlocks the child")


class SharedMemoryLifecycleRule(ProjectRule):
    """REP031: every created shared-memory segment is closed and unlinked."""

    id = "REP031"
    summary = "SharedMemory(create=True) without close()+unlink()"
    hint = ("pair the create with segment.close() and segment.unlink() on "
            "every exit path (a cleanup closure is fine)")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.repro_modules():
            ctx = info.ctx
            for node in ctx.walk():
                if not _is_shm_create(node, info):
                    continue
                scope = ctx.enclosing_function(node) or ctx.tree
                attrs = {child.func.attr
                         for child in ast.walk(scope)
                         if isinstance(child, ast.Call)
                         and isinstance(child.func, ast.Attribute)}
                missing = sorted({"close", "unlink"} - attrs)
                if missing:
                    yield self.at(ctx, node,
                                  f"shared-memory segment created in "
                                  f"{info.module} is never "
                                  f"{' or '.join(missing)}ed; the segment "
                                  f"leaks past process exit")


class NonDaemonSpawnRule(ProjectRule):
    """REP032: library code must not spawn non-daemon threads/processes.

    A non-daemon worker keeps the interpreter alive after the experiment
    returns; in CI that is a hang, not a result.
    """

    id = "REP032"
    summary = "non-daemon Thread/Process spawned in library code"
    hint = "pass daemon=True (or set .daemon = True before .start())"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.repro_modules():
            ctx = info.ctx
            for node in ctx.walk():
                if not isinstance(node, ast.Call):
                    continue
                tail = info.expand(dotted_name(node.func)).split(".")[-1]
                if tail not in ("Thread", "Process"):
                    continue
                daemon = _keyword(node, "daemon")
                if isinstance(daemon, ast.Constant) and daemon.value is True:
                    continue
                if self._daemon_set_later(ctx, node):
                    continue
                yield self.at(ctx, node,
                              f"{tail}(...) in {info.module} without "
                              f"daemon=True outlives the run")

    @staticmethod
    def _daemon_set_later(ctx: FileContext, call: ast.Call) -> bool:
        """``proc = Process(...)`` followed by ``proc.daemon = True``."""
        parent = ctx.parent(call)
        if not isinstance(parent, ast.Assign) or len(parent.targets) != 1 \
                or not isinstance(parent.targets[0], ast.Name):
            return False
        bound = parent.targets[0].id
        scope = ctx.enclosing_function(call) or ctx.tree
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) \
                    and any(isinstance(t, ast.Attribute) and t.attr == "daemon"
                            and isinstance(t.value, ast.Name)
                            and t.value.id == bound
                            for t in node.targets) \
                    and isinstance(node.value, ast.Constant) \
                    and node.value.value is True:
                return True
        return False


class LockAcrossForkRule(ProjectRule):
    """REP033: no ordinary lock held across a call chain that forks.

    This is the exact PR 7 deadlock shape, caught through the call
    graph: the fork need not be lexically visible under the ``with``.
    """

    id = "REP033"
    summary = "lock held across a call chain that reaches a fork"
    hint = ("release the lock before calling into the fork path, or make "
            "this lock the module's _fork_lock")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        forking = self._forking_functions(project)
        if not forking:
            return
        for info in project.repro_modules():
            ctx = info.ctx
            for node in ctx.walk():
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                lock_name = ""
                for item in node.items:
                    name = dotted_name(item.context_expr)
                    if _is_lockish(name):
                        lock_name = name
                        break
                if not lock_name:
                    continue
                for call in ast.walk(node):
                    if not isinstance(call, ast.Call):
                        continue
                    dotted = dotted_name(call.func)
                    callee = project._resolve_callee(
                        info, dotted, self._caller_id(info, call))
                    if callee is None:
                        continue
                    path = project.call_graph.reaches(callee.node_id, forking)
                    if path is None and callee.node_id not in forking:
                        continue
                    chain = " -> ".join(path or [callee.node_id])
                    yield self.at(ctx, call,
                                  f"`with {lock_name}:` holds a lock while "
                                  f"{dotted}() reaches a fork primitive "
                                  f"({chain}); a forked child inherits the "
                                  f"held lock")
                    break  # one finding per with-block is enough

    @staticmethod
    def _caller_id(info: ModuleInfo, node: ast.AST) -> str:
        enclosing = info.ctx.enclosing_function(node)
        if enclosing is None:
            return f"{info.module}:<module>"
        qual = info.qualname_of_node.get(id(enclosing), "?")
        return f"{info.module}:{qual}"

    @staticmethod
    def _forking_functions(project: ProjectContext) -> Set[str]:
        forking: Set[str] = set()
        for info in project.repro_modules():
            for fn in info.functions.values():
                for node in ast.walk(fn.node):
                    if _fork_primitive(node, info) is not None:
                        forking.add(fn.node_id)
                        break
        return forking


class GlobalStartMethodRule(ProjectRule):
    """REP034: no global multiprocessing configuration in library code."""

    id = "REP034"
    summary = "process-global multiprocessing configuration"
    hint = ("use multiprocessing.get_context('fork') locally; "
            "set_start_method() is process-global and first-caller-wins")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.repro_modules():
            ctx = info.ctx
            for node in ctx.walk():
                if not isinstance(node, ast.Call):
                    continue
                dotted = info.expand(dotted_name(node.func))
                if dotted.split(".")[-1] == "set_start_method":
                    yield self.at(ctx, node,
                                  f"set_start_method() in {info.module} "
                                  f"mutates process-global state")
                elif dotted == "multiprocessing.Pool":
                    yield self.at(ctx, node,
                                  "multiprocessing.Pool uses the ambient "
                                  "start method; build the pool from an "
                                  "explicit get_context('fork')")

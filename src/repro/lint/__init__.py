"""reprolint: static enforcement of determinism, byte-conservation, and
trace-coverage invariants (``repro lint``; see DESIGN.md)."""

from .engine import (BaselineEntry, FileContext, Finding, LintResult,
                     META_RULE, Rule, derive_module, iter_python_files,
                     lint_paths, lint_source, load_baseline)
from .rules import ALL_RULES, RULES_BY_ID

__all__ = ["ALL_RULES", "BaselineEntry", "FileContext", "Finding",
           "LintResult", "META_RULE", "RULES_BY_ID", "Rule", "derive_module",
           "iter_python_files", "lint_paths", "lint_source", "load_baseline"]

"""reprolint: static enforcement of determinism, byte-conservation, and
trace-coverage invariants (``repro lint``; see DESIGN.md).

v2 adds the whole-program layer: :class:`ProjectContext` (import graph,
symbol tables, approximate call graph) and ``lint_project`` running the
cross-module REP03x/REP04x/REP05x families with an incremental cache.
"""

from .engine import (BaselineEntry, FileContext, Finding, LintResult,
                     META_RULE, Rule, derive_module, iter_python_files,
                     lint_paths, lint_source, load_baseline)
from .graph import CallGraph, FunctionInfo, ModuleInfo
from .project import ProjectContext, ProjectRule, lint_project
from .rules import ALL_RULES, KNOWN_IDS, PROJECT_RULES, RULES_BY_ID

__all__ = ["ALL_RULES", "BaselineEntry", "CallGraph", "FileContext",
           "Finding", "FunctionInfo", "KNOWN_IDS", "LintResult", "META_RULE",
           "ModuleInfo", "PROJECT_RULES", "ProjectContext", "ProjectRule",
           "RULES_BY_ID", "Rule", "derive_module", "iter_python_files",
           "lint_paths", "lint_project", "lint_source", "load_baseline"]

"""Whole-program lint driver: ProjectContext, project rules, and caching.

``lint_paths`` runs each file's rules in isolation.  ``lint_project``
layers three things on top:

* :class:`ProjectContext` — every file parsed once, wired into the
  import graph / symbol tables / approximate call graph from
  :mod:`repro.lint.graph`;
* :class:`ProjectRule` — rules that see the whole project instead of a
  single :class:`FileContext` (the REP03x/REP04x/REP05x families);
* an incremental cache — per-file findings keyed by a blake2b hash of
  the source (plus the rule-id signature), and project-level findings
  keyed by a tree hash over *all* file hashes, so a warm run re-parses
  nothing.  Any single file change invalidates the project graph but
  leaves every other file's per-file findings warm.

Pragma suppression applies to project findings exactly as it does to
per-file findings: a ``# reprolint: disable=REP030`` on the flagged
statement's lines suppresses the cross-module finding too.
"""

from __future__ import annotations

import ast
import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import (META_RULE, FileContext, Finding, LintResult, Rule,
                     apply_baseline, dotted_name, iter_python_files,
                     lint_source)
from .graph import CallGraph, CallSite, FunctionInfo, ModuleInfo

#: Bump when the cache payload layout or analysis semantics change.
CACHE_VERSION = 1

CACHE_FILENAME = "reprolint-cache.json"


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Subclasses implement :meth:`check_project`; the per-file
    :meth:`check` is a no-op so a ProjectRule can sit in a plain rule
    list without firing twice.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def at_ctx(self, ctx: FileContext, node: ast.AST,
               message: Optional[str] = None,
               hint: Optional[str] = None) -> Finding:
        return self.at(ctx, node, message, hint)


class ProjectContext:
    """Every file parsed once: modules, constants, and the call graph."""

    def __init__(self, entries: Sequence[Tuple[str, str]],
                 known_ids: Set[str]) -> None:
        """``entries`` is a sequence of (path, source) pairs."""
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        #: files that failed to parse: (path, message); they contribute
        #: nothing to the graph but are not fatal to the project pass.
        self.broken: List[Tuple[str, str]] = []
        self.functions_by_id: Dict[str, FunctionInfo] = {}
        self.call_graph = CallGraph()
        #: last path segment of every call target, per caller package root
        #: ("repro", "tests", ...) — the conservative "is it ever called"
        #: signal behind REP050.
        self.called_names: Dict[str, Set[str]] = {}
        for path, source in entries:
            try:
                ctx = FileContext(path, source, known_ids)
            except SyntaxError as exc:
                self.broken.append((path, exc.msg or "syntax error"))
                continue
            is_package = path.endswith("__init__.py")
            info = ModuleInfo(ctx, is_package)
            self.modules[info.module] = info
            self.by_path[ctx.path] = info
        for info in self.modules.values():
            self.functions_by_id.update(
                {fn.node_id: fn for fn in info.functions.values()})
        for info in self.modules.values():
            self._index_calls(info)

    # -- resolution --------------------------------------------------------

    def split_module(self, dotted: str) -> Tuple[Optional[str], str]:
        """Longest known-module prefix of ``dotted`` plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, ".".join(parts[cut:])
        return None, dotted

    def resolve_function(self, info: ModuleInfo, dotted: str,
                         depth: int = 0) -> Optional[FunctionInfo]:
        """Resolve a (local) dotted callee name to its definition."""
        if depth > 8 or not dotted:
            return None
        expanded = info.expand(dotted)
        if expanded in info.functions:
            return info.functions[expanded]
        if expanded in info.classes:
            return info.functions.get(f"{expanded}.__init__")
        owner, rest = self.split_module(expanded)
        if owner is None or not rest:
            return None
        target = self.modules[owner]
        if rest in target.functions:
            return target.functions[rest]
        if rest in target.classes:
            return target.functions.get(f"{rest}.__init__")
        if target is not info and rest in target.imports:
            return self.resolve_function(target, rest, depth + 1)
        return None

    def resolve_constant(self, info: ModuleInfo, dotted: str,
                         depth: int = 0) -> Optional[ast.expr]:
        """Chase a dotted name to the module-level expression it binds.

        Follows import aliases and re-exports across modules, and chases
        constant-to-constant chains (``A = B`` where ``B = "literal"``).
        Returns None when the chain leaves the analyzed project.
        """
        if depth > 8 or not dotted:
            return None
        expanded = info.expand(dotted)
        if "." not in expanded and expanded in info.constants:
            return self._chase(info, info.constants[expanded], depth)
        owner, rest = self.split_module(expanded)
        if owner is None or not rest or "." in rest:
            return None
        target = self.modules[owner]
        if rest in target.constants:
            return self._chase(target, target.constants[rest], depth)
        if target is not info and rest in target.imports:
            return self.resolve_constant(target, rest, depth + 1)
        return None

    def _chase(self, info: ModuleInfo, expr: ast.expr,
               depth: int) -> Optional[ast.expr]:
        name = dotted_name(expr)
        if name:
            resolved = self.resolve_constant(info, name, depth + 1)
            if resolved is not None:
                return resolved
        return expr

    # -- call graph --------------------------------------------------------

    def _index_calls(self, info: ModuleInfo) -> None:
        root = info.module.split(".")[0]
        names = self.called_names.setdefault(root, set())
        for node in info.ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            names.add(dotted.split(".")[-1])
            enclosing = info.ctx.enclosing_function(node)
            if enclosing is not None:
                caller_qual = info.qualname_of_node.get(id(enclosing), "?")
                caller = f"{info.module}:{caller_qual}"
            else:
                caller = f"{info.module}:<module>"
            callee = self._resolve_callee(info, dotted, caller)
            if callee is not None:
                self.call_graph.add(CallSite(caller, callee.node_id, node))

    def _resolve_callee(self, info: ModuleInfo, dotted: str,
                        caller: str) -> Optional[FunctionInfo]:
        if dotted.startswith("self."):
            # Method call on the caller's own class: resolvable whenever
            # the attribute chain is a direct method of that class.
            caller_qual = caller.split(":", 1)[1]
            if "." in caller_qual:
                class_name = caller_qual.rsplit(".", 1)[0]
                candidate = f"{class_name}.{dotted[len('self.'):]}"
                if candidate in info.functions:
                    return info.functions[candidate]
            return None
        return self.resolve_function(info, dotted)

    # -- convenience -------------------------------------------------------

    def repro_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            if name == "repro" or name.startswith("repro."):
                yield self.modules[name]

    def suppresses(self, finding: Finding) -> bool:
        info = self.by_path.get(finding.path)
        if info is None:
            return False
        return info.ctx.pragmas.suppresses(finding)


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------


def _source_hash(source: str) -> str:
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


def _rules_signature(rules: Sequence[Rule],
                     project_rules: Sequence[ProjectRule]) -> str:
    payload = json.dumps({
        "version": CACHE_VERSION,
        "rules": sorted(r.id for r in rules),
        "project_rules": sorted(r.id for r in project_rules),
    }, sort_keys=True)
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=16).hexdigest()


def _tree_hash(file_hashes: Dict[str, str]) -> str:
    payload = "\n".join(f"{path}:{digest}"
                        for path, digest in sorted(file_hashes.items()))
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=16).hexdigest()


def _findings_to_json(findings: Sequence[Finding]) -> List[Dict[str, object]]:
    return [finding.to_dict() for finding in findings]


def _findings_from_json(raw: object) -> Optional[List[Finding]]:
    if not isinstance(raw, list):
        return None
    findings: List[Finding] = []
    for item in raw:
        if not isinstance(item, dict):
            return None
        try:
            findings.append(Finding(
                rule=str(item["rule"]), path=str(item["path"]),
                line=int(item["line"]), col=int(item["col"]),
                message=str(item["message"]),
                hint=str(item.get("hint", ""))))
        except (KeyError, TypeError, ValueError):
            return None
    return findings


class _Cache:
    """JSON cache: per-file findings plus the project-level result."""

    def __init__(self, cache_dir: Optional[str], signature: str) -> None:
        self.path = Path(cache_dir) / CACHE_FILENAME if cache_dir else None
        self.signature = signature
        self.files: Dict[str, Dict[str, object]] = {}
        self.project: Dict[str, object] = {}
        if self.path is not None and self.path.exists():
            try:
                payload = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = {}
            if isinstance(payload, dict) \
                    and payload.get("signature") == signature:
                files = payload.get("files")
                project = payload.get("project")
                if isinstance(files, dict):
                    self.files = files
                if isinstance(project, dict):
                    self.project = project

    def file_findings(self, path: str,
                      digest: str) -> Optional[List[Finding]]:
        entry = self.files.get(path)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            return None
        return _findings_from_json(entry.get("findings"))

    def project_findings(self, tree_digest: str,
                         ) -> Optional[Tuple[List[Finding], int, int]]:
        if self.project.get("tree_hash") != tree_digest:
            return None
        findings = _findings_from_json(self.project.get("findings"))
        if findings is None:
            return None
        try:
            modules = int(self.project.get("module_count", 0))  # type: ignore[arg-type]
            edges = int(self.project.get("call_edges", 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        return findings, modules, edges

    def store(self, file_hashes: Dict[str, str],
              file_findings: Dict[str, List[Finding]], tree_digest: str,
              project_findings: Sequence[Finding], module_count: int,
              call_edges: int) -> None:
        if self.path is None:
            return
        payload = {
            "signature": self.signature,
            "files": {
                path: {"hash": file_hashes[path],
                       "findings": _findings_to_json(file_findings[path])}
                for path in file_hashes
            },
            "project": {
                "tree_hash": tree_digest,
                "findings": _findings_to_json(project_findings),
                "module_count": module_count,
                "call_edges": call_edges,
            },
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload, sort_keys=True),
                                 encoding="utf-8")
        except OSError:
            pass  # a cache that cannot be written is just a cold cache


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _lint_one(payload: Tuple[str, str, Sequence[Rule],
                             Set[str]]) -> Tuple[str, List[Finding]]:
    """Worker for --jobs: lint one (path, source) pair."""
    path, source, rules, known_ids = payload
    return path, lint_source(source, path, rules, known_ids=known_ids)


def lint_project(paths: Sequence[str], rules: Sequence[Rule],
                 project_rules: Sequence[ProjectRule],
                 baseline_path: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 jobs: int = 1,
                 known_ids: Optional[Set[str]] = None) -> LintResult:
    """Run per-file rules plus whole-program rules over ``paths``.

    Per-file findings are cached by source hash; project findings by the
    tree hash over every file hash, so any single change rebuilds the
    graph but leaves unchanged files' per-file analysis warm.
    """
    if known_ids is None:
        known_ids = ({rule.id for rule in rules}
                     | {rule.id for rule in project_rules})
    signature = _rules_signature(rules, project_rules)
    cache = _Cache(cache_dir, signature)

    sources: Dict[str, str] = {}
    file_hashes: Dict[str, str] = {}
    findings: List[Finding] = []
    file_count = 0
    for file_path in iter_python_files(paths):
        file_count += 1
        key = file_path.as_posix()
        try:
            sources[key] = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(META_RULE, key, 1, 0,
                                    f"cannot read file: {exc}", ""))
            continue
        file_hashes[key] = _source_hash(sources[key])

    per_file: Dict[str, List[Finding]] = {}
    cache_hits = 0
    cold: List[str] = []
    for key in sorted(file_hashes):
        cached = cache.file_findings(key, file_hashes[key])
        if cached is not None:
            per_file[key] = cached
            cache_hits += 1
        else:
            cold.append(key)

    if jobs > 1 and len(cold) > 1:
        tasks = [(key, sources[key], rules, known_ids) for key in cold]
        # The executor forks workers that only ever read immutable inputs
        # and exit; no lock/fork interleaving is possible here.
        with ProcessPoolExecutor(max_workers=jobs) as pool:  # reprolint: disable=REP030 single-shot fork of stateless workers over immutable sources
            for key, result in pool.map(_lint_one, tasks):
                per_file[key] = result
    else:
        for key in cold:
            per_file[key] = lint_source(sources[key], key, rules,
                                        known_ids=known_ids)
    for key in sorted(per_file):
        findings.extend(per_file[key])

    tree_digest = _tree_hash(file_hashes)
    cached_project = cache.project_findings(tree_digest)
    if cached_project is not None:
        project_findings, module_count, call_edges = cached_project
        cache_hits += 1
    else:
        project = ProjectContext(sorted(sources.items()), known_ids)
        project_findings = []
        for rule in project_rules:
            for finding in rule.check_project(project):
                if not project.suppresses(finding):
                    project_findings.append(finding)
        project_findings.sort(key=lambda f: f.sort_key)
        module_count = len(project.modules)
        call_edges = len(project.call_graph.edges)
    findings.extend(project_findings)

    cache.store(file_hashes, per_file, tree_digest, project_findings,
                module_count, call_edges)

    result = apply_baseline(findings, baseline_path, known_ids, file_count)
    result.module_count = module_count
    result.call_edges = call_edges
    result.cache_hits = cache_hits
    return result

"""Module symbol tables and the import/call graph for reprolint v2.

The per-file rules (REP001–REP022) see one AST at a time, so a wall-clock
value laundered through a helper in another module, or a span kind
assembled from a constant defined elsewhere, is invisible to them.  This
module builds the *project-level* picture those gaps require:

* :class:`ModuleInfo` — one module's import bindings (absolute and
  relative, aliases resolved), module-level constants, and every function
  and method keyed by qualified name;
* an approximate call graph — call sites resolved through the import
  table to ``module:qualname`` node ids.

The approximation is deliberately conservative and its false-negative
edges are documented in DESIGN.md: calls through variables, containers,
``getattr``, and method calls on values whose class we cannot name are
not resolved, and function parameters are never treated as taint
carriers.  The analysis only ever *misses* edges; it never invents them,
so every cross-module finding is backed by a resolvable chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import FileContext, dotted_name


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    module: str
    qualname: str          # "helper" or "ClassName.method"
    node: ast.AST          # FunctionDef | AsyncFunctionDef

    @property
    def node_id(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


class ModuleInfo:
    """Symbol table for one parsed module."""

    def __init__(self, ctx: FileContext, is_package: bool) -> None:
        self.ctx = ctx
        self.module = ctx.module
        self.path = ctx.path
        self.is_package = is_package
        #: local binding -> dotted target; "pkg.mod" for module imports,
        #: "pkg.mod.symbol" for from-imports.
        self.imports: Dict[str, str] = {}
        #: module-level NAME = <expr> bindings (last write wins).
        self.constants: Dict[str, ast.expr] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: id(FunctionDef node) -> qualname, for call-site attribution.
        self.qualname_of_node: Dict[int, str] = {}
        self.classes: Set[str] = set()
        self._collect()

    # -- construction ------------------------------------------------------

    def _collect(self) -> None:
        for node in self.ctx.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` to package ``a``.
                        root = alias.name.split(".")[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" \
                        if base else alias.name
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = self._qualname(node)
                self.functions[qualname] = FunctionInfo(
                    self.module, qualname, node)
                self.qualname_of_node[id(node)] = qualname
            elif isinstance(node, ast.ClassDef) \
                    and self.ctx.enclosing_function(node) is None:
                self.classes.add(node.name)
            elif isinstance(node, ast.Assign) \
                    and self._is_module_level(node):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.constants[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) \
                    and self._is_module_level(node) \
                    and isinstance(node.target, ast.Name) \
                    and node.value is not None:
                self.constants[node.target.id] = node.value

    def _is_module_level(self, node: ast.AST) -> bool:
        parent = self.ctx.parent(node)
        return parent is self.ctx.tree

    def _qualname(self, node: ast.AST) -> str:
        parts: List[str] = [getattr(node, "name", "<lambda>")]
        for ancestor in self.ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                parts.append(ancestor.name)
        return ".".join(reversed(parts))

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base for a (possibly relative) from-import."""
        if node.level == 0:
            return node.module or ""
        package = self.module.split(".") if self.is_package \
            else self.module.split(".")[:-1]
        # level=1 is the package itself; each extra dot strips a segment.
        strip = node.level - 1
        if strip > len(package):
            return None
        base_parts = package[:len(package) - strip] if strip else package
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    # -- queries -----------------------------------------------------------

    def expand(self, dotted: str) -> str:
        """Rewrite a local dotted name through the import table.

        ``shared_memory.SharedMemory`` becomes
        ``multiprocessing.shared_memory.SharedMemory`` when the module did
        ``from multiprocessing import shared_memory``.  Names with no
        import binding are returned unchanged (they are locals, builtins,
        or module-level definitions of this module).
        """
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


@dataclass
class CallSite:
    """One resolved call edge: caller function -> callee node id."""

    caller: str            # "module:qualname" or "module:<module>"
    callee: str            # "module:qualname"
    node: ast.Call


@dataclass
class CallGraph:
    """Approximate project call graph over resolved ``module:qualname``."""

    edges: List[CallSite] = field(default_factory=list)
    by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)
    by_callee: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        self.edges.append(site)
        self.by_caller.setdefault(site.caller, []).append(site)
        self.by_callee.setdefault(site.callee, []).append(site)

    def callees_of(self, caller: str) -> Iterator[str]:
        for site in self.by_caller.get(caller, ()):
            yield site.callee

    def reaches(self, start: str, targets: Set[str],
                limit: int = 10000) -> Optional[List[str]]:
        """BFS path from ``start`` to any node in ``targets``, or None."""
        if start in targets:
            return [start]
        seen = {start}
        frontier: List[Tuple[str, List[str]]] = [(start, [start])]
        steps = 0
        while frontier and steps < limit:
            node, path = frontier.pop(0)
            for callee in self.callees_of(node):
                steps += 1
                if callee in targets:
                    return path + [callee]
                if callee not in seen:
                    seen.add(callee)
                    frontier.append((callee, path + [callee]))
        return None

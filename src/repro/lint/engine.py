"""reprolint: AST-based enforcement of the repo's coding invariants.

The determinism, byte-conservation, and observability guarantees (byte
identical parallel replay, traced-vs-untraced equality, the six
conservation invariants) all rest on *coding* conventions — seeded
per-record RNG streams, integer-only byte accounting, meter mutation
through the single Channel path — that the runtime auditor can only catch
after a violation has already corrupted a run.  This engine checks them
statically, at review time.

Architecture:

* :class:`FileContext` — one parsed file: AST with parent links, the
  dotted module name (derived from the path, overridable with a
  ``# reprolint: module=...`` pragma so fixtures can impersonate any
  module), set-binding scope tracking, and pragma suppression state;
* :class:`Rule` — base class; each rule walks the context and yields
  :class:`Finding` objects with ``file:line``, rule id, and a fix hint;
* pragmas — ``# reprolint: disable=REP001`` on the offending line or
  ``# reprolint: disable-file[=REP001]`` anywhere; a pragma naming an
  unknown rule id is itself a lint error (``REP000``), never silently
  ignored;
* baseline — a committed JSON file of accepted findings keyed by
  (rule, path); entries require a justification comment, and an entry
  whose finding no longer fires is reported as *stale* so suppressions
  cannot outlive the code they excused.

``REP000`` is reserved for meta errors (syntax errors, malformed pragmas,
malformed baseline entries) and cannot be suppressed.
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple)

#: Reserved id for engine-level problems; never suppressible.
META_RULE = "REP000"

_PRAGMA_PREFIX = "reprolint:"


@dataclass(frozen=True)
class Finding:
    """One invariant violation, pinned to ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message, "hint": self.hint}


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id``/``summary``/``hint`` and implement
    :meth:`check`, yielding findings for one :class:`FileContext`.
    """

    id: str = META_RULE
    summary: str = ""
    hint: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def at(self, ctx: "FileContext", node: ast.AST,
           message: Optional[str] = None,
           hint: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id, path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message if message is not None else self.summary,
            hint=hint if hint is not None else self.hint)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain; "" when the chain is broken
    by a call, subscript, or any non-name expression."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def derive_module(path: str) -> str:
    """Dotted module for a file path: anchored at the last ``repro`` or
    ``tests`` path segment, falling back to the bare stem."""
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    for anchor in ("repro", "tests"):
        if anchor in parts:
            start = len(parts) - 1 - parts[::-1].index(anchor)
            dotted = [p for p in parts[start:] if p != "__init__"]
            return ".".join(dotted)
    return parts[-1] if parts else ""


@dataclass
class _Pragmas:
    """Parsed ``# reprolint:`` directives for one file."""

    module: Optional[str] = None
    file_disables: Set[str] = field(default_factory=set)   # rule ids, or "*"
    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    errors: List[Tuple[int, str]] = field(default_factory=list)

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule == META_RULE:
            return False
        if finding.rule in self.file_disables or "*" in self.file_disables:
            return True
        rules = self.line_disables.get(finding.line, ())
        return finding.rule in rules or "*" in rules


def _parse_pragmas(source: str, known_ids: Set[str]) -> _Pragmas:
    pragmas = _Pragmas()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return pragmas  # the AST parse reports the syntax error
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        text = token.string.lstrip("#").strip()
        if not text.startswith(_PRAGMA_PREFIX):
            continue
        line = token.start[0]
        for word in text[len(_PRAGMA_PREFIX):].split():
            key, equals, value = word.partition("=")
            if not equals:
                if key in ("module", "disable", "disable-file"):
                    pragmas.errors.append(
                        (line, f"pragma '{key}' requires =VALUE"))
                    continue
                # First non-directive token starts the justification prose
                # that every suppression pragma should carry.
                break
            if key == "module" and value:
                pragmas.module = value
            elif key in ("disable", "disable-file"):
                rules = set(value.split(",")) if value else set()
                unknown = sorted(r for r in rules
                                 if r != "*" and r not in known_ids)
                if not rules or unknown:
                    pragmas.errors.append(
                        (line, f"pragma '{key}' names unknown or missing "
                               f"rule id(s): " + (", ".join(unknown) or "<none>")))
                    continue
                if key == "disable-file":
                    pragmas.file_disables |= rules
                else:
                    pragmas.line_disables.setdefault(line, set()).update(rules)
            else:
                pragmas.errors.append(
                    (line, f"unknown reprolint pragma {word!r}"))
    return pragmas


class FileContext:
    """One file under analysis: source, AST with parent links, scope info."""

    def __init__(self, path: str, source: str, known_ids: Set[str],
                 module: Optional[str] = None) -> None:
        self.path = PurePath(path).as_posix()
        self.source = source
        self.pragmas = _parse_pragmas(source, known_ids)
        self.module = self.pragmas.module or module or derive_module(path)
        self.tree = ast.parse(source, filename=path)
        self._parents: Dict[int, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        self._set_names: Optional[Dict[int, Set[str]]] = None
        self._anchor_pragmas_to_statements()

    def _anchor_pragmas_to_statements(self) -> None:
        """Expand each line pragma to its statement's full line span.

        A ``# reprolint: disable=...`` comment physically sits on one line,
        but the statement it annotates may span several — and rules report
        findings at the sub-expression's own line, which for a multi-line
        call is often a continuation line.  Anchoring: a pragma anywhere on
        a statement's lines suppresses on every line of that statement.
        Compound statements (``def``/``if``/``with``...) only contribute
        their *header* lines, so a pragma on a ``def`` line never blankets
        the function body.
        """
        if not self.pragmas.line_disables:
            return
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            body = getattr(node, "body", None)
            if isinstance(body, list) and body \
                    and isinstance(body[0], ast.stmt):
                end = max(node.lineno, body[0].lineno - 1)
            if end > node.lineno:
                spans.append((node.lineno, end))
        expanded: Dict[int, Set[str]] = {}
        for line, rules in self.pragmas.line_disables.items():
            best: Optional[Tuple[int, int]] = None
            for span in spans:
                if span[0] <= line <= span[1] and (
                        best is None
                        or span[1] - span[0] < best[1] - best[0]):
                    best = span
            covered = range(best[0], best[1] + 1) if best else range(line,
                                                                     line + 1)
            for target in covered:
                expanded.setdefault(target, set()).update(rules)
        self.pragmas.line_disables = expanded

    # -- navigation --------------------------------------------------------

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def in_package(self, *prefixes: str) -> bool:
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    # -- scope tracking ----------------------------------------------------

    def _scope_of(self, node: ast.AST) -> ast.AST:
        return self.enclosing_function(node) or self.tree

    def set_bound_names(self, node: ast.AST) -> Set[str]:
        """Names bound to ``set``-valued expressions in ``node``'s scope
        (assignments from ``set(...)``, set literals/comprehensions, or a
        ``Set[...]`` annotation) — the scope tracking behind REP003."""
        if self._set_names is None:
            self._set_names = {}
            for candidate in self.walk():
                names: List[str] = []
                if isinstance(candidate, ast.Assign) and _is_set_expr(candidate.value):
                    for target in candidate.targets:
                        if isinstance(target, ast.Name):
                            names.append(target.id)
                elif isinstance(candidate, ast.AnnAssign) and isinstance(
                        candidate.target, ast.Name):
                    annotation = dotted_name(candidate.annotation) \
                        if not isinstance(candidate.annotation, ast.Subscript) \
                        else dotted_name(candidate.annotation.value)
                    if annotation.split(".")[-1] in ("set", "Set", "frozenset",
                                                     "FrozenSet"):
                        names.append(candidate.target.id)
                    elif candidate.value is not None and _is_set_expr(candidate.value):
                        names.append(candidate.target.id)
                if names:
                    scope = self._scope_of(candidate)
                    self._set_names.setdefault(id(scope), set()).update(names)
        return self._set_names.get(id(self._scope_of(node)), set())


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: (rule, path) plus its justification."""

    rule: str
    path: str
    comment: str

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        return (finding.path == self.path
                or finding.path.endswith("/" + self.path))


def load_baseline(path: str, known_ids: Set[str],
                  ) -> Tuple[List[BaselineEntry], List[Finding]]:
    """Parse a baseline file; malformed entries become ``REP000`` findings."""
    entries: List[BaselineEntry] = []
    errors: List[Finding] = []

    def error(message: str) -> None:
        errors.append(Finding(META_RULE, PurePath(path).as_posix(), 1, 0,
                              message, "fix the baseline file"))

    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        error(f"cannot read baseline: {exc}")
        return entries, errors
    raw_entries = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(raw_entries, list):
        error("baseline must be an object with an 'entries' list")
        return entries, errors
    for position, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            error(f"baseline entry #{position} is not an object")
            continue
        rule = raw.get("rule", "")
        target = raw.get("path", "")
        comment = raw.get("comment", "")
        if rule not in known_ids:
            error(f"baseline entry #{position} names unknown rule {rule!r}")
            continue
        if not target or not isinstance(target, str):
            error(f"baseline entry #{position} is missing a 'path'")
            continue
        if not comment or not isinstance(comment, str) or not comment.strip():
            error(f"baseline entry #{position} ({rule} in {target}) has no "
                  f"justification 'comment' — every suppression must say why")
            continue
        entries.append(BaselineEntry(rule, PurePath(target).as_posix(),
                                     comment.strip()))
    return entries, errors


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

#: Directory names skipped when walking trees (deliberate-violation fixtures
#: are linted only when a test passes their file path explicitly).
SKIP_DIR_NAMES = frozenset({"__pycache__", "lint_fixtures", ".git"})


@dataclass
class LintResult:
    """Outcome of one lint run, after pragma + baseline suppression."""

    findings: List[Finding]
    stale: List[BaselineEntry]
    file_count: int
    baseline_applied: int = 0
    # Whole-program stats (populated by lint_project; zero for file-only runs).
    module_count: int = 0
    call_edges: int = 0
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIR_NAMES.intersection(candidate.parts):
                    yield candidate
        else:
            yield path


def lint_source(source: str, path: str, rules: Sequence[Rule],
                module: Optional[str] = None,
                known_ids: Optional[Set[str]] = None) -> List[Finding]:
    """Lint one source string (the API tests and editors use).

    ``known_ids`` is the set of rule ids pragmas may legally name; it
    defaults to the ids of ``rules`` but callers running only the
    per-file families pass the full registry (file + project ids) so a
    ``disable=REP0xx`` pragma for a project rule is not itself an error.
    """
    if known_ids is None:
        known_ids = {rule.id for rule in rules}
    try:
        ctx = FileContext(path, source, known_ids, module=module)
    except SyntaxError as exc:
        return [Finding(META_RULE, PurePath(path).as_posix(),
                        exc.lineno or 1, exc.offset or 0,
                        f"syntax error: {exc.msg}", "")]
    findings: Dict[Tuple[str, int, int], Finding] = {}
    for line, message in ctx.pragmas.errors:
        finding = Finding(META_RULE, ctx.path, line, 0, message,
                          "see DESIGN.md 'Static invariants and reprolint'")
        findings[(finding.rule, finding.line, finding.col)] = finding
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.pragmas.suppresses(finding):
                findings.setdefault(
                    (finding.rule, finding.line, finding.col), finding)
    return sorted(findings.values(), key=lambda f: f.sort_key)


def apply_baseline(findings: List[Finding], baseline_path: Optional[str],
                   known_ids: Set[str], file_count: int) -> LintResult:
    """Fold raw findings and the committed baseline into a LintResult."""
    entries: List[BaselineEntry] = []
    if baseline_path is not None:
        entries, baseline_errors = load_baseline(baseline_path, known_ids)
        findings = findings + baseline_errors
    kept: List[Finding] = []
    matched: Set[BaselineEntry] = set()
    suppressed = 0
    for finding in findings:
        entry = next((e for e in entries if e.matches(finding)), None)
        if entry is not None and finding.rule != META_RULE:
            matched.add(entry)
            suppressed += 1
        else:
            kept.append(finding)
    stale = [entry for entry in entries if entry not in matched]
    kept.sort(key=lambda f: f.sort_key)
    return LintResult(findings=kept, stale=stale, file_count=file_count,
                      baseline_applied=suppressed)


def lint_paths(paths: Sequence[str], rules: Sequence[Rule],
               baseline_path: Optional[str] = None,
               known_ids: Optional[Set[str]] = None) -> LintResult:
    """Lint files/trees, then apply the committed baseline."""
    if known_ids is None:
        known_ids = {rule.id for rule in rules}
    findings: List[Finding] = []
    file_count = 0
    for file_path in iter_python_files(paths):
        file_count += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(META_RULE, file_path.as_posix(), 1, 0,
                                    f"cannot read file: {exc}", ""))
            continue
        findings.extend(lint_source(source, str(file_path), rules,
                                    known_ids=known_ids))
    return apply_baseline(findings, baseline_path, known_ids, file_count)

"""Client-side recovery: exponential backoff, retry budgets, resume semantics.

Real sync clients do not abandon an upload because one request failed — they
back off and retry, and *how* they retry decides how much traffic a failure
costs.  A client that can resume a chunked transfer re-sends only the failed
chunk; a client that restarts from zero re-sends everything delivered so far,
and every one of those repeated bytes inflates TUE without moving any new
data.  That failure-induced term is exactly the network-level inefficiency
the paper's TUE metric is built to expose.

:class:`RetryPolicy` is the immutable configuration (a design choice, like
the profile vectors); :class:`RetryState` is the per-client mutable side —
a seeded RNG for jitter and the per-transaction backoff budget — so that
identical seeds always produce identical backoff sequences and experiments
stay exactly repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class RetriesExhausted(RuntimeError):
    """The retry policy gave up on a sync transaction.

    Raised after ``max_attempts`` consecutive failures on one request or
    once the transaction's backoff budget is spent.  The client surfaces it
    exactly like a quota failure: the sync is abandoned and recorded.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery design choices of one client.

    ``resumable`` is the headline knob: ``True`` resumes a chunked transfer
    at the failed chunk, ``False`` restarts the file from byte zero
    (re-sending already-delivered chunks as pure waste).
    """

    #: Consecutive failed attempts tolerated for one request before giving up.
    max_attempts: int = 6
    #: First backoff delay, seconds.
    base_backoff: float = 0.5
    #: Multiplier applied per further attempt (exponential backoff).
    backoff_factor: float = 2.0
    #: Ceiling on a single backoff delay, seconds.
    max_backoff: float = 30.0
    #: Uniform jitter fraction: each delay is scaled by 1 ± jitter.
    jitter: float = 0.1
    #: Seed for the jitter RNG — same seed, same backoff sequence.
    seed: int = 0
    #: Resume chunked transfers at the failed chunk (True) or restart the
    #: whole file from zero (False).
    resumable: bool = True
    #: Total backoff seconds allowed per sync transaction before giving up.
    backoff_budget: float = 300.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff <= 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be positive and non-decreasing")
        if self.max_backoff < self.base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.backoff_budget <= 0:
            raise ValueError("backoff_budget must be positive")

    def make_state(self) -> "RetryState":
        return RetryState(self)

    def describe(self) -> str:
        mode = "resumable" if self.resumable else "restart"
        return (f"retry({mode}, x{self.max_attempts}, "
                f"{self.base_backoff:g}s*{self.backoff_factor:g})")


class RetryState:
    """Per-client mutable retry machinery (seeded jitter + budget)."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self._rng = random.Random(policy.seed)
        #: Backoff seconds spent in the current sync transaction.
        self.spent = 0.0
        #: Lifetime counters, surfaced through ClientStats as well.
        self.total_retries = 0

    def begin_transaction(self) -> None:
        """Reset the per-transaction backoff budget (not the RNG)."""
        self.spent = 0.0

    def budget_exhausted(self) -> bool:
        return self.spent >= self.policy.backoff_budget

    def backoff(self, attempt: int) -> float:
        """Jittered exponential delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        policy = self.policy
        raw = min(policy.base_backoff * policy.backoff_factor ** (attempt - 1),
                  policy.max_backoff)
        if policy.jitter:
            raw *= 1.0 + policy.jitter * (2.0 * self._rng.random() - 1.0)
        self.spent += raw
        self.total_retries += 1
        return raw

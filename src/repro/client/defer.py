"""Sync-deferment policies: none, fixed, adaptive (ASD), and byte-counter.

§6.1 of the paper finds three services batching frequent modifications with a
*fixed* sync deferment (Google Drive ≈ 4.2 s, OneDrive ≈ 10.5 s, SugarSync ≈
6 s): the client syncs only once the file has been quiet for T seconds, so
the timer resets on every new update.  Fixed deferments fail when the
modification period X exceeds T — every update syncs individually and the
traffic overuse problem returns.

The paper's proposed fix is the *adaptive sync defer* (ASD), Eq. 2:

    T_i = min(T_{i-1}/2 + Δt_i/2 + ε, T_max)

so the deferment tracks (slightly above) the observed inter-update time and
frequent modifications stay batched at any update rate.

The byte-counter policy reproduces the UDS baseline of [36] for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class DeferState:
    """Per-file deferment state."""

    last_update: float = -math.inf
    first_pending: float = math.inf
    pending_bytes: int = 0
    update_count: int = 0
    current_defer: float = 0.0
    last_sync: float = -math.inf


class DeferPolicy:
    """Base class; decides when a file's pending updates become syncable."""

    def new_state(self) -> DeferState:
        return DeferState()

    def on_update(self, state: DeferState, now: float, update_bytes: int) -> None:
        """Record one file update at virtual time ``now``."""
        state.first_pending = min(state.first_pending, now)
        state.pending_bytes += update_bytes
        state.update_count += 1
        state.last_update = now

    def eligible_at(self, state: DeferState) -> float:
        """Absolute time at which the pending batch may be synced."""
        raise NotImplementedError

    def on_sync(self, state: DeferState, now: float = 0.0) -> None:
        """Reset per-batch fields after the pending updates were synced."""
        state.first_pending = math.inf
        state.pending_bytes = 0
        state.update_count = 0
        state.last_sync = now

    def describe(self) -> str:
        return type(self).__name__


class NoDefer(DeferPolicy):
    """Sync as soon as conditions 1 and 2 permit (Dropbox, Box, Ubuntu One)."""

    def eligible_at(self, state: DeferState) -> float:
        return state.last_update

    def describe(self) -> str:
        return "none"


class FixedDefer(DeferPolicy):
    """Quiescence timer with a fixed, non-configurable deferment T."""

    def __init__(self, deferment: float):
        if deferment <= 0:
            raise ValueError("deferment must be positive")
        self.deferment = deferment

    def eligible_at(self, state: DeferState) -> float:
        return state.last_update + self.deferment

    def describe(self) -> str:
        return f"fixed({self.deferment:g}s)"


class AdaptiveSyncDefer(DeferPolicy):
    """The paper's ASD mechanism (Eq. 2).

    ``T_i`` halves its distance to the observed inter-update gap each round,
    stays slightly above it (ε), and is capped at ``T_max`` so sync delay
    never becomes intolerable.
    """

    def __init__(self, initial_defer: float = 1.0, epsilon: float = 0.5,
                 t_max: float = 30.0):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1.0) per the paper")
        if t_max <= 0 or initial_defer <= 0:
            raise ValueError("deferments must be positive")
        self.initial_defer = initial_defer
        self.epsilon = epsilon
        self.t_max = t_max

    def new_state(self) -> DeferState:
        state = DeferState()
        state.current_defer = self.initial_defer
        return state

    def on_update(self, state: DeferState, now: float, update_bytes: int) -> None:
        previous_update = state.last_update
        super().on_update(state, now, update_bytes)
        if math.isinf(previous_update):
            return  # first update ever: keep the initial deferment
        inter_update = now - previous_update
        state.current_defer = min(
            state.current_defer / 2.0 + inter_update / 2.0 + self.epsilon,
            self.t_max,
        )

    def eligible_at(self, state: DeferState) -> float:
        return state.last_update + state.current_defer

    def describe(self) -> str:
        return f"asd(eps={self.epsilon:g}, tmax={self.t_max:g}s)"


class ScanIntervalDefer(DeferPolicy):
    """Folder-scanner cadence: syncs are spaced at least ``interval`` apart.

    Several clients (Box, Ubuntu One) detect changes by rescanning the sync
    folder on a timer rather than by quiescence.  The effect on frequent
    modifications differs from :class:`FixedDefer`: updates are batched at a
    fixed cadence for *any* modification period shorter than the interval,
    and there is no TUE≈1 plateau — TUE declines smoothly as X grows, which
    is exactly the Box/Ubuntu One shape in Figure 6 (c)/(e).
    """

    def __init__(self, interval: float):
        # interval == 0 would degenerate to NoDefer while *claiming* to be a
        # scanner cadence; reject it so misconfigured profiles fail loudly.
        if interval <= 0:
            raise ValueError("scan interval must be positive (use NoDefer "
                             "for scan-free change detection)")
        self.interval = interval

    def eligible_at(self, state: DeferState) -> float:
        return max(state.first_pending, state.last_sync + self.interval)

    def describe(self) -> str:
        return f"scan({self.interval:g}s)"


class ByteCounterDefer(DeferPolicy):
    """UDS-style batching [36]: flush once pending bytes reach a threshold.

    A quiescence timeout guarantees progress for slow producers.
    """

    def __init__(self, threshold_bytes: int = 256 * 1024, flush_timeout: float = 10.0):
        if threshold_bytes <= 0 or flush_timeout <= 0:
            raise ValueError("threshold and timeout must be positive")
        self.threshold_bytes = threshold_bytes
        self.flush_timeout = flush_timeout

    def eligible_at(self, state: DeferState) -> float:
        if state.pending_bytes >= self.threshold_bytes:
            return state.last_update
        return state.last_update + self.flush_timeout

    def describe(self) -> str:
        return f"byte-counter({self.threshold_bytes}B, {self.flush_timeout:g}s)"

"""The event-driven sync client engine.

This is the client half of a cloud storage service.  It watches a
:class:`~repro.fsim.SyncFolder`, batches pending changes according to the
paper's two *natural batching* conditions (§6.2) plus the profile's defer
policy (§6.1), and pushes updates to a :class:`~repro.cloud.CloudServer`
over a metered :class:`~repro.simnet.Channel`:

* **Condition 1** — a new modification is synced only after the previous
  sync transaction has completely finished;
* **Condition 2** — ... and only after the client has finished computing the
  modified file's metadata (time modelled by the machine profile).

The upload pipeline per file follows the profile's design choices:
dedup negotiation (fingerprints first, content only for misses), rsync delta
for IDS profiles, compression of whatever goes on the wire, and full-file or
chunked transfer for the rest.  All bytes are metered with a payload/overhead
split so TUE and the paper's overhead analyses fall out directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..chunking import chunk_data
from ..cloud import CloudServer, NotFound, QuotaExceeded, TransientError
from ..content import Content
from ..delta import FileSignature, compute_signature
from ..fsim import FileEvent, FileOp, SyncFolder
from ..simnet import (
    Channel,
    FaultInjector,
    Link,
    Simulator,
    TrafficMeter,
    TransferInterrupted,
)
from .defer import DeferPolicy, DeferState
from .hardware import M1, MachineProfile
from .profiles import BdsMode, ServiceProfile
from .retry import RetriesExhausted, RetryPolicy, RetryState
from .strategies.base import SyncStrategy, TransferTally
from .strategies.fixedblock import FIXED_DELTA
from .strategies.fullfile import FULL_FILE

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..obs.recorder import TraceRecorder

#: Negotiation wire cost per fingerprint (hex digest + framing).
_NEG_UP_PER_UNIT = 40
_NEG_DOWN_PER_UNIT = 10
_NEG_BASE_UP = 120
_NEG_BASE_DOWN = 60
#: Small metadata exchange for a deletion (attribute change only, §4.2).
_DELETE_META_UP = 420
_DELETE_META_DOWN = 260


@dataclass
class PendingChange:
    """Accumulated not-yet-synced state of one path."""

    path: str
    created: bool = False
    deleted: bool = False
    ops: int = 0
    update_bytes: int = 0
    first_time: float = math.inf
    renamed_from: Optional[str] = None


@dataclass
class SyncRecord:
    """One completed sync transaction (for probes and tests)."""

    start: float
    end: float
    paths: List[str]
    up_payload: int
    total_bytes: int
    ops_batched: int


@dataclass
class ClientStats:
    """Counters describing how the client behaved."""

    events_seen: int = 0
    sync_transactions: int = 0
    files_synced: int = 0
    deletions_synced: int = 0
    renames_synced: int = 0
    full_file_syncs: int = 0
    delta_syncs: int = 0
    cdc_delta_syncs: int = 0
    recon_syncs: int = 0
    dedup_skipped_units: int = 0
    dedup_skipped_bytes: int = 0
    failed_syncs: int = 0
    transient_errors: int = 0
    retries: int = 0
    retry_giveups: int = 0
    bundle_commits: int = 0
    bundled_files: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    ops_per_sync: List[int] = field(default_factory=list)


class SyncClient:
    """One device running a service's client, bound to a sync folder."""

    def __init__(
        self,
        sim: Simulator,
        folder: SyncFolder,
        server: CloudServer,
        profile: ServiceProfile,
        machine: MachineProfile = M1,
        link: Optional[Link] = None,
        meter: Optional[TrafficMeter] = None,
        user: str = "user",
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        recorder: Optional["TraceRecorder"] = None,
        strategy: Optional[SyncStrategy] = None,
    ):
        if link is None:
            raise ValueError("a Link is required (use simnet.mn_link()/bj_link())")
        self.sim = sim
        self.folder = folder
        self.server = server
        self.profile = profile
        self.machine = machine
        self.link = link
        self.meter = meter or TrafficMeter()
        self.user = user
        self.recorder = recorder
        self.channel = Channel(sim, link, self.meter, profile.protocol,
                               faults=faults, recorder=recorder)
        self.retry = retry
        self._retry_state: Optional[RetryState] = (
            retry.make_state() if retry is not None else None)
        self.defer_policy: DeferPolicy = profile.make_defer()
        #: Explicit sync strategy (see :mod:`repro.client.strategies`).
        #: ``None`` keeps the profile-driven default route: the IDS delta
        #: path when eligible, full-file upload otherwise — byte-identical
        #: to the pre-strategy engine.
        self.strategy = strategy
        #: Live cost ledger of the strategy transfer in flight, if any.
        self._tally: Optional[TransferTally] = None
        #: Cumulative per-strategy cost vectors, recorder-independent so
        #: untraced runs report identical numbers: name -> TransferTally.
        self.strategy_ledger: Dict[str, TransferTally] = {}
        #: Per-strategy plan caches (see strategies.base._PlanCache).
        self._strategy_plans: Dict[str, object] = {}

        self._pending: Dict[str, PendingChange] = {}
        self._defer_states: Dict[str, DeferState] = {}
        self._shadow: Dict[str, Content] = {}
        #: path → (shadow Content identity, its signature); recomputing the
        #: basis signature every sync dominates frequent-modification runs.
        self._signature_cache: Dict[str, tuple] = {}
        self._ready_at: Dict[str, float] = {}
        self._compute_busy_until = 0.0
        self._uploading = False
        self._wake = None

        self.stats = ClientStats()
        self.history: List[SyncRecord] = []
        #: (time, message) of syncs abandoned on server-side errors.
        self.failures: List[tuple] = []

        folder.subscribe(self._on_event)

    # -- event intake --------------------------------------------------------

    def _on_event(self, event: FileEvent) -> None:
        self.stats.events_seen += 1
        now = self.sim.now
        change = self._pending.get(event.path)
        if change is None:
            change = PendingChange(path=event.path)
            self._pending[event.path] = change
        change.ops += 1
        change.update_bytes += event.update_bytes
        change.first_time = min(change.first_time, now)
        if event.op is FileOp.DELETE:
            change.deleted = True
        elif event.op is FileOp.RENAME:
            change.deleted = False
            if event.old_path in self._shadow:
                change.renamed_from = event.old_path
            elif event.old_path in self._pending:
                # Renamed before its creation (or an earlier rename) ever
                # synced: carry the original pending state — including any
                # chained rename source — over to the new path.
                original = self._pending.pop(event.old_path)
                change.created = original.created
                change.ops += original.ops
                change.update_bytes += original.update_bytes
                change.renamed_from = original.renamed_from
        else:
            change.deleted = False
            if event.op is FileOp.CREATE and event.path not in self._shadow:
                change.created = True

        state = self._defer_states.get(event.path)
        if state is None:
            state = self.defer_policy.new_state()
            self._defer_states[event.path] = state
        self.defer_policy.on_update(state, now, event.update_bytes)

        # Condition 2: queue the metadata computation for this update.
        start = max(now, self._compute_busy_until)
        done = start + self.machine.metadata_compute_time(event.size)
        self._compute_busy_until = done
        self._ready_at[event.path] = done
        self.sim.schedule(done - now, self._maybe_sync)

    # -- scheduling ----------------------------------------------------------

    def _eligible_time(self, path: str) -> float:
        """Earliest time this path's pending batch may start syncing."""
        ready = self._ready_at.get(path, 0.0)
        state = self._defer_states.get(path)
        eligible = self.defer_policy.eligible_at(state) if state else 0.0
        return max(ready, eligible)

    def _maybe_sync(self) -> None:
        if self._uploading or not self._pending:
            return
        now = self.sim.now
        tolerance = 1e-9
        batch = [
            path for path in self._pending
            if self._eligible_time(path) <= now + tolerance
        ]
        if not batch:
            next_time = min(self._eligible_time(path) for path in self._pending)
            if self._wake is not None:
                self._wake.cancel()
            self._wake = self.sim.schedule(max(next_time - now, 0.0), self._maybe_sync)
            return

        changes = [self._pending.pop(path) for path in batch]
        for path in batch:
            state = self._defer_states.get(path)
            if state is not None:
                self.defer_policy.on_sync(state, now)
        self._uploading = True
        try:
            duration = self._sync_batch(changes)
        except QuotaExceeded as error:
            # The account is full: the client surfaces the error, keeps the
            # local file, and stops retrying (real clients badge the file).
            self.stats.failed_syncs += 1
            self.failures.append((self.sim.now, str(error)))
            duration = 0.1
            self._note_abandoned(now, duration, error)
        except (RetriesExhausted, TransientError, TransferInterrupted) as error:
            # A transient failure the client could not (or would not) ride
            # out: the sync transaction is abandoned and recorded.  Whatever
            # bytes the failed attempts burned are already on the meter.
            self.stats.failed_syncs += 1
            self.failures.append((self.sim.now, str(error)))
            duration = max(getattr(error, "elapsed", 0.0), 0.1)
            self._note_abandoned(now, duration, error)
        self.sim.schedule(duration, self._sync_done)

    def _note_abandoned(self, start: float, duration: float,
                        error: Exception) -> None:
        if self.recorder is not None:
            self.recorder.record_span(
                "sync-transaction", "abandoned", "client",
                start, start + duration, error=str(error))

    def _sync_done(self) -> None:
        self._uploading = False
        self._maybe_sync()

    def idle(self) -> bool:
        """True when nothing is pending, uploading, or scheduled."""
        return not self._pending and not self._uploading

    # -- remote-change application (shared folders) ---------------------------
    #
    # A fleet follower applies changes that *other* writers committed.  The
    # folder mutation itself goes through SyncFolder.apply_remote() and
    # friends (no event, no echo upload); these methods keep the engine's
    # synced basis — shadow and signature cache — consistent with it.

    def has_pending(self, path: str) -> bool:
        """True when the path has local changes not yet synced up."""
        return path in self._pending

    def pending_paths(self) -> List[str]:
        """Paths with unsynced local changes, in sorted order."""
        return sorted(self._pending)

    def discard_pending(self, path: str) -> None:
        """Forget a path's pending local state (its changes were moved to a
        conflict copy, whose own folder event re-queues them)."""
        self._pending.pop(path, None)
        self._defer_states.pop(path, None)
        self._ready_at.pop(path, None)

    def absorb_remote(self, path: str, content: Content) -> None:
        """Adopt remotely-delivered content as the path's synced basis."""
        self._shadow[path] = content
        self._signature_cache.pop(path, None)

    def drop_remote(self, path: str) -> None:
        """Forget a path the cloud deleted from under us."""
        self._shadow.pop(path, None)
        self._signature_cache.pop(path, None)

    def move_remote(self, old_path: str, new_path: str) -> None:
        """Apply a remote rename to the synced basis (content unchanged)."""
        if old_path in self._shadow:
            self._shadow[new_path] = self._shadow.pop(old_path)
        cached = self._signature_cache.pop(old_path, None)
        if cached is not None:
            self._signature_cache[new_path] = cached

    # -- sync transactions ------------------------------------------------------

    def _sync_batch(self, changes: List[PendingChange]) -> float:
        start = self.sim.now
        before = self.meter.snapshot()
        self.server.set_time(start)
        if self._retry_state is not None:
            self._retry_state.begin_transaction()
        duration = self.machine.sync_processing_time()

        uploads = [c for c in changes if not c.deleted]
        deletions = [c for c in changes if c.deleted]

        # Renames carry server-side move semantics the combined BDS commit
        # does not express; sync them individually first.
        renames = [c for c in uploads if self._is_pure_rename(c)]
        uploads = [c for c in uploads if c not in renames]
        for change in renames:
            duration += self._sync_one(change)

        bundle = self.profile.bundle
        if bundle.enabled and len(uploads) > 1:
            bundled = [c for c in uploads if self._bundle_eligible(c)]
            if len(bundled) > 1:
                uploads = [c for c in uploads if c not in bundled]
                duration += self._sync_bundled(bundled)

        bds = self.profile.bds
        if uploads and bds.mode is BdsMode.FULL and len(uploads) > 1:
            duration += self._sync_combined(uploads)
        else:
            overhead = self.profile.overhead
            share_connection = (bds.mode is not BdsMode.NONE
                                or overhead.batch_connection_reuse)
            for index, change in enumerate(uploads):
                if overhead.connection_per_sync and (
                        index == 0 or not share_connection):
                    self.channel.drop_connection()
                lightweight = bds.mode is BdsMode.PARTIAL and index > 0
                in_batch = share_connection and index > 0
                duration += self._sync_one(change, lightweight=lightweight,
                                           in_batch=in_batch)
        for change in deletions:
            duration += self._sync_delete(change)

        delta = self.meter.since(before)
        self.stats.sync_transactions += 1
        self.stats.batch_sizes.append(len(changes))
        self.stats.ops_per_sync.append(sum(c.ops for c in changes))
        self.history.append(SyncRecord(
            start=start, end=start + duration, paths=[c.path for c in changes],
            up_payload=delta.up_payload, total_bytes=delta.total,
            ops_batched=sum(c.ops for c in changes)))
        if self.recorder is not None:
            policy = self.defer_policy.describe()
            for change in changes:
                # The defer window: from the change's first event to the
                # moment its batch started syncing.
                self.recorder.record_span(
                    "defer-window", policy, "client",
                    min(change.first_time, start), start,
                    path=change.path, ops=change.ops,
                    update_bytes=change.update_bytes)
            self.recorder.record_span(
                "sync-transaction", "sync", "client", start, start + duration,
                delta=delta, paths=[c.path for c in changes],
                ops=sum(c.ops for c in changes))
        return duration

    # -- resilient transfers ---------------------------------------------------

    def _guarded_exchange(self, kind: str = "exchange", **kwargs) -> float:
        """One server-bound exchange, retried under the client's retry policy.

        Checks server availability first (brownout windows reject requests
        before any payload moves), then runs the exchange; network faults
        surface as :class:`TransferInterrupted` from the channel itself.
        Without a retry policy the first failure propagates and the sync
        transaction is abandoned by :meth:`_maybe_sync`.
        """
        if self.retry is None:
            self.server.check_available(self.channel.effective_now())
            duration = self.channel.exchange(kind=kind, **kwargs)
            self._note_exchange(kwargs)
            return duration
        duration = 0.0
        failures = 0
        while True:
            try:
                self.server.check_available(self.channel.effective_now())
                duration += self.channel.exchange(kind=kind, **kwargs)
                self._note_exchange(kwargs)
                return duration
            except (TransientError, TransferInterrupted) as error:
                if isinstance(error, TransientError):
                    # A rejected request still costs its framing on the wire.
                    error.elapsed = self.channel.error_exchange(
                        kind=kind + "-rejected")
                failures += 1
                duration += self._recover(error, failures)

    def _recover(self, error: Exception, attempt: int) -> float:
        """Absorb one transient failure: back off, or give up.

        Returns the wall-clock cost of the failed attempt plus the backoff
        wait; raises :class:`RetriesExhausted` once the attempt or backoff
        budget is spent.  Honours the service's Retry-After hint when the
        fault window's end is disclosed (waiting less would only burn more
        rejected requests).
        """
        self.stats.transient_errors += 1
        elapsed = getattr(error, "elapsed", 0.0)
        state = self._retry_state
        assert state is not None and self.retry is not None
        if attempt >= self.retry.max_attempts or state.budget_exhausted():
            self.stats.retry_giveups += 1
            if self.recorder is not None:
                at = self.channel.effective_now()
                self.recorder.record_span(
                    "retry-attempt", "give-up", "client", at, at,
                    attempt=attempt, error=str(error))
            raise RetriesExhausted(
                f"gave up after {attempt} attempt(s): {error}") from error
        wait = state.backoff(attempt)
        retry_at = getattr(error, "retry_at", None)
        if retry_at is not None:
            wait = max(wait, retry_at - self.channel.effective_now())
        if self.recorder is not None:
            at = self.channel.effective_now()
            self.recorder.record_span(
                "retry-attempt", type(error).__name__, "client",
                at, at + wait, attempt=attempt, wait=wait, error=str(error))
        self.channel.wait(wait)
        self.stats.retries += 1
        return elapsed + wait

    def _send_units_resilient(self, unit_wires: List[int], meta_up: int,
                              meta_down: int, kind: str = "upload") -> float:
        """Send a chunked payload one unit per request, surviving faults.

        This is the transfer loop where ``RetryPolicy.resumable`` matters:
        a resumable client picks up at the failed unit, while a
        restart-from-zero client re-sends every already-delivered unit after
        each failure — metered as pure waste via
        :meth:`~repro.simnet.protocol.Channel.resend_wasted`, since the
        server discards the repeated prefix.
        """
        policy = self.retry
        assert policy is not None
        per_byte = self.profile.overhead.per_byte_factor
        duration = 0.0
        delivered_wire = 0
        failures = 0
        index = 0
        while index < len(unit_wires):
            wire = unit_wires[index]
            first = index == 0
            try:
                self.server.check_available(self.channel.effective_now())
                duration += self.channel.exchange(
                    up_payload=wire,
                    up_meta=(meta_up if first else 0) + int(per_byte * wire),
                    down_meta=meta_down if first else 0,
                    kind=kind,
                )
            except (TransientError, TransferInterrupted) as error:
                if isinstance(error, TransientError):
                    error.elapsed = self.channel.error_exchange(
                        kind=kind + "-rejected")
                failures += 1
                duration += self._recover(error, failures)
                if not policy.resumable and delivered_wire > 0:
                    # Restart from byte zero: the delivered prefix goes over
                    # the wire again, and the server throws it away.
                    duration += self.channel.resend_wasted(
                        delivered_wire, kind=kind + "-restart")
            else:
                if self._tally is not None:
                    self._tally.note(wire)
                delivered_wire += wire
                failures = 0
                index += 1
        return duration

    # -- single-file sync --------------------------------------------------------

    def _is_pure_rename(self, change: PendingChange) -> bool:
        """True when the change ships as a server-side move: its source is
        synced and the old path no longer exists locally.  A recreated
        source means the move would tombstone the new file, so the change
        must upload as content instead."""
        return (change.renamed_from is not None
                and change.renamed_from in self._shadow
                and not self.folder.exists(change.renamed_from))

    def _sync_one(self, change: PendingChange, lightweight: bool = False,
                  in_batch: bool = False) -> float:
        """Sync one path's pending state; returns wall-clock duration.

        ``lightweight`` marks a non-first file of a partial-BDS batch (tiny
        per-file overhead); ``in_batch`` marks a non-first file of a plain
        multi-file transaction (shared connection, amortised metadata).
        """
        path = change.path
        try:
            content = self.folder.get(path)
        except KeyError:
            return 0.0  # deleted while queued but not flagged; nothing to do

        profile = self.profile
        overhead = profile.overhead

        if self._is_pure_rename(change):
            # Metadata-only move: no content crosses the wire (§4.2's
            # attribute-change pattern applies to renames as well).
            duration = self._guarded_exchange(
                up_meta=_DELETE_META_UP, down_meta=_DELETE_META_DOWN,
                kind="rename")
            self.server.rename_file(self.user, change.renamed_from, path)
            self._shadow[path] = self._shadow.pop(change.renamed_from)
            cached = self._signature_cache.pop(change.renamed_from, None)
            if cached is not None:
                self._signature_cache[path] = cached
            self.stats.renames_synced += 1
            if self._shadow[path].md5 == content.md5:
                self.stats.files_synced += 1
                if overhead.notify_down:
                    duration += self.channel.notify(overhead.notify_down)
                return duration
            # Renamed *and* modified: fall through to sync the new content.
            rename_duration = duration
        else:
            rename_duration = 0.0

        duration = rename_duration

        if self.strategy is not None:
            spent, chosen = self._strategy_transfer(
                self.strategy, change, content,
                lightweight=lightweight, in_batch=in_batch, resolve=True)
        else:
            # The profile-driven default route, unchanged from the
            # pre-strategy engine: IDS profiles delta-sync modifications
            # of a synced, non-empty basis; everything else ships whole.
            use_delta = (
                profile.uses_ids
                and not change.created
                and path in self._shadow
                and self._shadow[path].size > 0
            )
            spent, chosen = self._strategy_transfer(
                FIXED_DELTA if use_delta else FULL_FILE, change, content,
                lightweight=lightweight, in_batch=in_batch)
        duration += spent

        if overhead.notify_down:
            duration += self.channel.notify(overhead.notify_down)
        self._shadow[path] = content
        if self.strategy is None:
            if profile.uses_ids:
                self._signature_cache[path] = (
                    content, compute_signature(content.data, profile.delta_block))
        else:
            block = chosen.basis_block_size(profile)
            if block is not None:
                self._signature_cache[path] = (
                    content, compute_signature(content.data, block))
            else:
                self._signature_cache.pop(path, None)
        self.stats.files_synced += 1
        return duration

    def _strategy_transfer(self, strategy: SyncStrategy, change: PendingChange,
                           content: Content, lightweight: bool = False,
                           in_batch: bool = False, resolve: bool = False):
        """Run one strategy transfer under a cost tally; returns
        ``(duration, concrete_strategy)``.

        Every strategy-routed transfer emits one ``delta-exchange`` span
        carrying its ``(wire_bytes, round_trips, cpu_units)`` cost vector
        plus the payload ledger the strategy-conservation audit balances
        against the named wire exchanges.  The span is emitted even when
        the transfer dies mid-way (quota, exhausted retries): whatever
        the failed attempt already put on the wire stays explained.
        """
        start = self.sim.now
        before = self.meter.snapshot()
        tally = TransferTally()
        previous = self._tally
        self._tally = tally
        concrete = strategy
        spent = 0.0
        try:
            if resolve:
                concrete = strategy.resolve(self, change, content)
            spent = concrete.transfer(self, change, content,
                                      lightweight=lightweight,
                                      in_batch=in_batch)
            return spent, concrete
        finally:
            self._tally = previous
            totals = self.strategy_ledger.setdefault(
                concrete.name, TransferTally())
            totals.payload += tally.payload
            totals.exchanges += tally.exchanges
            totals.cpu_units += tally.cpu_units
            if self.recorder is not None:
                delta = self.meter.since(before)
                self.recorder.record_span(
                    "delta-exchange", concrete.name, "client",
                    start, start + spent,
                    strategy=concrete.name, path=change.path,
                    payload=tally.payload,
                    wire_names=list(concrete.wire_names),
                    wire_bytes=delta.up_total + delta.down_total,
                    round_trips=tally.exchanges,
                    cpu_units=tally.cpu_units)

    def _basis_signature(self, path: str, old: Content,
                         block_size: int) -> FileSignature:
        """The basis signature for a delta sync, from the cache when it
        still describes this exact basis content at this block size."""
        cached = self._signature_cache.get(path)
        if (cached is not None and cached[0] is old
                and cached[1].block_size == block_size):
            return cached[1]
        return compute_signature(old.data, block_size)

    def charge_cpu(self, units: int) -> None:
        """Charge strategy computation (bytes processed) to the live tally."""
        if self._tally is not None:
            self._tally.charge_cpu(units)

    def _note_exchange(self, kwargs: Dict) -> None:
        if self._tally is not None:
            self._tally.note(int(kwargs.get("up_payload", 0)))

    def _upload_full(self, path: str, content: Content,
                     lightweight: bool = False,
                     in_batch: bool = False,
                     commit: bool = True) -> float:
        """Full-file (possibly chunked) upload with dedup negotiation."""
        profile = self.profile
        overhead = profile.overhead
        unit_size = profile.storage_chunk_size or max(content.size, 1)
        units = chunk_data(content.data, unit_size)
        digests = [unit.digest for unit in units]
        duration = 0.0

        missing = digests
        if profile.dedup.enabled:
            duration += self._guarded_exchange(
                up_meta=_NEG_BASE_UP + _NEG_UP_PER_UNIT * len(digests),
                down_meta=_NEG_BASE_DOWN + _NEG_DOWN_PER_UNIT * len(digests),
                kind="dedup-negotiation",
            )
            missing = self.server.negotiate(self.user, digests)

        missing_set = set(missing)
        payload = 0
        unit_wires = []
        keys = []
        sizes = []
        for unit in units:
            if unit.digest in missing_set:
                wire = profile.upload_compression.wire_size(Content(unit.data))
                payload += wire
                unit_wires.append(wire)
                key = self.server.upload_chunk(self.user, unit.digest, unit.data)
                missing_set.discard(unit.digest)
            else:
                key = self.server.resolve(self.user, unit.digest)
                self.stats.dedup_skipped_units += 1
                self.stats.dedup_skipped_bytes += unit.length
            keys.append(key)
            sizes.append(unit.length)

        if lightweight:
            meta_up = profile.bds.per_file_bytes
            meta_down = max(profile.bds.per_file_bytes // 4, 60)
        elif in_batch:
            fraction = overhead.batch_meta_fraction
            meta_up = int(overhead.meta_up * fraction)
            meta_down = int(overhead.meta_down * fraction)
        else:
            meta_up = overhead.meta_up
            meta_down = overhead.meta_down
            duration += self._polls(overhead.requests_per_sync - 1)
        if self.retry is not None and len(unit_wires) > 1:
            # Chunked transfer under a retry policy goes one unit per
            # request so a fault costs (at most, if resumable) one unit.
            duration += self._send_units_resilient(
                unit_wires, meta_up, meta_down, kind="upload")
        else:
            duration += self._guarded_exchange(
                up_payload=payload,
                up_meta=meta_up + int(overhead.per_byte_factor * payload),
                down_meta=meta_down,
                kind="upload",
            )
        if commit:
            self.server.commit(self.user, path, content.size, content.md5,
                               digests, keys, sizes)
        return duration

    def _sync_combined(self, uploads: List[PendingChange]) -> float:
        """Full BDS: one transaction commits the whole batch (Table 7)."""
        profile = self.profile
        overhead = profile.overhead
        duration = self._polls(overhead.requests_per_sync - 1)
        total_payload = 0
        commits = []

        # One negotiation covering every unit of every file.
        all_units = []
        for change in uploads:
            try:
                content = self.folder.get(change.path)
            except KeyError:
                continue
            unit_size = profile.storage_chunk_size or max(content.size, 1)
            units = chunk_data(content.data, unit_size)
            all_units.append((change, content, units))
        digests = [u.digest for _, _, units in all_units for u in units]
        missing = digests
        if profile.dedup.enabled and digests:
            duration += self._guarded_exchange(
                up_meta=_NEG_BASE_UP + _NEG_UP_PER_UNIT * len(digests),
                down_meta=_NEG_BASE_DOWN + _NEG_DOWN_PER_UNIT * len(digests),
                kind="dedup-negotiation",
            )
            missing = self.server.negotiate(self.user, digests)
        missing_set = set(missing)

        for change, content, units in all_units:
            keys, sizes = [], []
            for unit in units:
                if unit.digest in missing_set:
                    total_payload += profile.upload_compression.wire_size(
                        Content(unit.data))
                    key = self.server.upload_chunk(self.user, unit.digest, unit.data)
                    missing_set.discard(unit.digest)
                else:
                    key = self.server.resolve(self.user, unit.digest)
                    self.stats.dedup_skipped_units += 1
                    self.stats.dedup_skipped_bytes += unit.length
                keys.append(key)
                sizes.append(unit.length)
            commits.append((change, content, [u.digest for u in units], keys, sizes))

        manifest_bytes = profile.bds.per_file_bytes * len(commits)
        duration += self._guarded_exchange(
            up_payload=total_payload,
            up_meta=overhead.meta_up + manifest_bytes
            + int(overhead.per_byte_factor * total_payload),
            down_meta=overhead.meta_down,
            kind="bds-commit",
        )
        for change, content, digests_, keys, sizes in commits:
            self.server.commit(self.user, change.path, content.size,
                               content.md5, digests_, keys, sizes)
            self._shadow[change.path] = content
            self.stats.files_synced += 1
            self.stats.full_file_syncs += 1
        if overhead.notify_down:
            duration += self.channel.notify(overhead.notify_down)
        return duration

    def _bundle_eligible(self, change: PendingChange) -> bool:
        """Small files whose sync has no per-file server semantics to lose.

        Bundling targets small creations and whole-file overwrites; files
        over the bundle size cap, vanished paths, and modifications that
        would ride the IDS delta path sync individually.
        """
        try:
            content = self.folder.get(change.path)
        except KeyError:
            return False
        if content.size > self.profile.bundle.max_file_bytes:
            return False
        if (self.profile.uses_ids and not change.created
                and change.path in self._shadow
                and self._shadow[change.path].size > 0):
            return False  # delta sync is cheaper than re-shipping the file
        return True

    def _sync_bundled(self, uploads: List[PendingChange]) -> float:
        """Bundle small files into one wire transaction (one handshake,
        one packed payload, one commit exchange).

        The per-file cost breakdown is preserved as a ledger on the
        ``bundle-commit`` span so the ``bundle-conservation`` audit can
        balance bundled wire bytes against per-file attribution.
        """
        profile = self.profile
        overhead = profile.overhead
        start = self.sim.now
        duration = self._polls(overhead.requests_per_sync - 1)
        total_payload = 0
        commits = []
        ledger = []

        all_units = []
        for change in uploads:
            content = self.folder.get(change.path)
            unit_size = profile.storage_chunk_size or max(content.size, 1)
            units = chunk_data(content.data, unit_size)
            all_units.append((change, content, units))
        digests = [u.digest for _, _, units in all_units for u in units]
        missing = digests
        if profile.dedup.enabled and digests:
            duration += self._guarded_exchange(
                up_meta=_NEG_BASE_UP + _NEG_UP_PER_UNIT * len(digests),
                down_meta=_NEG_BASE_DOWN + _NEG_DOWN_PER_UNIT * len(digests),
                kind="dedup-negotiation",
            )
            missing = self.server.negotiate(self.user, digests)
        missing_set = set(missing)

        for change, content, units in all_units:
            keys, sizes = [], []
            file_wire = 0
            for unit in units:
                if unit.digest in missing_set:
                    wire = profile.upload_compression.wire_size(
                        Content(unit.data))
                    file_wire += wire
                    total_payload += wire
                    key = self.server.upload_chunk(self.user, unit.digest,
                                                   unit.data)
                    missing_set.discard(unit.digest)
                else:
                    key = self.server.resolve(self.user, unit.digest)
                    self.stats.dedup_skipped_units += 1
                    self.stats.dedup_skipped_bytes += unit.length
                keys.append(key)
                sizes.append(unit.length)
            commits.append((change, content,
                            [u.digest for u in units], keys, sizes))
            ledger.append([change.path, file_wire, content.size])

        manifest_bytes = profile.bundle.per_file_bytes * len(commits)
        duration += self._guarded_exchange(
            up_payload=total_payload,
            up_meta=overhead.meta_up + manifest_bytes
            + int(overhead.per_byte_factor * total_payload),
            down_meta=overhead.meta_down,
            kind="bundle-commit",
        )
        # Record the ledger as soon as the bytes are on the wire: even if a
        # later per-file commit fails (quota), every bundled wire byte stays
        # explained, which is what bundle-conservation checks.
        if self.recorder is not None:
            self.recorder.record_span(
                "bundle-commit", "bundle", "client", start, start + duration,
                files=len(ledger), payload=total_payload, ledger=ledger)
        for change, content, digests_, keys, sizes in commits:
            self.server.commit(self.user, change.path, content.size,
                               content.md5, digests_, keys, sizes)
            self._shadow[change.path] = content
            if profile.uses_ids:
                self._signature_cache[change.path] = (
                    content,
                    compute_signature(content.data, profile.delta_block))
            self.stats.files_synced += 1
            self.stats.full_file_syncs += 1
            self.stats.bundled_files += 1
        self.stats.bundle_commits += 1
        if overhead.notify_down:
            duration += self.channel.notify(overhead.notify_down)
        return duration

    def _sync_delete(self, change: PendingChange) -> float:
        """Fake deletion: a tiny attribute-change exchange (§4.2)."""
        targets = []
        if change.path in self._shadow:
            targets.append(change.path)
        if (change.renamed_from is not None
                and change.renamed_from in self._shadow
                and not self.folder.exists(change.renamed_from)
                and change.renamed_from not in targets):
            # The deleted path had absorbed a not-yet-synced rename: the
            # cloud still knows the content under the old name (and, when
            # the rename landed on a previously-synced path, under both),
            # so every orphaned name gets its own tombstone.
            targets.append(change.renamed_from)
        if not targets:
            return 0.0  # created and deleted before ever reaching the cloud
        duration = 0.0
        for target in targets:
            duration += self._guarded_exchange(
                up_meta=_DELETE_META_UP, down_meta=_DELETE_META_DOWN,
                kind="delete")
            try:
                self.server.delete_file(self.user, target)
            except NotFound:
                pass
            del self._shadow[target]
            self._signature_cache.pop(target, None)
            self.stats.deletions_synced += 1
            self.stats.files_synced += 1
            if self.profile.overhead.notify_down:
                duration += self.channel.notify(self.profile.overhead.notify_down)
        return duration

    def _polls(self, count: int) -> float:
        """Auxiliary request/response exchanges some protocols issue."""
        duration = 0.0
        for _ in range(max(count, 0)):
            duration += self._guarded_exchange(
                up_meta=250, down_meta=250, kind="poll")
        return duration

    # -- downloads ------------------------------------------------------------

    def download(self, path: str) -> Content:
        """Fetch a file from the cloud, metering the down-stream traffic.

        Used by Experiment 4's download phase (Table 8 "DN" columns).
        """
        overhead = self.profile.overhead
        if overhead.connection_per_sync:
            self.channel.drop_connection()
        data = self.server.download(self.user, path)
        content = Content(data)
        wire = self.profile.download_compression.wire_size(content)
        self._guarded_exchange(
            up_meta=400,
            down_payload=wire,
            down_meta=overhead.meta_down
            + int(overhead.per_byte_factor * wire),
            kind="download",
        )
        return content

"""Multi-device synchronization: the paper's Figure 1 "other devices".

The sync principle the paper opens with is bidirectional: a change made on
one device propagates through the cloud to every other device the user owns
(and to collaborators on shared folders).  This module closes that loop:

* :class:`CloudServer` commits are announced through a per-user commit feed
  (see :meth:`repro.cloud.CloudServer.commit`, extended via
  :func:`attach_commit_feed`);
* each :class:`MirrorDevice` holds its own folder, link, and meter, receives
  push notifications, and downloads changed files — shipping the rsync
  *delta* when its profile supports IDS and the device already holds an
  older version, mirroring what real PC clients do on the down path.

This makes the DOWN-side of TUE measurable: the ISP trace the paper cites
shows 5.18 MB outbound per sync against 2.8 MB inbound precisely because
every upload fans out to mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cloud import CloudServer, NotFound
from ..content import Content
from ..delta import compute_delta, compute_signature
from ..simnet import Channel, Link, LinkSpec, Simulator, TrafficMeter, mn_link
from .hardware import M1, MachineProfile
from .profiles import ServiceProfile
from .session import SyncSession


@dataclass
class CommitEvent:
    """One committed change announced to a user's other devices."""

    user: str
    path: str
    version: int
    size: int


class CommitFeed:
    """Fan-out of commit events to subscribed devices, per user."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Callable[[CommitEvent], None]]] = {}

    def subscribe(self, user: str, callback: Callable[[CommitEvent], None]) -> None:
        self._subscribers.setdefault(user, []).append(callback)

    def announce(self, event: CommitEvent) -> None:
        for callback in self._subscribers.get(event.user, []):
            callback(event)


def attach_commit_feed(server: CloudServer) -> CommitFeed:
    """Wrap ``server.commit`` so every commit is announced on a feed."""
    feed = CommitFeed()
    original_commit = server.commit
    original_delete = server.delete_file

    def commit_and_announce(user, path, size, md5, chunk_digests, chunk_keys,
                            stored_sizes):
        version = original_commit(user, path, size, md5, chunk_digests,
                                  chunk_keys, stored_sizes)
        feed.announce(CommitEvent(user=user, path=path,
                                  version=version.version, size=size))
        return version

    def delete_and_announce(user, path):
        version = original_delete(user, path)
        feed.announce(CommitEvent(user=user, path=path,
                                  version=version.version, size=0))
        return version

    server.commit = commit_and_announce
    server.delete_file = delete_and_announce
    return feed


@dataclass
class MirrorStats:
    """Counters for one mirror device."""

    notifications: int = 0
    downloads: int = 0
    delta_downloads: int = 0
    bytes_downloaded: int = 0


class MirrorDevice:
    """A passive device of the same user that mirrors cloud state.

    Downloads are scheduled one notification-delay after each commit and
    serialised per device (a device has one network interface).  When the
    profile supports IDS and the device holds a previous version, only the
    rsync delta crosses the wire — symmetric to the upload path.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        server: CloudServer,
        profile: ServiceProfile,
        user: str,
        feed: CommitFeed,
        machine: MachineProfile = M1,
        link_spec: Optional[LinkSpec] = None,
        notification_delay: float = 0.2,
    ):
        self.name = name
        self.sim = sim
        self.server = server
        self.profile = profile
        self.user = user
        self.machine = machine
        self.link = Link(link_spec or mn_link())
        self.meter = TrafficMeter()
        self.channel = Channel(sim, self.link, self.meter, profile.protocol)
        self.notification_delay = notification_delay
        self.files: Dict[str, Content] = {}
        self.versions: Dict[str, int] = {}
        self.stats = MirrorStats()
        self._busy_until = 0.0
        feed.subscribe(user, self._on_commit)

    # -- notification handling ---------------------------------------------

    def _on_commit(self, event: CommitEvent) -> None:
        self.stats.notifications += 1
        delay = self.notification_delay
        self.channel.notify(max(self.profile.overhead.notify_down, 120))
        self.sim.schedule(delay, self._fetch, event.path, event.version)

    def _fetch(self, path: str, version: int) -> None:
        if self.versions.get(path, 0) >= version:
            return  # a later notification already brought us here
        start = max(self.sim.now, self._busy_until)
        self.sim.schedule_at(start, self._download_now, path, version)

    def _download_now(self, path: str, version: int) -> None:
        if self.versions.get(path, 0) >= version:
            return
        try:
            data = self.server.download(self.user, path)
        except NotFound:
            # Tombstoned before we fetched: mirror the deletion.
            self.files.pop(path, None)
            self.versions[path] = max(
                version, self.server.head_version(self.user, path))
            self.channel.exchange(up_meta=200, down_meta=150, kind="delete-sync")
            return
        new_content = Content(data)
        old_content = self.files.get(path)

        if (self.profile.uses_ids and old_content is not None
                and old_content.size > 0):
            signature = compute_signature(old_content.data,
                                          self.profile.delta_block)
            delta = compute_delta(signature, new_content.data)
            literals = b"".join(op.data for op in delta.ops
                                if hasattr(op, "data"))
            wire = (self.profile.download_compression.wire_size(Content(literals))
                    + (delta.wire_size - len(literals)))
            duration = self.channel.exchange(
                up_meta=300, down_payload=wire,
                down_meta=self.profile.overhead.meta_down // 2,
                kind="mirror-delta")
            self.stats.delta_downloads += 1
        else:
            wire = self.profile.download_compression.wire_size(new_content)
            duration = self.channel.exchange(
                up_meta=300, down_payload=wire,
                down_meta=self.profile.overhead.meta_down // 2,
                kind="mirror-download")

        self._busy_until = self.sim.now + duration \
            + self.machine.metadata_compute_time(new_content.size)
        self.files[path] = new_content
        # download() delivered the server's *head*, which may already be
        # newer than the notification that triggered this fetch (two commits
        # inside one notification delay).  Recording only the notification's
        # version would re-download identical content on the next fetch;
        # recording the head version suppresses it without ever skipping
        # newer content — a commit after this download has a higher version
        # and its own notification in flight.
        self.versions[path] = max(
            version, self.server.head_version(self.user, path))
        self.stats.downloads += 1
        self.stats.bytes_downloaded += wire

    # -- inspection ---------------------------------------------------------

    def in_sync_with(self, folder_files: Dict[str, Content]) -> bool:
        """True when this mirror holds exactly the given folder state."""
        if set(self.files) != set(folder_files):
            return False
        return all(self.files[path] == content
                   for path, content in folder_files.items())

    @property
    def total_traffic(self) -> int:
        return self.meter.total_bytes


#: The paper's "other devices" are followers of the user's commits; the
#: fleet layer and newer tests use this name for the same class.
DeviceFollower = MirrorDevice


class DeviceFleet:
    """One primary editing session plus N mirror devices of the same user."""

    def __init__(
        self,
        profile: ServiceProfile,
        mirror_count: int = 1,
        machine: MachineProfile = M1,
        link_spec: Optional[LinkSpec] = None,
        user: str = "user1",
    ):
        self.primary = SyncSession(profile, machine=machine,
                                   link_spec=link_spec, user=user)
        self.feed = attach_commit_feed(self.primary.server)
        self.mirrors = [
            MirrorDevice(
                name=f"mirror{index}",
                sim=self.primary.sim,
                server=self.primary.server,
                profile=profile,
                user=user,
                feed=self.feed,
                machine=machine,
                link_spec=link_spec,
            )
            for index in range(mirror_count)
        ]

    def run_until_idle(self) -> None:
        self.primary.run_until_idle()

    @property
    def upload_traffic(self) -> int:
        return self.primary.total_traffic

    @property
    def download_traffic(self) -> int:
        return sum(mirror.total_traffic for mirror in self.mirrors)

    @property
    def total_traffic(self) -> int:
        """Aggregate sync traffic across the whole fleet — what the cloud
        provider pays for (the ISP-trace perspective of §1)."""
        return self.upload_traffic + self.download_traffic

    def converged(self) -> bool:
        """All mirrors hold exactly the primary folder's current state."""
        folder_state = {path: self.primary.folder.get(path)
                        for path in self.primary.folder.paths()}
        return all(mirror.in_sync_with(folder_state) for mirror in self.mirrors)

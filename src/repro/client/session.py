"""High-level facade: one user, one device, one service, one wire.

:class:`SyncSession` assembles the full measurement rig the paper uses per
experiment — simulator, link (+ emulator), cloud server, sync folder, client
engine, traffic meter — and exposes the file operations and the TUE readout.

Sessions can share a ``sim`` and a ``server`` to model several users or
devices against one cloud (cross-user dedup, Experiment 5).
"""

from __future__ import annotations

from typing import Optional, Union

from ..cloud import CloudServer
from ..content import Content, random_content, text_content
from ..fsim import SyncFolder
from ..obs.recorder import TraceRecorder, session_recorder
from ..simnet import (
    FaultInjector,
    FaultSchedule,
    Link,
    LinkSpec,
    NetworkEmulator,
    Simulator,
    TrafficMeter,
    mn_link,
)
from .engine import SyncClient
from .hardware import M1, MachineProfile
from .profiles import AccessMethod, ServiceProfile, service_profile
from .retry import RetryPolicy
from .strategies.base import SyncStrategy


class SyncSession:
    """Everything needed to run one client against a (possibly shared) cloud."""

    def __init__(
        self,
        profile: Union[ServiceProfile, str],
        access: AccessMethod = AccessMethod.PC,
        machine: MachineProfile = M1,
        link_spec: Optional[LinkSpec] = None,
        sim: Optional[Simulator] = None,
        server: Optional[CloudServer] = None,
        user: str = "user1",
        retry: Optional[RetryPolicy] = None,
        faults: Optional[Union[FaultInjector, FaultSchedule]] = None,
        recorder: Optional[TraceRecorder] = None,
        strategy: Optional[SyncStrategy] = None,
    ):
        if isinstance(profile, str):
            profile = service_profile(profile, access)
        self.profile = profile
        self.sim = sim or Simulator()
        self.link = Link(link_spec or mn_link())
        self.netem = NetworkEmulator(self.sim, self.link)
        self.server = server or CloudServer(
            dedup=profile.dedup,
            storage_chunk_size=profile.storage_chunk_size,
            name=profile.name,
            backend=profile.storage_backend,
        )
        if isinstance(faults, FaultSchedule):
            faults = FaultInjector(faults)
        self.faults = faults
        if faults is not None:
            self.server.attach_faults(faults)
        self.folder = SyncFolder(self.sim)
        self.meter = TrafficMeter()
        # Tracing is opt-in: explicit recorder, else the ambient hub
        # installed by ``obs.recording()``; None means not recording and
        # costs one ``is None`` check per wire event downstream.
        if recorder is None:
            recorder = session_recorder(f"{profile.name}/{user}")
        self.recorder = recorder
        if recorder is not None:
            recorder.bind_meter(self.meter)
            self.server.attach_recorder(recorder)
        self.client = SyncClient(
            sim=self.sim, folder=self.folder, server=self.server,
            profile=profile, machine=machine, link=self.link,
            meter=self.meter, user=user, retry=retry, faults=faults,
            recorder=recorder, strategy=strategy,
        )
        self._update_bytes = 0
        self.folder.subscribe(self._track_update)

    def _track_update(self, event) -> None:
        self._update_bytes += event.update_bytes

    # -- file operations (forwarded to the sync folder) ---------------------

    def create_file(self, path: str, content: Content):
        return self.folder.create(path, content)

    def create_random_file(self, path: str, size: int, seed: int = 0):
        """Create a "highly compressed" (incompressible) file."""
        return self.folder.create(path, random_content(size, seed=seed))

    def create_text_file(self, path: str, size: int, seed: int = 0):
        """Create an Experiment 4 style compressible text file."""
        return self.folder.create(path, text_content(size, seed=seed))

    def write_file(self, path: str, content: Content):
        return self.folder.write(path, content)

    def append(self, path: str, extra: Content):
        return self.folder.append(path, extra)

    def modify_random_byte(self, path: str, seed: int = 0):
        return self.folder.modify_random_byte(path, seed=seed)

    def delete_file(self, path: str):
        return self.folder.delete(path)

    def download(self, path: str) -> Content:
        return self.client.download(path)

    # -- time ---------------------------------------------------------------

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        """Drain the simulation: all pending syncs (and defer timers) fire.

        Returns the final virtual time, like
        :meth:`~repro.simnet.Simulator.run_until_idle`.
        """
        return self.sim.run_until_idle(max_time=max_time)

    def advance(self, seconds: float) -> float:
        """Run the simulation forward by a fixed amount of virtual time."""
        return self.sim.run_until(self.sim.now + seconds)

    # -- measurement -----------------------------------------------------------

    @property
    def data_update_bytes(self) -> int:
        """Accumulated *data update size* (the TUE denominator)."""
        return self._update_bytes

    @property
    def total_traffic(self) -> int:
        """Total sync traffic in bytes, both directions (TUE numerator)."""
        return self.meter.total_bytes

    @property
    def wasted_traffic(self) -> int:
        """Failure-induced bytes: retransmissions, aborted sends, re-sends."""
        return self.meter.wasted_bytes

    @property
    def useful_traffic(self) -> int:
        """Total traffic minus the failure-induced component."""
        return self.meter.useful_bytes

    def traffic_report(self, update_size: Optional[int] = None):
        """Full :class:`~repro.core.tue.TrafficReport` for this session."""
        from ..core.tue import TrafficReport  # local: core imports client

        denominator = self._update_bytes if update_size is None else update_size
        return TrafficReport.from_meter(self.meter, denominator)

    def tue(self, update_size: Optional[int] = None) -> float:
        """Traffic Usage Efficiency (Eq. 1)."""
        denominator = self._update_bytes if update_size is None else update_size
        if denominator <= 0:
            raise ValueError("data update size must be positive to compute TUE")
        return self.meter.total_bytes / denominator

    def reset_meter(self) -> None:
        """Zero the traffic meter (e.g. between UP and DN phases)."""
        self.meter.reset()
        self._update_bytes = 0
        if self.recorder is not None:
            # Close the accounting epoch: spans recorded so far are no
            # longer reflected in the meter totals.
            self.recorder.note_reset(self.sim.now)

    def audit(self) -> None:
        """Run the conservation audit over this session's trace.

        Raises :class:`~repro.obs.AuditViolation` on the first broken
        invariant; requires the session to have been created with a
        recorder (explicit or ambient via ``obs.recording()``).
        """
        from ..obs import ConservationAuditor  # local: obs is optional here

        if self.recorder is None:
            raise ValueError(
                "session has no recorder — construct it inside "
                "obs.recording() or pass recorder= explicitly")
        ConservationAuditor().audit(self.recorder)

"""The pluggable sync-strategy contract (see DESIGN.md).

A :class:`SyncStrategy` owns the *content transfer* step of a single-file
sync: everything between the engine's routing decision and the post-sync
basis bookkeeping.  The engine stays responsible for batching, renames,
deletions, notification, and the shadow/signature caches; the strategy
decides what crosses the wire and through which exchanges.

The contract has three legs:

* :meth:`SyncStrategy.transfer` performs the exchanges against the
  client's channel and server and returns wall-clock duration, exactly
  like the engine methods it replaces;
* :meth:`SyncStrategy.estimate` predicts the transfer's cost vector
  *without* touching the wire — byte-exact under quiescent conditions
  (warm connection, no faults), which is what lets the adaptive selector
  dominate every static choice (a test pins estimate == metered);
* every transfer reports a ``(wire_bytes, round_trips, cpu_units)`` cost
  vector through a ``delta-exchange`` span, whose ``payload`` ledger the
  ``strategy-conservation`` audit invariant balances against the named
  wire exchanges.

Strategies never import the engine: they duck-type on the client object
(`client.profile`, ``client._guarded_exchange``, ``client.server``, …)
so this package stays import-cycle-free, like the recorder protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Meta bytes of one auxiliary poll exchange (mirrors ``SyncClient._polls``).
POLL_META_UP = 250
POLL_META_DOWN = 250


@dataclass
class TransferTally:
    """Model-side ledger of one strategy transfer.

    ``payload`` accumulates the ``up_payload`` of every *successful*
    exchange the transfer issued (the meter's payload column for the same
    bytes); ``exchanges`` counts them (the transfer's round trips);
    ``cpu_units`` is the strategy's own computation charge, in bytes
    processed.  The engine emits these on the ``delta-exchange`` span even
    when the transfer dies mid-way, so partially-metered transfers stay
    balanced under the strategy-conservation audit.
    """

    payload: int = 0
    exchanges: int = 0
    cpu_units: int = 0

    def note(self, up_payload: int) -> None:
        self.payload += int(up_payload)
        self.exchanges += 1

    def charge_cpu(self, units: int) -> None:
        self.cpu_units += max(int(units), 0)


@dataclass(frozen=True)
class StrategyEstimate:
    """Predicted cost vector of one transfer, before any byte moves.

    ``up_bytes``/``down_bytes`` are total wire bytes (payload plus every
    overhead the channel would meter, handshakes excluded — those are
    connection-lifecycle costs identical across strategies);
    ``round_trips`` counts request/response exchanges; ``cpu_units`` is
    the bytes the strategy would have to process locally.
    """

    up_bytes: int
    down_bytes: int
    round_trips: int
    cpu_units: int

    @property
    def wire_bytes(self) -> int:
        return self.up_bytes + self.down_bytes


class SyncStrategy:
    """Base class: one way to move a file's new content to the cloud."""

    #: Stable identifier; also the ``delta-exchange`` span name.
    name = "strategy"
    #: Exchange kinds this strategy routes payload through.  The
    #: strategy-conservation audit balances the span ledger against wire
    #: spans with exactly these names, so a strategy that invents a new
    #: exchange kind must list it here.
    wire_names: Tuple[str, ...] = ()

    def applicable(self, client: Any, change: Any, content: Any) -> bool:
        """Can this strategy carry this change at all?"""
        raise NotImplementedError

    def transfer(self, client: Any, change: Any, content: Any,
                 lightweight: bool = False, in_batch: bool = False) -> float:
        """Move the content; returns wall-clock duration (seconds)."""
        raise NotImplementedError

    def estimate(self, client: Any, change: Any,
                 content: Any) -> Optional[StrategyEstimate]:
        """Exact cost prediction, or ``None`` when one cannot be promised
        (e.g. dedup negotiation or retry chunking makes bytes depend on
        server state the planner does not model)."""
        return None

    def resolve(self, client: Any, change: Any, content: Any) -> "SyncStrategy":
        """The concrete strategy that will carry this change.

        Static strategies answer themselves when applicable and fall back
        to full-file upload otherwise; the adaptive selector overrides
        this with its scoring pass.
        """
        if self.applicable(client, change, content):
            return self
        from .fullfile import FULL_FILE
        return FULL_FILE

    def basis_block_size(self, profile: Any) -> Optional[int]:
        """Fixed block size to pre-sign the new basis with after a
        successful sync, or ``None`` to drop any cached signature."""
        return None

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def _plans_for(client: Any, name: str) -> "_PlanCache":
        """This strategy's plan cache on the client (client-lifetime, so
        shared strategy singletons never pin content across sessions)."""
        caches = client._strategy_plans
        cache = caches.get(name)
        if cache is None:
            cache = _PlanCache()
            caches[name] = cache
        return cache

    @staticmethod
    def _poll_count(client: Any) -> int:
        return max(client.profile.overhead.requests_per_sync - 1, 0)

    @staticmethod
    def _estimate_polls(client: Any) -> Tuple[int, int, int]:
        """(up, down, count) for the auxiliary polls a transfer issues."""
        count = SyncStrategy._poll_count(client)
        if count == 0:
            return 0, 0, 0
        up, down = client.channel.estimate_exchange(
            up_meta=POLL_META_UP, down_meta=POLL_META_DOWN)
        return up * count, down * count, count

    @staticmethod
    def _estimate_payload_exchange(client: Any,
                                   payload: int) -> Tuple[int, int]:
        """Wire cost of the standard single metadata+payload exchange."""
        overhead = client.profile.overhead
        return client.channel.estimate_exchange(
            up_payload=payload,
            up_meta=overhead.meta_up + int(overhead.per_byte_factor * payload),
            down_meta=overhead.meta_down)


class _PlanCache:
    """One-slot per-path memo tying an estimate to its transfer.

    The adaptive selector estimates every candidate before picking one;
    without this, the winner would redo its (signature/chunking) work in
    :meth:`SyncStrategy.transfer`.  Entries are keyed by the *identity* of
    the basis and target contents, so a stale plan can never be replayed
    against different bytes.
    """

    def __init__(self) -> None:
        self._slots: Dict[str, Tuple[Any, Any, Any]] = {}

    def get(self, path: str, old: Any, new: Any) -> Optional[Any]:
        slot = self._slots.get(path)
        if slot is not None and slot[0] is old and slot[1] is new:
            return slot[2]
        return None

    def put(self, path: str, old: Any, new: Any, plan: Any) -> None:
        self._slots[path] = (old, new, plan)

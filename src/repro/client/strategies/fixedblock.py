"""Fixed-block rsync delta — the extracted IDS transfer path."""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ...content import Content
from ...delta import DEFAULT_BLOCK_SIZE, Delta, compute_delta
from .base import StrategyEstimate, SyncStrategy


class FixedBlockDeltaStrategy(SyncStrategy):
    """Ship an rsync delta against the synced shadow copy.

    This is the engine's pre-refactor ``use_delta`` branch, verbatim:
    signature from the (cached) basis, rolling-checksum delta, literals
    compressed with the profile's upload codec, one ``delta-sync``
    exchange, server-side application through the IDS mid-layer.
    """

    name = "fixed-delta"
    wire_names = ("delta-sync",)

    def __init__(self, block_size: Optional[int] = None):
        #: ``None`` defers to the profile's delta block (the default
        #: route), then to the library default for profiles without one.
        self.block_size = block_size

    def effective_block(self, profile: Any) -> int:
        return self.block_size or profile.delta_block or DEFAULT_BLOCK_SIZE

    def applicable(self, client: Any, change: Any, content: Any) -> bool:
        path = change.path
        return (not change.created
                and path in client._shadow
                and client._shadow[path].size > 0)

    def basis_block_size(self, profile: Any) -> Optional[int]:
        return self.effective_block(profile)

    def _plan(self, client: Any, path: str, old: Any,
              content: Any) -> Tuple[Delta, int]:
        plans = self._plans_for(client, self.name)
        plan = plans.get(path, old, content)
        if plan is None:
            signature = client._basis_signature(
                path, old, self.effective_block(client.profile))
            delta = compute_delta(signature, content.data)
            literals = b"".join(
                op.data for op in delta.ops if hasattr(op, "data"))
            wire_literals = client.profile.upload_compression.wire_size(
                Content(literals))
            payload = wire_literals + (delta.wire_size - len(literals))
            plan = (delta, payload)
            plans.put(path, old, content, plan)
        return plan

    def transfer(self, client: Any, change: Any, content: Any,
                 lightweight: bool = False, in_batch: bool = False) -> float:
        path = change.path
        old = client._shadow[path]
        delta, payload = self._plan(client, path, old, content)
        client.charge_cpu(old.size + content.size)
        overhead = client.profile.overhead
        duration = client._polls(overhead.requests_per_sync - 1)
        duration += client._guarded_exchange(
            up_payload=payload,
            up_meta=overhead.meta_up + int(overhead.per_byte_factor * payload),
            down_meta=overhead.meta_down,
            kind="delta-sync",
        )
        client.server.apply_delta(client.user, path, delta, content.md5)
        client.stats.delta_syncs += 1
        return duration

    def estimate(self, client: Any, change: Any,
                 content: Any) -> Optional[StrategyEstimate]:
        old = client._shadow[change.path]
        _, payload = self._plan(client, change.path, old, content)
        up, down, trips = self._estimate_polls(client)
        main_up, main_down = self._estimate_payload_exchange(client, payload)
        return StrategyEstimate(
            up_bytes=up + main_up, down_bytes=down + main_down,
            round_trips=trips + 1, cpu_units=old.size + content.size)


#: Shared instance backing the engine's default IDS route.
FIXED_DELTA = FixedBlockDeltaStrategy()

"""Content-defined-chunk delta strategy."""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ...chunking.cdc import DEFAULT_AVG, DEFAULT_MAX, DEFAULT_MIN
from ...content import Content
from ...delta import CdcDelta, compute_cdc_delta
from .base import StrategyEstimate, SyncStrategy


class CdcDeltaStrategy(SyncStrategy):
    """Ship a whole-chunk delta cut by the gear-hash CDC chunker.

    Same wire shape as the fixed-block route — auxiliary polls, then one
    payload exchange — but the stream matches content-defined chunks, so
    insertions shift boundaries instead of defeating them.  Copy
    references are costlier per match (12 bytes vs rsync's 5), which is
    exactly the tradeoff Experiment 11 sweeps.
    """

    name = "cdc-delta"
    wire_names = ("cdc-delta",)

    def __init__(self, min_size: int = DEFAULT_MIN,
                 avg_size: int = DEFAULT_AVG,
                 max_size: int = DEFAULT_MAX):
        self.min_size = min_size
        self.avg_size = avg_size
        self.max_size = max_size

    def applicable(self, client: Any, change: Any, content: Any) -> bool:
        path = change.path
        return (not change.created
                and path in client._shadow
                and client._shadow[path].size > 0)

    def _plan(self, client: Any, path: str, old: Any,
              content: Any) -> Tuple[CdcDelta, int]:
        plans = self._plans_for(client, self.name)
        plan = plans.get(path, old, content)
        if plan is None:
            cdelta = compute_cdc_delta(
                old.data, content.data,
                self.min_size, self.avg_size, self.max_size)
            literals = b"".join(
                op.data for op in cdelta.ops if hasattr(op, "data"))
            wire_literals = client.profile.upload_compression.wire_size(
                Content(literals))
            payload = wire_literals + (cdelta.wire_size - len(literals))
            plan = (cdelta, payload)
            plans.put(path, old, content, plan)
        return plan

    def transfer(self, client: Any, change: Any, content: Any,
                 lightweight: bool = False, in_batch: bool = False) -> float:
        path = change.path
        old = client._shadow[path]
        cdelta, payload = self._plan(client, path, old, content)
        client.charge_cpu(old.size + content.size)
        overhead = client.profile.overhead
        duration = client._polls(overhead.requests_per_sync - 1)
        duration += client._guarded_exchange(
            up_payload=payload,
            up_meta=overhead.meta_up + int(overhead.per_byte_factor * payload),
            down_meta=overhead.meta_down,
            kind="cdc-delta",
        )
        client.server.apply_cdc_delta(client.user, path, cdelta, content.md5)
        client.stats.cdc_delta_syncs += 1
        return duration

    def estimate(self, client: Any, change: Any,
                 content: Any) -> Optional[StrategyEstimate]:
        old = client._shadow[change.path]
        _, payload = self._plan(client, change.path, old, content)
        up, down, trips = self._estimate_polls(client)
        main_up, main_down = self._estimate_payload_exchange(client, payload)
        return StrategyEstimate(
            up_bytes=up + main_up, down_bytes=down + main_down,
            round_trips=trips + 1, cpu_units=old.size + content.size)

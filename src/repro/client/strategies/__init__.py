"""Pluggable sync strategies: how a file's new content reaches the cloud.

Four concrete strategies plus an adaptive selector (see DESIGN.md,
"Pluggable sync strategies & the selection contract"):

* :class:`FullFileStrategy` — ship the whole file (the extracted
  pre-refactor default path);
* :class:`FixedBlockDeltaStrategy` — rsync fixed-block delta (the
  extracted IDS path);
* :class:`CdcDeltaStrategy` — content-defined-chunk delta;
* :class:`SetReconcileStrategy` — two-round chunk-set reconciliation
  against the user's whole cloud;
* :class:`AdaptiveSelector` — per-file, per-network-condition choice by
  exact cost estimates, extending ASD (Eq. 2) from *when* to *how*.
"""

from .adaptive import AdaptiveSelector, PathHistory
from .base import StrategyEstimate, SyncStrategy, TransferTally
from .cdc import CdcDeltaStrategy
from .fixedblock import FIXED_DELTA, FixedBlockDeltaStrategy
from .fullfile import FULL_FILE, FullFileStrategy
from .reconcile import SetReconcileStrategy

#: Registry for CLI/experiment lookups by stable name.
STRATEGY_NAMES = (
    "full-file", "fixed-delta", "cdc-delta", "set-reconcile", "adaptive")


def make_strategy(name: str) -> SyncStrategy:
    """A fresh strategy instance by stable name (``STRATEGY_NAMES``)."""
    factories = {
        "full-file": FullFileStrategy,
        "fixed-delta": FixedBlockDeltaStrategy,
        "cdc-delta": CdcDeltaStrategy,
        "set-reconcile": SetReconcileStrategy,
        "adaptive": AdaptiveSelector,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(f"unknown sync strategy {name!r}; "
                         f"expected one of {', '.join(STRATEGY_NAMES)}")


__all__ = [
    "AdaptiveSelector",
    "CdcDeltaStrategy",
    "FIXED_DELTA",
    "FULL_FILE",
    "FixedBlockDeltaStrategy",
    "FullFileStrategy",
    "PathHistory",
    "STRATEGY_NAMES",
    "SetReconcileStrategy",
    "StrategyEstimate",
    "SyncStrategy",
    "TransferTally",
    "make_strategy",
]

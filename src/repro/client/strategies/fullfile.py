"""Full-file upload — the extracted pre-strategy default transfer path."""

from __future__ import annotations

from typing import Any, Optional

from ...chunking import chunk_data
from ...content import Content
from .base import StrategyEstimate, SyncStrategy


class FullFileStrategy(SyncStrategy):
    """Ship the whole (compressed, possibly chunked) file.

    Delegates to the engine's ``_upload_full`` so the dedup negotiation,
    chunked-transfer, and resilient-retry behaviour stay byte-identical
    with the pre-refactor client — the differential battery pins this.
    """

    name = "full-file"
    wire_names = ("upload",)

    def applicable(self, client: Any, change: Any, content: Any) -> bool:
        return True

    def transfer(self, client: Any, change: Any, content: Any,
                 lightweight: bool = False, in_batch: bool = False) -> float:
        client.charge_cpu(content.size)
        duration = client._upload_full(
            change.path, content, lightweight=lightweight, in_batch=in_batch)
        client.stats.full_file_syncs += 1
        return duration

    def estimate(self, client: Any, change: Any,
                 content: Any) -> Optional[StrategyEstimate]:
        profile = client.profile
        if profile.dedup.enabled or client.retry is not None:
            # Negotiation outcomes and per-unit retry framing depend on
            # server/fault state the planner does not model; refuse to
            # promise exactness rather than guess.
            return None
        unit_size = profile.storage_chunk_size or max(content.size, 1)
        payload = sum(
            profile.upload_compression.wire_size(Content(unit.data))
            for unit in chunk_data(content.data, unit_size))
        up, down, trips = self._estimate_polls(client)
        main_up, main_down = self._estimate_payload_exchange(client, payload)
        return StrategyEstimate(
            up_bytes=up + main_up, down_bytes=down + main_down,
            round_trips=trips + 1, cpu_units=content.size)


#: Shared stateless instance — the engine's default full-file route and
#: every strategy's fallback when it is not applicable.
FULL_FILE = FullFileStrategy()

"""Set reconciliation: trade an extra round trip for near-minimal bytes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ...chunking import cdc_spans, fingerprint
from ...content import Content
from .base import StrategyEstimate, SyncStrategy

#: Round-1 sketch framing: a compact digest list up, a hit bitmap down.
SKETCH_BASE_BYTES = 16
SKETCH_PER_DIGEST_BYTES = 8
BITMAP_BASE_BYTES = 16


@dataclass
class _ReconPlan:
    """Client-side picture of one reconciliation before any byte moves."""

    digests: List[str]          #: ordered CDC chunk manifest of the new file
    pieces: Dict[str, bytes]    #: digest -> chunk bytes (first occurrence)
    missing: List[str]          #: chunks the mirrored server index lacks
    payload: int                #: predicted round-2 upload payload


class SetReconcileStrategy(SyncStrategy):
    """Two-round chunk-set reconciliation against the user's whole cloud.

    Round 1 ships a digest sketch of the new file's CDC chunks
    (``recon-sketch``); the server answers with the subset absent from
    *every* live file the user stores.  Round 2 uploads only those chunks
    (``recon-upload``).  Unlike the delta strategies this needs no synced
    shadow of the same path, so it works on created files — it wins big
    when a "new" file is mostly a clone of existing content, and loses a
    round trip plus the sketch when content is genuinely fresh.

    Chunking parameters are pinned to the library defaults because the
    server's reconciliation index uses them; the planner mirrors that
    index from the client's own synced shadows (exact for a single-writer
    session, which a test pins).
    """

    name = "set-reconcile"
    wire_names = ("recon-sketch", "recon-upload")

    def applicable(self, client: Any, change: Any, content: Any) -> bool:
        return content.size > 0

    def _plan(self, client: Any, path: str, content: Any) -> _ReconPlan:
        old = client._shadow.get(path)
        plans = self._plans_for(client, self.name)
        plan = plans.get(path, old, content)
        if plan is None:
            digests: List[str] = []
            pieces: Dict[str, bytes] = {}
            for offset, length in cdc_spans(content.data):
                piece = content.data[offset:offset + length]
                digest = fingerprint(piece)
                digests.append(digest)
                pieces.setdefault(digest, piece)
            mirror = set()
            for basis in client._shadow.values():
                if basis.size == 0:
                    continue
                for offset, length in cdc_spans(basis.data):
                    mirror.add(fingerprint(basis.data[offset:offset + length]))
            missing: List[str] = []
            for digest in digests:
                if digest not in mirror and digest not in missing:
                    missing.append(digest)
            blob = b"".join(pieces[digest] for digest in missing)
            payload = client.profile.upload_compression.wire_size(Content(blob))
            plan = _ReconPlan(digests, pieces, missing, payload)
            plans.put(path, old, content, plan)
        return plan

    def _cpu_units(self, client: Any, content: Any) -> int:
        # Chunking the new file plus mirroring the server's index over
        # every synced shadow — the planner's real work.
        return content.size + sum(c.size for c in client._shadow.values())

    def transfer(self, client: Any, change: Any, content: Any,
                 lightweight: bool = False, in_batch: bool = False) -> float:
        path = change.path
        plan = self._plan(client, path, content)
        client.charge_cpu(self._cpu_units(client, content))
        overhead = client.profile.overhead
        count = len(plan.digests)
        duration = client._polls(overhead.requests_per_sync - 1)
        duration += client._guarded_exchange(
            up_meta=SKETCH_BASE_BYTES + SKETCH_PER_DIGEST_BYTES * count,
            down_meta=BITMAP_BASE_BYTES + (count + 7) // 8,
            kind="recon-sketch",
        )
        # The server's answer is authoritative; the plan's mirror is only
        # a prediction (they agree in single-writer sessions).
        missing = client.server.reconcile(client.user, path, plan.digests)
        blob = b"".join(plan.pieces[digest] for digest in missing)
        payload = client.profile.upload_compression.wire_size(Content(blob))
        duration += client._guarded_exchange(
            up_payload=payload,
            up_meta=overhead.meta_up + int(overhead.per_byte_factor * payload),
            down_meta=overhead.meta_down,
            kind="recon-upload",
        )
        client.server.apply_reconciled(
            client.user, path,
            {digest: plan.pieces[digest] for digest in missing}, content.md5)
        client.stats.recon_syncs += 1
        return duration

    def estimate(self, client: Any, change: Any,
                 content: Any) -> Optional[StrategyEstimate]:
        plan = self._plan(client, change.path, content)
        count = len(plan.digests)
        up, down, trips = self._estimate_polls(client)
        sketch_up, sketch_down = client.channel.estimate_exchange(
            up_meta=SKETCH_BASE_BYTES + SKETCH_PER_DIGEST_BYTES * count,
            down_meta=BITMAP_BASE_BYTES + (count + 7) // 8)
        main_up, main_down = self._estimate_payload_exchange(
            client, plan.payload)
        return StrategyEstimate(
            up_bytes=up + sketch_up + main_up,
            down_bytes=down + sketch_down + main_down,
            round_trips=trips + 2,
            cpu_units=self._cpu_units(client, content))

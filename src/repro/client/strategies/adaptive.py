"""The adaptive selector: per-file, per-network-condition strategy choice.

This extends the paper's adaptive sync defer (ASD, Eq. 2) from *when* to
sync into *how*: before each transfer the selector asks every candidate
strategy for an exact cost estimate under the link's observed conditions
(RTT, bandwidth, base loss — all read from the live link spec, exactly as
ASD reads the observed sync bandwidth) and picks the cheapest.  Because
the estimates are byte-exact under quiescent conditions, the greedy
per-file choice is never worse than any single static strategy on the
same workload — the dominance property Experiment 11 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .base import StrategyEstimate, SyncStrategy
from .cdc import CdcDeltaStrategy
from .fixedblock import FixedBlockDeltaStrategy
from .fullfile import FULL_FILE, FullFileStrategy
from .reconcile import SetReconcileStrategy


@dataclass
class PathHistory:
    """Per-path edit history the selector accumulates (the ASD lineage)."""

    edits: int = 0
    chosen: Dict[str, int] = field(default_factory=dict)
    last: Optional[str] = None


class AdaptiveSelector(SyncStrategy):
    """Pick the cheapest applicable strategy for each individual file.

    Ordering is lexicographic on ``(wire_bytes, round_trips × RTT,
    history, name)``: bytes are the paper's currency (TUE), the RTT term
    breaks byte-ties in favour of fewer round trips on slow links, and a
    path's previously-chosen strategy wins exact ties so repeated edits
    keep a stable plan.  Candidates that cannot promise an exact estimate
    (see :meth:`SyncStrategy.estimate`) are skipped; when none can, the
    full-file route carries the change.
    """

    name = "adaptive"

    def __init__(self, candidates: Optional[Sequence[SyncStrategy]] = None):
        self.candidates: List[SyncStrategy] = (
            list(candidates) if candidates is not None else [
                FullFileStrategy(),
                FixedBlockDeltaStrategy(),
                CdcDeltaStrategy(),
                SetReconcileStrategy(),
            ])
        self.history: Dict[str, PathHistory] = {}

    def applicable(self, client: Any, change: Any, content: Any) -> bool:
        return True

    def resolve(self, client: Any, change: Any, content: Any) -> SyncStrategy:
        path = change.path
        spec = client.link.spec
        history = self.history.setdefault(path, PathHistory())
        history.edits += 1

        considered: List[List[Any]] = []
        best = None
        best_est: Optional[StrategyEstimate] = None
        for candidate in self.candidates:
            if not candidate.applicable(client, change, content):
                continue
            estimate = candidate.estimate(client, change, content)
            if estimate is None:
                continue
            # Probing is real work (signatures, chunking, index mirrors):
            # charge it to the transfer's cpu ledger.
            client.charge_cpu(estimate.cpu_units)
            considered.append(
                [candidate.name, estimate.wire_bytes, estimate.round_trips])
            key = (estimate.wire_bytes,
                   estimate.round_trips * spec.rtt,
                   0 if candidate.name == history.last else 1,
                   candidate.name)
            if best is None or key < best[0]:
                best = (key, candidate)
                best_est = estimate
        chosen = best[1] if best is not None else FULL_FILE

        history.chosen[chosen.name] = history.chosen.get(chosen.name, 0) + 1
        history.last = chosen.name
        if client.recorder is not None:
            now = client.sim.now
            client.recorder.record_span(
                "strategy-select", chosen.name, "client", now, now,
                path=path, chosen=chosen.name,
                rtt=spec.rtt, up_bw=spec.up_bw, down_bw=spec.down_bw,
                loss_rate=spec.loss_rate, edits=history.edits,
                considered=considered,
                est_wire=best_est.wire_bytes if best_est else None,
                est_round_trips=best_est.round_trips if best_est else None)
        return chosen

    def transfer(self, client: Any, change: Any, content: Any,
                 lightweight: bool = False, in_batch: bool = False) -> float:
        # Only reached when the selector is used as a concrete strategy
        # (the engine normally calls resolve() and runs the winner).
        chosen = self.resolve(client, change, content)
        return chosen.transfer(client, change, content,
                               lightweight=lightweight, in_batch=in_batch)

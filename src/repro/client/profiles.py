"""Service profiles: the six services × three access methods as design choices.

The paper's central abstraction (§2) is that a service's network behaviour is
determined by a small vector of *design choices*: data sync granularity,
data compression level, data deduplication granularity, sync deferment, and
batched-data-sync support — plus a protocol overhead envelope.  This module
encodes each measured service/access-method combination as such a vector,
calibrated against the paper's Tables 6–9 and Figures 4 and 6:

* sync granularity (Fig. 4): Dropbox and SugarSync PC clients use rsync-style
  incremental sync (~10 KB / ~32 KB blocks); everything else — and every
  web/mobile client — is full-file;
* compression (Table 8): only Dropbox and Ubuntu One compress; moderate on PC
  upload, low on mobile upload, high on download; never over the web upload;
* dedup (Table 9): Dropbox 4 MB block same-user; Ubuntu One full-file
  cross-user; nobody else; never for web access;
* sync deferment (Fig. 6): Google Drive ≈ 4.2 s, OneDrive ≈ 10.5 s,
  SugarSync ≈ 6 s, fixed, PC only;
* BDS (Table 7): Dropbox and Ubuntu One PC fully batch; their web (and
  Dropbox mobile) paths batch partially; the rest not at all;
* fixed and per-byte overheads (Table 6) per service and access method.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple

from ..cloud import DedupConfig
from ..compress import (
    CompressionPolicy,
    HIGH_COMPRESSION,
    LOW_COMPRESSION,
    MODERATE_COMPRESSION,
    NO_COMPRESSION,
)
from ..simnet import ProtocolCosts
from ..units import KB, MB
from .defer import DeferPolicy, FixedDefer, NoDefer, ScanIntervalDefer


class AccessMethod(enum.Enum):
    """The paper's three service access methods."""

    PC = "pc"
    WEB = "web"
    MOBILE = "mobile"


class BdsMode(enum.Enum):
    """Batched-data-sync support levels observed in Experiment 1'."""

    NONE = "none"        # every file pays the full per-sync overhead
    PARTIAL = "partial"  # shared connection, reduced per-file overhead
    FULL = "full"        # one transaction for the whole batch


@dataclass(frozen=True)
class BdsSupport:
    mode: BdsMode = BdsMode.NONE
    #: Per-file overhead bytes inside a batch (manifest entry or mini-request).
    per_file_bytes: int = 150


@dataclass(frozen=True)
class BundleSupport:
    """Small-file bundling: coalesce deferred commits into one transaction.

    Where BDS shares a connection across per-file commits, bundling goes
    further and ships one packed payload with a per-file manifest — one
    handshake, one commit exchange, per-file ledger entries preserved for
    the ``bundle-conservation`` audit.  Off for every measured service
    (none of the six bundles); the packed-shard what-if profiles enable it.
    """

    enabled: bool = False
    #: Files larger than this sync individually — bundling targets the
    #: 77%-small-file band the paper measures, not multimedia blobs.
    max_file_bytes: int = 128 * KB
    #: Manifest entry per bundled file (path, digest, offset, length).
    per_file_bytes: int = 96


@dataclass(frozen=True)
class OverheadProfile:
    """Fixed and proportional protocol overhead, fitted to Table 6."""

    meta_up: int            # metadata bytes on the commit request
    meta_down: int          # metadata bytes on the commit response
    notify_down: int = 300  # post-commit push notification
    requests_per_sync: int = 1  # HTTP exchanges per sync transaction
    per_byte_factor: float = 0.0  # extra overhead per payload byte
    connection_per_sync: bool = False  # fresh TLS connection per file sync
    #: When many files sync in one transaction (Experiment 1'): does the
    #: client keep one connection across them...
    batch_connection_reuse: bool = False
    #: ...and what fraction of the per-file metadata survives amortisation?
    batch_meta_fraction: float = 1.0


@dataclass(frozen=True)
class ServiceProfile:
    """Complete design-choice vector of one service × access method."""

    service: str
    access: AccessMethod
    #: None ⇒ full-file sync; an int ⇒ rsync IDS with this block size.
    delta_block: Optional[int]
    upload_compression: CompressionPolicy
    download_compression: CompressionPolicy
    dedup: DedupConfig
    #: None ⇒ whole-file REST objects; int ⇒ chunked storage (Dropbox: 4 MB).
    storage_chunk_size: Optional[int]
    overhead: OverheadProfile
    bds: BdsSupport = BdsSupport()
    protocol: ProtocolCosts = field(default_factory=ProtocolCosts)
    #: Factory so every client gets fresh defer state.
    defer_factory: Callable[[], DeferPolicy] = NoDefer
    #: Small-file bundling (off for every measured service).
    bundle: BundleSupport = BundleSupport()
    #: Server storage backend: "chunk" (one REST object per chunk) or
    #: "packshard" (packed shard containers, see repro.cloud.packshard).
    storage_backend: str = "chunk"

    @property
    def name(self) -> str:
        return f"{self.service}/{self.access.value}"

    @property
    def uses_ids(self) -> bool:
        return self.delta_block is not None

    def make_defer(self) -> DeferPolicy:
        return self.defer_factory()

    def with_defer(self, factory: Callable[[], DeferPolicy]) -> "ServiceProfile":
        """Swap the defer policy (used by the ASD what-if analyses, §6.1)."""
        return replace(self, defer_factory=factory)


#: Paper-measured fixed sync deferments (Fig. 6).
GOOGLE_DRIVE_DEFER = 4.2
ONEDRIVE_DEFER = 10.5
SUGARSYNC_DEFER = 6.0

#: Dropbox's client debounces rapid local changes for under a second before
#: committing (observable as single-transaction batch creations, Table 7).
DROPBOX_DEBOUNCE = 0.8

#: Folder-scan cadences for the clients that rescan on a timer (fitted to
#: the Figure 6 (c)/(e) TUE magnitudes at X = 1).
BOX_SCAN_INTERVAL = 7.0
UBUNTU_ONE_SCAN_INTERVAL = 3.5

#: Estimated IDS granularities (§4.3: Dropbox ≈ 10 KB; SugarSync coarser).
DROPBOX_DELTA_BLOCK = 10 * KB
SUGARSYNC_DELTA_BLOCK = 128 * KB

#: Dropbox's observed dedup/storage block size (Table 9).
DROPBOX_CHUNK = 4 * MB

#: Ubuntu One's custom storage protocol rides a plain persistent TCP stream.
_U1_PC_PROTOCOL = ProtocolCosts(use_tls=False, handshake_rtts=1.0,
                                tls_handshake_up=0, tls_handshake_down=0,
                                request_header=260, response_header=180,
                                idle_timeout=300.0)

_GD = "GoogleDrive"
_OD = "OneDrive"
_DB = "Dropbox"
_BOX = "Box"
_U1 = "UbuntuOne"
_SS = "SugarSync"

SERVICES: Tuple[str, ...] = (_GD, _OD, _DB, _BOX, _U1, _SS)


def _profile(**kwargs) -> ServiceProfile:
    return ServiceProfile(**kwargs)


_PROFILES = {}


def _register(profile: ServiceProfile) -> None:
    _PROFILES[(profile.service, profile.access)] = profile


# --- PC clients (Table 6 "PC client" column; Figs. 4a, 6) -------------------

_register(_profile(
    service=_GD, access=AccessMethod.PC, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=1800, meta_down=700, notify_down=300,
                             requests_per_sync=1, per_byte_factor=0.06,
                             connection_per_sync=True),
    defer_factory=lambda: FixedDefer(GOOGLE_DRIVE_DEFER),
))
_register(_profile(
    service=_OD, access=AccessMethod.PC, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=8000, meta_down=3500, notify_down=400,
                             requests_per_sync=2, per_byte_factor=0.08,
                             connection_per_sync=True,
                             batch_connection_reuse=True),
    defer_factory=lambda: FixedDefer(ONEDRIVE_DEFER),
))
_register(_profile(
    service=_DB, access=AccessMethod.PC, delta_block=DROPBOX_DELTA_BLOCK,
    upload_compression=MODERATE_COMPRESSION, download_compression=HIGH_COMPRESSION,
    dedup=DedupConfig.block(DROPBOX_CHUNK), storage_chunk_size=DROPBOX_CHUNK,
    overhead=OverheadProfile(meta_up=18000, meta_down=12000, notify_down=500,
                             requests_per_sync=3, per_byte_factor=0.19),
    bds=BdsSupport(BdsMode.FULL, per_file_bytes=150),
    defer_factory=lambda: FixedDefer(DROPBOX_DEBOUNCE),
))
_register(_profile(
    service=_BOX, access=AccessMethod.PC, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=30000, meta_down=16000, notify_down=400,
                             requests_per_sync=4, per_byte_factor=0.0,
                             connection_per_sync=True,
                             batch_connection_reuse=True,
                             batch_meta_fraction=0.22),
    defer_factory=lambda: ScanIntervalDefer(BOX_SCAN_INTERVAL),
))
_register(_profile(
    service=_U1, access=AccessMethod.PC, delta_block=None,
    upload_compression=MODERATE_COMPRESSION, download_compression=HIGH_COMPRESSION,
    dedup=DedupConfig.full_file(cross_user=True), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=500, meta_down=300, notify_down=150,
                             requests_per_sync=1, per_byte_factor=0.06),
    bds=BdsSupport(BdsMode.FULL, per_file_bytes=120),
    protocol=_U1_PC_PROTOCOL,
    defer_factory=lambda: ScanIntervalDefer(UBUNTU_ONE_SCAN_INTERVAL),
))
_register(_profile(
    service=_SS, access=AccessMethod.PC, delta_block=SUGARSYNC_DELTA_BLOCK,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=1800, meta_down=700, notify_down=300,
                             requests_per_sync=1, per_byte_factor=0.08,
                             connection_per_sync=True),
    defer_factory=lambda: FixedDefer(SUGARSYNC_DEFER),
))

# --- Web browsers (Table 6 "Web-based"; full-file, no dedup, no defer,
#     no upload compression — JavaScript cannot reach rsync/gzip, §4.3) -----

_register(_profile(
    service=_GD, access=AccessMethod.WEB, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=200, meta_down=100, notify_down=0,
                             requests_per_sync=1, per_byte_factor=0.0,
                             connection_per_sync=True),
))
_register(_profile(
    service=_OD, access=AccessMethod.WEB, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=15000, meta_down=6000, notify_down=0,
                             requests_per_sync=2, per_byte_factor=0.11,
                             connection_per_sync=True,
                             batch_connection_reuse=True,
                             batch_meta_fraction=0.85),
))
_register(_profile(
    service=_DB, access=AccessMethod.WEB, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=HIGH_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=DROPBOX_CHUNK,
    overhead=OverheadProfile(meta_up=16000, meta_down=8000, notify_down=0,
                             requests_per_sync=2, per_byte_factor=0.0,
                             connection_per_sync=True),
    bds=BdsSupport(BdsMode.PARTIAL, per_file_bytes=4800),
))
_register(_profile(
    service=_BOX, access=AccessMethod.WEB, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=30000, meta_down=16000, notify_down=0,
                             requests_per_sync=4, per_byte_factor=0.0,
                             connection_per_sync=True,
                             batch_connection_reuse=True,
                             batch_meta_fraction=0.55),
))
_register(_profile(
    service=_U1, access=AccessMethod.WEB, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=HIGH_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=20000, meta_down=10000, notify_down=0,
                             requests_per_sync=2, per_byte_factor=0.07,
                             connection_per_sync=True),
    bds=BdsSupport(BdsMode.PARTIAL, per_file_bytes=3900),
))
_register(_profile(
    service=_SS, access=AccessMethod.WEB, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=17000, meta_down=7000, notify_down=0,
                             requests_per_sync=2, per_byte_factor=0.01,
                             connection_per_sync=True),
))

# --- Mobile apps (Table 6 "Mobile app"; full-file, dedup as PC (Table 9),
#     low-level upload compression where supported) -------------------------

_register(_profile(
    service=_GD, access=AccessMethod.MOBILE, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=18000, meta_down=7000, notify_down=300,
                             requests_per_sync=2, per_byte_factor=0.04,
                             connection_per_sync=True,
                             batch_connection_reuse=True),
))
_register(_profile(
    service=_OD, access=AccessMethod.MOBILE, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=15000, meta_down=7000, notify_down=300,
                             requests_per_sync=2, per_byte_factor=0.03,
                             connection_per_sync=True,
                             batch_connection_reuse=True,
                             batch_meta_fraction=0.60),
))
_register(_profile(
    service=_DB, access=AccessMethod.MOBILE, delta_block=None,
    upload_compression=LOW_COMPRESSION, download_compression=HIGH_COMPRESSION,
    dedup=DedupConfig.block(DROPBOX_CHUNK), storage_chunk_size=DROPBOX_CHUNK,
    overhead=OverheadProfile(meta_up=7000, meta_down=3500, notify_down=400,
                             requests_per_sync=2, per_byte_factor=0.04),
    bds=BdsSupport(BdsMode.PARTIAL, per_file_bytes=2400),
))
_register(_profile(
    service=_BOX, access=AccessMethod.MOBILE, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=6000, meta_down=3000, notify_down=300,
                             requests_per_sync=2, per_byte_factor=0.04,
                             connection_per_sync=True),
))
_register(_profile(
    service=_U1, access=AccessMethod.MOBILE, delta_block=None,
    upload_compression=LOW_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.full_file(cross_user=True), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=9000, meta_down=4000, notify_down=300,
                             requests_per_sync=2, per_byte_factor=0.05,
                             connection_per_sync=True),
))
_register(_profile(
    service=_SS, access=AccessMethod.MOBILE, delta_block=None,
    upload_compression=NO_COMPRESSION, download_compression=NO_COMPRESSION,
    dedup=DedupConfig.none(), storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=17000, meta_down=7000, notify_down=300,
                             requests_per_sync=2, per_byte_factor=0.05,
                             connection_per_sync=True,
                             batch_connection_reuse=True,
                             batch_meta_fraction=0.45),
))


def service_profile(service: str, access: AccessMethod = AccessMethod.PC) -> ServiceProfile:
    """Look up the design-choice vector for a service × access method.

    ``service`` accepts the canonical names (``"Dropbox"``) case-insensitively.
    """
    if isinstance(access, str):
        access = AccessMethod(access.lower())
    for (name, method), profile in _PROFILES.items():
        if name.lower() == service.lower() and method is access:
            return profile
    raise KeyError(f"no profile for {service!r} via {access}")


def all_profiles(access: Optional[AccessMethod] = None):
    """All registered profiles, optionally filtered by access method."""
    return [
        profile for (name, method), profile in sorted(
            _PROFILES.items(), key=lambda kv: (SERVICES.index(kv[0][0]), kv[0][1].value))
        if access is None or method is access
    ]

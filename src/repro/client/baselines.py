"""Open-source baseline comparators: rsync, Syncthing-like, Seafile-like.

The techniques the paper's implications recommend — delta sync, batching,
compression, dedup — all predate commercial cloud storage in open-source
tools.  These profiles encode those tools as design-choice vectors so the
ablation benches can race the commercial services against the systems that
pioneered the mechanisms:

* **rsync-like** — classic ``rsync -z`` over a persistent plain-TCP stream:
  incremental sync with the rsync default ~700 B–16 KB block (we use 8 KB),
  whole-stream compression, no dedup (pairwise tool, no global index), full
  batching (one connection per run), no deferment.
* **Syncthing-like** — block-exchange protocol: fixed 128 KB blocks, block
  dedup within the folder (same-user), TLS, metadata-only renames, moderate
  compression, immediate sync.
* **Seafile-like** — CDC-backed content-addressed storage modelled with its
  typical ~1 MB chunks, same-user block dedup, delta sync via chunk diff,
  light defer for batching commits (git-like).
"""

from __future__ import annotations

from ..cloud import DedupConfig
from ..compress import HIGH_COMPRESSION, MODERATE_COMPRESSION, NO_COMPRESSION
from ..simnet import ProtocolCosts
from ..units import KB, MB
from .defer import FixedDefer, NoDefer
from .profiles import (
    AccessMethod,
    BdsMode,
    BdsSupport,
    OverheadProfile,
    ServiceProfile,
)

#: rsync's protocol rides one plain TCP/SSH stream with tiny framing.
_RSYNC_PROTOCOL = ProtocolCosts(
    use_tls=False, handshake_rtts=1.0,
    tls_handshake_up=0, tls_handshake_down=0,
    request_header=96, response_header=64, idle_timeout=600.0)

RSYNC_LIKE = ServiceProfile(
    service="RsyncLike",
    access=AccessMethod.PC,
    delta_block=8 * KB,
    upload_compression=HIGH_COMPRESSION,     # rsync -z: whole-stream zlib
    download_compression=HIGH_COMPRESSION,
    dedup=DedupConfig.none(),
    storage_chunk_size=None,
    overhead=OverheadProfile(meta_up=220, meta_down=120, notify_down=0,
                             requests_per_sync=1, per_byte_factor=0.0),
    bds=BdsSupport(BdsMode.FULL, per_file_bytes=64),
    protocol=_RSYNC_PROTOCOL,
    defer_factory=NoDefer,
)

SYNCTHING_LIKE = ServiceProfile(
    service="SyncthingLike",
    access=AccessMethod.PC,
    delta_block=128 * KB,                    # BEP block size
    upload_compression=MODERATE_COMPRESSION,  # metadata+data lz4-ish
    download_compression=MODERATE_COMPRESSION,
    dedup=DedupConfig.block(128 * KB),
    storage_chunk_size=128 * KB,
    overhead=OverheadProfile(meta_up=900, meta_down=500, notify_down=160,
                             requests_per_sync=1, per_byte_factor=0.01),
    bds=BdsSupport(BdsMode.FULL, per_file_bytes=110),
    defer_factory=NoDefer,
)

SEAFILE_LIKE = ServiceProfile(
    service="SeafileLike",
    access=AccessMethod.PC,
    delta_block=1 * MB,                      # CDC chunks average ~1 MB
    upload_compression=NO_COMPRESSION,
    download_compression=NO_COMPRESSION,
    dedup=DedupConfig.block(1 * MB),
    storage_chunk_size=1 * MB,
    overhead=OverheadProfile(meta_up=1400, meta_down=700, notify_down=200,
                             requests_per_sync=1, per_byte_factor=0.01),
    bds=BdsSupport(BdsMode.FULL, per_file_bytes=140),
    defer_factory=lambda: FixedDefer(2.0),   # commit batching
)

BASELINES = (RSYNC_LIKE, SYNCTHING_LIKE, SEAFILE_LIKE)

"""Client machine profiles (Table 4) and the metadata-computation model.

§6.2 of the paper explains *why* hardware affects TUE: a new modification is
synchronized only when "the client machine has finished calculating the
latest metadata of the modified file" (Condition 2), and "calculating the
latest metadata (which is computation-intensive) requires a longer period of
time" on slower hardware — so updates are naturally batched.

Each profile therefore carries an effective metadata throughput (hashing +
indexing + disk, far below raw disk speed for weak machines, matching the
multi-second client stalls the paper's Atom netbook exhibits) plus a fixed
per-operation cost, and a CPU factor applied to per-sync protocol work.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineProfile:
    """One experimental client machine."""

    name: str
    cpu: str
    memory_gb: int
    storage: str
    #: Effective metadata pipeline throughput, bytes/second (hash + index + I/O).
    meta_rate: float
    #: Fixed per-file-operation metadata cost, seconds.
    meta_base: float
    #: Multiplier on per-sync client-side protocol processing.
    cpu_factor: float

    def metadata_compute_time(self, nbytes: int) -> float:
        """Condition 2: time to (re)compute a file's sync metadata."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.meta_base + nbytes / self.meta_rate

    def sync_processing_time(self) -> float:
        """Client-side CPU cost charged per sync transaction."""
        return 0.10 * self.cpu_factor


_MB = 1024 * 1024

#: Typical machine: quad-core i5 @1.7 GHz, 4 GB, 7200 RPM disk.
M1 = MachineProfile("M1", "Quad-core Intel i5 @ 1.70 GHz", 4, "7200 RPM, 500 GB",
                    meta_rate=60 * _MB, meta_base=0.006, cpu_factor=1.0)
#: Outdated machine: Atom @1.0 GHz, 1 GB, 5400 RPM disk.
M2 = MachineProfile("M2", "Intel Atom @ 1.00 GHz", 1, "5400 RPM, 320 GB",
                    meta_rate=3 * _MB, meta_base=0.90, cpu_factor=8.0)
#: Advanced machine: quad-core i7 @1.9 GHz, 4 GB, SSD.
M3 = MachineProfile("M3", "Quad-core Intel i7 @ 1.90 GHz", 4, "SSD, 250 GB",
                    meta_rate=150 * _MB, meta_base=0.003, cpu_factor=0.5)
#: Android smartphone: dual-core ARM @1.5 GHz.
M4 = MachineProfile("M4", "Dual-core ARM @ 1.50 GHz", 1, "MicroSD, 16 GB",
                    meta_rate=3 * _MB, meta_base=0.50, cpu_factor=10.0)

#: The Beijing twins share hardware with their Minnesota counterparts.
B1 = MachineProfile("B1", M1.cpu, M1.memory_gb, "7200 RPM, 500 GB",
                    meta_rate=M1.meta_rate, meta_base=M1.meta_base, cpu_factor=M1.cpu_factor)
B2 = MachineProfile("B2", M2.cpu, M2.memory_gb, "5400 RPM, 250 GB",
                    meta_rate=M2.meta_rate, meta_base=M2.meta_base, cpu_factor=M2.cpu_factor)
B3 = MachineProfile("B3", M3.cpu, M3.memory_gb, "SSD, 250 GB",
                    meta_rate=M3.meta_rate, meta_base=M3.meta_base, cpu_factor=M3.cpu_factor)
B4 = MachineProfile("B4", "Dual-core ARM @ 1.53 GHz", 1, "MicroSD, 16 GB",
                    meta_rate=M4.meta_rate, meta_base=M4.meta_base, cpu_factor=M4.cpu_factor)

ALL_MACHINES = (M1, M2, M3, M4, B1, B2, B3, B4)


def machine(name: str) -> MachineProfile:
    """Look up a machine profile by its Table 4 name."""
    for profile in ALL_MACHINES:
        if profile.name == name.upper():
            return profile
    raise KeyError(f"unknown machine {name!r}; expected one of "
                   f"{[m.name for m in ALL_MACHINES]}")

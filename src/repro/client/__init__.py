"""Sync clients: engine, profiles, hardware, defer policies, sessions."""

from .baselines import BASELINES, RSYNC_LIKE, SEAFILE_LIKE, SYNCTHING_LIKE
from .defer import (
    AdaptiveSyncDefer,
    ByteCounterDefer,
    DeferPolicy,
    DeferState,
    FixedDefer,
    NoDefer,
    ScanIntervalDefer,
)
from .devices import CommitEvent, CommitFeed, DeviceFleet, MirrorDevice, attach_commit_feed
from .engine import ClientStats, PendingChange, SyncClient, SyncRecord
from .hardware import ALL_MACHINES, B1, B2, B3, B4, M1, M2, M3, M4, MachineProfile, machine
from .profiles import (
    AccessMethod,
    BdsMode,
    BdsSupport,
    DROPBOX_CHUNK,
    DROPBOX_DELTA_BLOCK,
    GOOGLE_DRIVE_DEFER,
    ONEDRIVE_DEFER,
    OverheadProfile,
    SERVICES,
    SUGARSYNC_DELTA_BLOCK,
    SUGARSYNC_DEFER,
    ServiceProfile,
    all_profiles,
    service_profile,
)
from .retry import RetriesExhausted, RetryPolicy, RetryState
from .session import SyncSession

__all__ = [
    "ALL_MACHINES",
    "AccessMethod",
    "AdaptiveSyncDefer",
    "BASELINES",
    "RSYNC_LIKE",
    "SEAFILE_LIKE",
    "SYNCTHING_LIKE",
    "B1", "B2", "B3", "B4",
    "BdsMode",
    "BdsSupport",
    "ByteCounterDefer",
    "ClientStats",
    "CommitEvent",
    "CommitFeed",
    "DeviceFleet",
    "MirrorDevice",
    "attach_commit_feed",
    "DROPBOX_CHUNK",
    "DROPBOX_DELTA_BLOCK",
    "DeferPolicy",
    "DeferState",
    "FixedDefer",
    "GOOGLE_DRIVE_DEFER",
    "M1", "M2", "M3", "M4",
    "MachineProfile",
    "NoDefer",
    "ONEDRIVE_DEFER",
    "OverheadProfile",
    "PendingChange",
    "RetriesExhausted",
    "RetryPolicy",
    "RetryState",
    "SERVICES",
    "SUGARSYNC_DEFER",
    "SUGARSYNC_DELTA_BLOCK",
    "ScanIntervalDefer",
    "ServiceProfile",
    "SyncClient",
    "SyncRecord",
    "SyncSession",
    "all_profiles",
    "machine",
    "service_profile",
]

"""Vocabulary used to synthesise the paper's "random English words" files.

Experiment 4 fills text files "with random English words"; the reference
compressor (highest-level WinZip) squeezes a 10 MB such file to ~4.5 MB.
This vocabulary is sized and weighted so DEFLATE at level 9 lands in the same
ballpark on our generated text (validated in tests/test_compress.py).
"""

from __future__ import annotations

#: Common English words, roughly frequency-ordered; sampling is Zipf-like.
WORDS = (
    "the of and a to in is you that it he was for on are as with his they I "
    "at be this have from or one had by word but not what all were we when "
    "your can said there use an each which she do how their if will up other "
    "about out many then them these so some her would make like him into time "
    "has look two more write go see number no way could people my than first "
    "water been call who oil its now find long down day did get come made may "
    "part over new sound take only little work know place year live me back "
    "give most very after thing our just name good sentence man think say "
    "great where help through much before line right too mean old any same "
    "tell boy follow came want show also around form three small set put end "
    "does another well large must big even such because turn here why ask "
    "went men read need land different home us move try kind hand picture "
    "again change off play spell air away animal house point page letter "
    "mother answer found study still learn should america world high every "
    "near add food between own below country plant last school father keep "
    "tree never start city earth eye light thought head under story saw left "
    "don't few while along might close something seem next hard open example "
    "begin life always those both paper together got group often run"
).split()


def zipf_weights(n: int, exponent: float = 1.05) -> list:
    """Zipf-style sampling weights for the first ``n`` vocabulary entries."""
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]

"""File-content model: deterministic, seeded, and cheap to manipulate.

The paper's controlled experiments use two content classes:

* "highly compressed" files — incompressible random bytes
  (:func:`random_content`), used in Experiments 1–3 and 5–7 so compression
  cannot confound the traffic measurement;
* text files "filled with random English words" (:func:`text_content`),
  used in Experiment 4 to probe compression.

All generators are seeded, so a given (kind, size, seed) triple always yields
identical bytes — experiments are exactly repeatable, and deduplication
behaves the way it would on real repeated uploads.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Optional

from .words import WORDS, zipf_weights

_CHUNK = 1 << 16


class Content:
    """Immutable file content with cached hashes.

    Wraps real bytes; every mutation helper returns a new ``Content``.  Using
    real bytes (rather than an analytic stand-in) means the delta-sync,
    compression, and dedup code paths all operate on genuine data.
    """

    __slots__ = ("data", "_md5")

    def __init__(self, data: bytes):
        self.data = bytes(data)
        self._md5: Optional[str] = None

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Content) and self.data == other.data

    def __hash__(self) -> int:
        return hash(self.md5)

    def __repr__(self) -> str:
        return f"Content({len(self.data)} bytes, md5={self.md5[:8]})"

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def md5(self) -> str:
        """Full-file MD5 fingerprint (the paper's trace records the same)."""
        if self._md5 is None:
            self._md5 = hashlib.md5(self.data).hexdigest()
        return self._md5

    def block_md5s(self, block_size: int) -> list:
        """Per-block MD5 fingerprints (head-aligned fixed blocks, §5.2)."""
        if block_size <= 0:
            raise ValueError("block size must be positive")
        return [
            hashlib.md5(self.data[offset:offset + block_size]).hexdigest()
            for offset in range(0, max(len(self.data), 1), block_size)
        ]

    # -- mutation helpers (each returns a new Content) ---------------------

    def append(self, extra: "Content") -> "Content":
        return Content(self.data + extra.data)

    def concat_self(self) -> "Content":
        """The "self duplication" step of Algorithm 1: f2 = f1 + f1."""
        return Content(self.data + self.data)

    def modify_byte(self, offset: int, seed: int = 0) -> "Content":
        """Flip one byte at ``offset`` to a different deterministic value."""
        if not 0 <= offset < len(self.data):
            raise IndexError(f"offset {offset} outside file of {len(self.data)} bytes")
        rng = random.Random(f"mod:{seed}:{offset}:{self.data[offset]}")
        new_byte = rng.randrange(256)
        if new_byte == self.data[offset]:
            new_byte = (new_byte + 1) % 256
        return Content(self.data[:offset] + bytes([new_byte]) + self.data[offset + 1:])

    def modify_random_byte(self, seed: int = 0) -> "Content":
        """The paper's Experiment 3 operation: modify one random byte."""
        if not self.data:
            raise ValueError("cannot modify a byte of an empty file")
        rng = random.Random(f"pick:{seed}:{len(self.data)}")
        return self.modify_byte(rng.randrange(len(self.data)), seed=seed)

    def overwrite_region(self, offset: int, patch: "Content") -> "Content":
        """Replace bytes starting at ``offset`` with ``patch`` (in-place edit)."""
        end = offset + patch.size
        if offset < 0 or end > len(self.data):
            raise IndexError("patch region outside file bounds")
        return Content(self.data[:offset] + patch.data + self.data[end:])

    def slice(self, offset: int, length: int) -> "Content":
        return Content(self.data[offset:offset + length])


def random_content(size: int, seed: int = 0) -> Content:
    """Incompressible content — the paper's "highly compressed file".

    Drawn from a seeded PRNG rather than ``os.urandom`` so experiments are
    repeatable and dedup across repeated generations behaves like re-uploading
    the very same file.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = random.Random(f"random:{seed}:{size}")
    pieces = []
    remaining = size
    while remaining > 0:
        step = min(remaining, _CHUNK)
        pieces.append(rng.getrandbits(step * 8).to_bytes(step, "little"))
        remaining -= step
    return Content(b"".join(pieces))


#: Fraction of tokens replaced by random alphanumeric strings.  Calibrated so
#: whole-stream DEFLATE level 9 lands near the paper's WinZip reference ratio
#: of ~45 % on a 10 MB file (validated in tests/test_compress.py).
_TEXT_NOISE_FRACTION = 0.18
_NOISE_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def text_content(size: int, seed: int = 0,
                 noise_fraction: float = _TEXT_NOISE_FRACTION) -> Content:
    """Compressible content — random English words, Zipf-weighted.

    Matches Experiment 4's workload.  A ``noise_fraction`` of the tokens are
    random alphanumeric strings (names, identifiers, numbers in real prose),
    which sets the entropy so highest-level DEFLATE reproduces the paper's
    WinZip reference ratio (~45 %).
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = random.Random(f"text:{seed}:{size}")
    weights = zipf_weights(len(WORDS))
    pieces = []
    produced = 0
    while produced < size:
        batch = rng.choices(WORDS, weights=weights, k=256)
        tokens = [
            "".join(rng.choices(_NOISE_ALPHABET, k=rng.randint(4, 10)))
            if rng.random() < noise_fraction else word
            for word in batch
        ]
        blob = (" ".join(tokens) + " ").encode("ascii")
        pieces.append(blob)
        produced += len(blob)
    return Content(b"".join(pieces)[:size])


def compressible_content(size: int, ratio: float, seed: int = 0) -> Content:
    """Content engineered to DEFLATE to approximately ``ratio`` of its size.

    Mixes incompressible random bytes with highly compressible runs; used by
    the trace generator to synthesise files across the compressibility
    spectrum the trace exhibits (52 % effectively compressible).
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must be in (0, 1]")
    if ratio >= 0.999:
        return random_content(size, seed=seed)
    random_part = int(size * ratio * 0.98)
    filler = size - random_part
    rng = random.Random(f"mix:{seed}:{size}")
    head = random_content(random_part, seed=rng.randrange(1 << 30)).data
    return Content(head + bytes(filler))


def measured_compress_ratio(content: Content, level: int = 9) -> float:
    """Actual DEFLATE ratio (compressed/original) of a content object."""
    if content.size == 0:
        return 1.0
    return len(zlib.compress(content.data, level)) / content.size

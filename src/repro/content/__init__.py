"""Deterministic file-content generators and the immutable Content type."""

from .model import (
    Content,
    compressible_content,
    measured_compress_ratio,
    random_content,
    text_content,
)
from .words import WORDS

__all__ = [
    "Content",
    "WORDS",
    "compressible_content",
    "measured_compress_ratio",
    "random_content",
    "text_content",
]

"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro list                     # what can be reproduced
    python -m repro table6 [--access pc]     # any table/figure by name
    python -m repro fig6 --service Dropbox
    python -m repro probe-dedup Dropbox      # run Algorithm 1 live
    python -m repro probe-defer GoogleDrive  # infer the sync deferment
    python -m repro trace --scale 0.1 --out trace.zip
    python -m repro replay --scale 0.1       # macro traffic estimate
    python -m repro audit exp8 --fault-rate 0.5   # run w/ conservation audit
    python -m repro trace-run exp1 --out spans.jsonl   # export the span trace

(`trace` generates the statistical-twin workload trace; `trace-run` records
the wire-level *span* trace of an experiment — see EXPERIMENTS.md.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .client import AccessMethod, SERVICES, service_profile
from .reporting import (fmt_tue, render_fleet_members, render_series,
                        render_table, size_cell)
from .units import KB, MB, fmt_size


def _access(value: str) -> AccessMethod:
    return AccessMethod(value.lower())


def cmd_list(_args) -> int:
    rows = [
        ["table6", "creation sync traffic (6 services × 3 access methods)"],
        ["table7", "batched-data-sync traffic for 100 × 1 KB files"],
        ["table8", "compression: 10-MB text file UP/DN"],
        ["table9", "dedup granularity via Algorithm 1"],
        ["fig3", "TUE vs. created-file size"],
        ["fig4", "one-byte modification traffic"],
        ["fig6", "frequent modifications (X KB / X sec)"],
        ["deletion", "Experiment 2: deletion traffic"],
        ["probe-dedup", "run Algorithm 1 against one service"],
        ["probe-defer", "infer a service's fixed sync deferment"],
        ["trace", "generate the statistical-twin trace"],
        ["replay", "macro trace-replay traffic estimate"],
        ["findings", "verify every Table 5 finding live"],
        ["upgrades", "savings from retrofitting each recommendation"],
        ["overuse", "per-user traffic-overuse statistic ([36])"],
        ["fleet", "shared-folder fleet: N writers, fan-out amplification"],
        ["backends", "Experiment 10: storage backends × file-size mixes"],
        ["strategies", "Experiment 11: sync strategies × workloads × links"],
        ["audit", "run an experiment under the byte-conservation auditor"],
        ["trace-run", "record an experiment's wire-level span trace (JSONL)"],
        ["lint", "reprolint: static determinism/conservation invariants"],
    ]
    print(render_table(["Command", "Reproduces"], rows))
    return 0


def cmd_table6(args) -> int:
    from .core import experiment1_creation
    from .core.experiments import DEFAULT_SIZES
    result = experiment1_creation(access_methods=(args.access,))
    rows = [
        [service] + [size_cell(result.get(service, args.access, size).traffic)
                     for size in DEFAULT_SIZES]
        for service in SERVICES
    ]
    print(render_table(["Service"] + [fmt_size(s) for s in DEFAULT_SIZES],
                       rows, title=f"Table 6 ({args.access.value})"))
    return 0


def cmd_table7(args) -> int:
    from .core import experiment1_batch
    rows = [
        [row.service, size_cell(row.traffic), fmt_tue(row.tue, precision=1)]
        for row in experiment1_batch(access_methods=(args.access,))
    ]
    print(render_table(["Service", "Traffic", "TUE"], rows,
                       title=f"Table 7 ({args.access.value})"))
    return 0


def cmd_table8(args) -> int:
    from .core import experiment4_compression
    rows = [
        [row.service, fmt_size(row.upload_traffic), fmt_size(row.download_traffic)]
        for row in experiment4_compression(access_methods=(args.access,),
                                           size=args.size)
    ]
    print(render_table(["Service", "UP", "DN"], rows,
                       title=f"Table 8 ({args.access.value}, "
                             f"{fmt_size(args.size)} text)"))
    return 0


def cmd_table9(args) -> int:
    from .core import experiment5_dedup
    rows = [[f.service, f.same_user, f.cross_user]
            for f in experiment5_dedup(max_block=args.max_block)]
    print(render_table(["Service", "Same user", "Cross users"], rows,
                       title="Table 9"))
    return 0


def cmd_fig3(args) -> int:
    from .core import experiment1_tue_curve
    curves = experiment1_tue_curve(services=(args.service,))
    print(render_series(curves[args.service], x_label="Size (B)",
                        y_label="TUE", title=f"Figure 3 — {args.service}"))
    return 0


def cmd_fig4(args) -> int:
    from .core import experiment3_modification
    cells = experiment3_modification(services=(args.service,),
                                     access_methods=(args.access,))
    rows = [[fmt_size(cell.size), size_cell(cell.traffic)] for cell in cells]
    print(render_table(["File size", "Traffic"], rows,
                       title=f"Figure 4 — {args.service} ({args.access.value})"))
    return 0


def cmd_fig6(args) -> int:
    from .core import experiment6_frequent_mods
    runs = experiment6_frequent_mods(args.service, xs=range(1, args.max_x + 1),
                                     total=args.total)
    print(render_series([(run.x, run.tue) for run in runs],
                        x_label="X (KB & sec)", y_label="TUE",
                        title=f"Figure 6 — {args.service}"))
    return 0


def cmd_deletion(args) -> int:
    from .core import experiment2_deletion
    rows = [[row.service, fmt_size(row.size), size_cell(row.deletion_traffic)]
            for row in experiment2_deletion(access_methods=(args.access,))]
    print(render_table(["Service", "File size", "Deletion traffic"], rows,
                       title="Experiment 2"))
    return 0


def cmd_probe_dedup(args) -> int:
    from .core.algorithm1 import _paired_sessions, iterative_self_duplication
    session, _ = _paired_sessions(args.service, args.access)
    result = iterative_self_duplication(session, max_block=args.max_block)
    print(f"{args.service}: dedup granularity = {result.label()}")
    for probe in result.rounds:
        print(f"  guess {fmt_size(probe.guess):>9s}: Tr1={fmt_size(probe.tr1)}, "
              f"Tr2={fmt_size(probe.tr2)} → {probe.verdict}")
    return 0


def cmd_probe_defer(args) -> int:
    from .core import infer_sync_deferment
    result = infer_sync_deferment(args.service)
    if result.deferment is None:
        print(f"{args.service}: no fixed sync deferment detected")
    else:
        low, high = result.bracket
        print(f"{args.service}: T ≈ {result.deferment:.2f} s "
              f"(bracketed in [{low:.2f}, {high:.2f}])")
    return 0


def cmd_trace(args) -> int:
    from .trace import generate_trace, save_trace, summary_stats
    trace = generate_trace(scale=args.scale, seed=args.seed)
    stats = summary_stats(trace)
    print(f"{stats.file_count} files / {stats.user_count} users — "
          f"mean {fmt_size(stats.mean_size)}, median {fmt_size(stats.median_size)}, "
          f"{stats.small_fraction:.0%} small, "
          f"compression ratio {stats.compression_ratio:.2f}")
    if args.out:
        save_trace(trace, args.out)
        print(f"written to {args.out}")
    return 0


def cmd_findings(args) -> int:
    from .core import verify_findings
    findings = verify_findings(trace_scale=args.scale)
    rows = [[f.section, f.statement, f.evidence, "OK" if f.holds else "FAIL"]
            for f in findings]
    print(render_table(["§", "Finding", "Measured", "Verdict"], rows,
                       title="Table 5 — major findings, verified"))
    return 0 if all(f.holds for f in findings) else 1


def cmd_upgrades(args) -> int:
    from .core import UPGRADES, quantify_all
    results = quantify_all(services=tuple(args.services))
    by_key = {(r.service, r.upgrade): r for r in results}
    rows = [[service] + [f"{by_key[(service, upgrade)].saving:+.0%}"
                         for upgrade in UPGRADES]
            for service in args.services]
    print(render_table(["Service"] + list(UPGRADES), rows,
                       title="Traffic saved by each §4–§6 upgrade"))
    return 0


def cmd_overuse(args) -> int:
    from .trace import (ReplayPool, generate_trace, replay_trace,
                        traffic_overuse_fraction)
    trace = generate_trace(scale=args.scale, seed=args.seed)
    pool = ReplayPool(trace, workers=args.workers) if args.workers > 1 \
        else None
    rows = []
    try:
        for service in SERVICES:
            profile = service_profile(service, args.access)
            # The replay RNG must see the CLI seed, or every run silently
            # replays at seed=0 regardless of --seed.
            if pool is not None:
                report = pool.replay(profile, seed=args.seed)
            else:
                report = replay_trace(trace, profile, seed=args.seed)
            rows.append([service,
                         f"{traffic_overuse_fraction(report):.1%}"])
    finally:
        if pool is not None:
            pool.close()
    print(render_table(
        ["Service", "Users losing >10% of traffic to modification overuse"],
        rows, title=f"Traffic overuse across the trace (scale {args.scale:g})"))
    return 0


def cmd_fleet(args) -> int:
    from .core import run_collaboration
    from .fleet import Fleet, schedule_writer_workload
    from .obs import AuditViolation, TraceHub, recording
    from .simnet import bj_link, mn_link

    link = bj_link() if args.link == "bj" else mn_link()
    writers = min(args.writers, args.clients)
    hub = TraceHub()
    try:
        with recording(hub=hub, jsonl=args.trace):
            fleet = Fleet(args.service, access=args.access,
                          clients=args.clients, link_spec=link,
                          seed=args.seed, domains=args.domains)
            schedule_writer_workload(fleet, writers=writers,
                                     files_per_writer=args.files,
                                     file_size=args.size, seed=args.seed)
            fleet.run_until_idle()
            if args.audit:
                fleet.audit()
    except AuditViolation as violation:
        print(f"AUDIT FAILED: {violation}")
        return 1
    report = fleet.report()
    print(render_fleet_members(
        report,
        title=f"Fleet — {report.service}, {report.clients} clients, "
              f"{writers} writer(s), seed {args.seed}"))
    if args.domains > 1:
        print(f"{args.domains} event domains, "
              f"{fleet.sim.cross_messages} cross-domain messages "
              f"(byte-identical to the single-queue run by construction)")
    # Amplification is normalised against the same workload driven by a
    # single solo writer (no fan-out targets).
    baseline = run_collaboration(args.service, access=args.access, writers=1,
                                 clients=1, files_per_writer=args.files,
                                 file_size=args.size, seed=args.seed,
                                 link_spec=link)
    print(f"fleet TUE {fmt_tue(report.tue)} over "
          f"{report.commit_epochs} commit epoch(s); amplification "
          f"{fmt_tue(report.amplification(baseline))}x vs a solo writer")
    if args.trace:
        print(f"span trace written to {args.trace}")
    if args.audit:
        print(f"conservation + fan-out audit passed: {hub.span_count} spans "
              f"across {len(hub.recorders)} session(s), 0 violations")
    return 0


def cmd_replay(args) -> int:
    from .trace import (ReplayPool, generate_trace, iter_trace_records,
                        replay_all)
    if args.stream:
        # Stream records straight into the worker shards: the parent never
        # materialises the trace (the scale-50 regime).
        with ReplayPool.from_records(
                iter_trace_records(scale=args.scale, seed=args.seed),
                workers=args.workers) as pool:
            reports = replay_all(access=args.access, seed=args.seed,
                                 pool=pool)
            file_count = pool.record_count
    else:
        trace = generate_trace(scale=args.scale, seed=args.seed)
        reports = replay_all(trace, access=args.access, seed=args.seed,
                             workers=args.workers)
        file_count = len(trace)
    rows = [
        [report.service, fmt_size(report.traffic_bytes), fmt_tue(report.tue),
         fmt_size(report.saved_by_compression), fmt_size(report.saved_by_dedup),
         fmt_size(report.saved_by_bds), fmt_size(report.saved_by_ids)]
        for report in reports
    ]
    print(render_table(
        ["Service", "Traffic", "TUE", "Δcompress", "Δdedup", "Δbds", "Δids"],
        rows, title=f"Macro replay (scale {args.scale:g}, "
                    f"{file_count} files, {args.access.value})"))
    return 0


#: Small-but-representative targets for traced/audited runs: each exercises
#: a different slice of the wire model (experiments 1–8 and the parallel
#: trace replay) while staying fast enough for CI.
OBS_TARGETS = ("exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7",
               "exp8", "exp10", "exp11", "replay", "all")


def _obs_run_target(args, target: str) -> str:
    """Run one audit/trace target; returns a short human description."""
    service = args.service
    access = args.access
    if target == "all":
        for name in OBS_TARGETS[:-1]:
            _obs_run_target(args, name)
        return "experiments 1-8 + parallel replay"
    if target == "exp1":
        from .core import measure_creation
        for size in (1, 1 * KB, 1 * MB):
            measure_creation(service, access, size)
        return f"experiment 1 (creation, {service})"
    if target == "exp2":
        from .core import experiment2_deletion
        experiment2_deletion(services=(service,), access_methods=(access,),
                             sizes=(1 * KB, 1 * MB))
        return f"experiment 2 (deletion, {service})"
    if target == "exp3":
        from .core import measure_modification
        measure_modification(service, access, 64 * KB)
        return f"experiment 3 (modification, {service})"
    if target == "exp4":
        from .core import measure_compression
        measure_compression(service, access, size=1 * MB)
        return f"experiment 4 (compression, {service})"
    if target == "exp5":
        from .core.algorithm1 import _paired_sessions, iterative_self_duplication
        session, _ = _paired_sessions(service, access)
        iterative_self_duplication(session, max_block=2 * MB)
        return f"experiment 5 (dedup probe, {service})"
    if target == "exp6":
        from .core import experiment6_frequent_mods
        experiment6_frequent_mods(service, xs=(1.0, 2.0, 4.0), total=64 * KB)
        return f"experiment 6 (frequent modifications, {service})"
    if target == "exp7":
        from .core import run_appending
        from .simnet import bj_link
        run_appending(service, 1.0, total=64 * KB, access=access,
                      link_spec=bj_link())
        return f"experiment 7 (BJ vantage appending, {service})"
    if target == "exp8":
        from .core import run_faulty_sync
        run_faulty_sync(service, fault_rate=args.fault_rate, resumable=False,
                        file_count=2, file_size=512 * KB, unit_size=128 * KB)
        return (f"experiment 8 (faults at rate {args.fault_rate:g}, "
                f"{service})")
    if target == "exp10":
        from .core import run_backend_cell
        run_backend_cell("packshard", "paper", files=24)
        return "experiment 10 (packed-shard bundled commit)"
    if target == "exp11":
        from .core import run_strategy_cell
        # One static and the adaptive selector over the delta-friendly
        # workload: exercises every new span kind (strategy-select,
        # delta-exchange) plus the strategy-conservation invariant.
        for name in ("fixed-delta", "set-reconcile", "adaptive"):
            run_strategy_cell(name, "scatter-edit", "mn", files=2,
                              seed=args.seed)
        return "experiment 11 (sync strategies, scatter-edit over MN)"
    if target == "replay":
        from .trace import ReplayPool, generate_trace
        trace = generate_trace(scale=args.scale, seed=args.seed)
        profile = service_profile(service, access)
        with ReplayPool(trace, workers=args.workers) as pool:
            # replay_audited checks the per-report invariants *and* that
            # the shard merge (settle credits included) conserved bytes.
            pool.replay_audited(profile, seed=args.seed)
        return (f"parallel replay (scale {args.scale:g}, "
                f"{args.workers} worker(s), {service})")
    raise ValueError(f"unknown target {target!r}")


def _cmd_observed(args, audit: bool) -> int:
    """Shared body of `repro audit` and `repro trace-run`."""
    from .obs import AuditViolation, TraceHub, audit_hub, recording
    from .reporting import render_phase_breakdown

    hub = TraceHub()
    out = getattr(args, "out", None)
    try:
        with recording(hub=hub, jsonl=out):
            description = _obs_run_target(args, args.target)
        if audit:
            audit_hub(hub)
    except AuditViolation as violation:
        print(f"AUDIT FAILED: {violation}")
        return 1
    if hub.recorders:
        print(render_phase_breakdown(
            hub, title=f"Per-phase breakdown — {description}"))
    if out:
        print(f"span trace written to {out}")
    if audit:
        print(f"conservation audit passed: {hub.span_count} spans across "
              f"{len(hub.recorders)} session(s), 0 violations")
    return 0


#: Baseline applied by default when the file exists (repo root); passing
#: --baseline explicitly makes a missing file an error instead.
DEFAULT_BASELINE = "reprolint-baseline.json"


def cmd_lint(args) -> int:
    import json as _json
    import os.path

    from .lint import (ALL_RULES, KNOWN_IDS, PROJECT_RULES, lint_paths,
                       lint_project)

    baseline = args.baseline
    if baseline is None:
        baseline = DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) \
            else None
    elif not os.path.exists(baseline):
        print(f"error: baseline file {baseline!r} does not exist",
              file=sys.stderr)
        return 2
    if args.graph:
        result = lint_project(args.paths, ALL_RULES, PROJECT_RULES,
                              baseline_path=baseline,
                              cache_dir=args.cache_dir, jobs=args.jobs,
                              known_ids=KNOWN_IDS)
    else:
        result = lint_paths(args.paths, ALL_RULES, baseline_path=baseline,
                            known_ids=KNOWN_IDS)

    stale_fails = bool(result.stale) and args.fail_stale
    if args.format == "json":
        payload = {
            "files": result.file_count,
            "findings": [finding.to_dict() for finding in result.findings],
            "baseline_applied": result.baseline_applied,
            "stale_baseline": [
                {"rule": entry.rule, "path": entry.path,
                 "comment": entry.comment}
                for entry in result.stale],
        }
        if args.graph:
            payload["graph"] = {"modules": result.module_count,
                                "call_edges": result.call_edges,
                                "cache_hits": result.cache_hits}
        print(_json.dumps(payload, indent=2))
        return 1 if (result.findings or stale_fails) else 0

    for finding in result.findings:
        print(finding.format())
    for entry in result.stale:
        print(f"{'error' if args.fail_stale else 'warning'}: stale baseline "
              f"entry {entry.rule} for {entry.path} — the finding no longer "
              f"fires; remove the suppression")
    status = "FAILED" if (result.findings or stale_fails) else "ok"
    if args.graph:
        print(f"project graph: {result.module_count} module(s), "
              f"{result.call_edges} call edge(s), "
              f"{result.cache_hits} cache hit(s)")
    print(f"reprolint: {result.file_count} file(s), "
          f"{len(result.findings)} finding(s), "
          f"{result.baseline_applied} baselined, "
          f"{len(result.stale)} stale — {status}")
    return 1 if (result.findings or stale_fails) else 0


def cmd_backends(args) -> int:
    from .core import experiment10_backends
    from .obs import AuditViolation, audit_hub, recording
    from .reporting import render_backend_matrix

    title = f"Experiment 10 — storage backends (seed {args.seed})"
    if args.audit:
        try:
            with recording() as hub:
                cells = experiment10_backends(files=args.files,
                                              seed=args.seed)
            audit_hub(hub)
        except AuditViolation as violation:
            print(f"AUDIT FAILED: {violation}")
            return 1
    else:
        cells = experiment10_backends(files=args.files, seed=args.seed)
    print(render_backend_matrix(cells, title=title))
    by_key = {(c.backend, c.mix): c for c in cells}
    chunk = by_key.get(("chunk", "paper"))
    shard = by_key.get(("packshard", "paper"))
    if chunk and shard and shard.rest_ops_per_file > 0:
        ratio = chunk.rest_ops_per_file / shard.rest_ops_per_file
        print(f"paper mix: packshard issues {ratio:.1f}x fewer REST ops/file "
              f"than the chunk store")
    if args.audit:
        print("conservation audit passed (incl. bundle-conservation and "
              "rest-conservation)")
    return 0


def cmd_strategies(args) -> int:
    from .core import experiment11_strategies
    from .obs import AuditViolation, audit_hub, recording
    from .reporting import render_strategy_matrix

    title = f"Experiment 11 — sync strategies (seed {args.seed})"
    if args.audit:
        try:
            with recording() as hub:
                cells = experiment11_strategies(files=args.files,
                                                seed=args.seed)
            audit_hub(hub)
        except AuditViolation as violation:
            print(f"AUDIT FAILED: {violation}")
            return 1
    else:
        cells = experiment11_strategies(files=args.files, seed=args.seed,
                                        audit=False)
    print(render_strategy_matrix(cells, title=title))
    adaptive = {(c.workload, c.link): c.tue
                for c in cells if c.strategy == "adaptive"}
    dominated = all(
        adaptive[(c.workload, c.link)] <= c.tue + 1e-12
        for c in cells
        if c.strategy != "adaptive" and (c.workload, c.link) in adaptive)
    print("adaptive selector TUE <= every static strategy on every cell: "
          + ("yes" if dominated else "NO"))
    if args.audit:
        print("conservation audit passed (incl. strategy-conservation)")
    return 0 if dominated else 1


def cmd_audit(args) -> int:
    return _cmd_observed(args, audit=True)


def cmd_trace_run(args) -> int:
    return _cmd_observed(args, audit=args.audit)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Towards Network-level Efficiency for Cloud "
                    "Storage Services' (IMC 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, **arguments):
        command = sub.add_parser(name)
        command.set_defaults(fn=fn)
        for flag, options in arguments.items():
            command.add_argument(flag, **options)
        return command

    add("list", cmd_list)
    add("table6", cmd_table6,
        **{"--access": dict(type=_access, default=AccessMethod.PC)})
    add("table7", cmd_table7,
        **{"--access": dict(type=_access, default=AccessMethod.PC)})
    add("table8", cmd_table8,
        **{"--access": dict(type=_access, default=AccessMethod.PC),
           "--size": dict(type=int, default=10 * MB)})
    add("table9", cmd_table9,
        **{"--max-block": dict(type=int, default=16 * MB, dest="max_block")})
    add("fig3", cmd_fig3,
        **{"--service": dict(default="GoogleDrive")})
    add("fig4", cmd_fig4,
        **{"--service": dict(default="Dropbox"),
           "--access": dict(type=_access, default=AccessMethod.PC)})
    add("fig6", cmd_fig6,
        **{"--service": dict(default="GoogleDrive"),
           "--max-x": dict(type=int, default=10, dest="max_x"),
           "--total": dict(type=int, default=256 * KB)})
    add("deletion", cmd_deletion,
        **{"--access": dict(type=_access, default=AccessMethod.PC)})
    add("probe-dedup", cmd_probe_dedup,
        **{"service": dict(), "--access": dict(type=_access,
                                               default=AccessMethod.PC),
           "--max-block": dict(type=int, default=16 * MB, dest="max_block")})
    add("probe-defer", cmd_probe_defer, **{"service": dict()})
    add("trace", cmd_trace,
        **{"--scale": dict(type=float, default=0.1),
           "--seed": dict(type=int, default=42),
           "--out": dict(default=None)})
    add("replay", cmd_replay,
        **{"--scale": dict(type=float, default=0.05),
           "--seed": dict(type=int, default=42),
           "--access": dict(type=_access, default=AccessMethod.PC),
           "--workers": dict(type=int, default=1),
           "--stream": dict(action="store_true",
                            help="stream records into the pool instead of "
                                 "materialising the trace")})
    add("findings", cmd_findings,
        **{"--scale": dict(type=float, default=0.1)})
    add("upgrades", cmd_upgrades,
        **{"--services": dict(nargs="+", default=list(SERVICES))})
    add("fleet", cmd_fleet,
        **{"--service": dict(default="GoogleDrive"),
           "--access": dict(type=_access, default=AccessMethod.PC),
           "--clients": dict(type=int, default=4),
           "--writers": dict(type=int, default=2),
           "--seed": dict(type=int, default=0),
           "--files": dict(type=int, default=2),
           "--size": dict(type=int, default=64 * KB),
           "--link": dict(choices=("mn", "bj"), default="mn"),
           "--domains": dict(type=int, default=1),
           "--trace": dict(default=None),
           "--audit": dict(action="store_true")})
    add("backends", cmd_backends,
        **{"--files": dict(type=int, default=None),
           "--seed": dict(type=int, default=0),
           "--audit": dict(action="store_true")})
    add("strategies", cmd_strategies,
        **{"--files": dict(type=int, default=3),
           "--seed": dict(type=int, default=0),
           "--audit": dict(action="store_true")})
    add("overuse", cmd_overuse,
        **{"--scale": dict(type=float, default=0.03),
           "--seed": dict(type=int, default=42),
           "--access": dict(type=_access, default=AccessMethod.PC),
           "--workers": dict(type=int, default=1)})
    observed = {
        "target": dict(choices=OBS_TARGETS),
        "--service": dict(default="Dropbox"),
        "--access": dict(type=_access, default=AccessMethod.PC),
        "--fault-rate": dict(type=float, default=0.5, dest="fault_rate"),
        "--scale": dict(type=float, default=0.005),
        "--seed": dict(type=int, default=42),
        "--workers": dict(type=int, default=2),
    }
    add("lint", cmd_lint,
        **{"paths": dict(nargs="*", default=["src"]),
           "--format": dict(choices=("text", "json"), default="text"),
           "--baseline": dict(default=None),
           "--fail-stale": dict(action="store_true", dest="fail_stale"),
           "--graph": dict(action="store_true",
                           help="run the whole-program REP03x/04x/05x "
                                "families over the project call graph"),
           "--jobs": dict(type=int, default=1,
                          help="parallel workers for cold per-file analysis"),
           "--cache-dir": dict(default=None, dest="cache_dir",
                               help="incremental analysis cache directory")})
    add("audit", cmd_audit,
        **dict(observed, **{"--trace": dict(default=None, dest="out")}))
    add("trace-run", cmd_trace_run,
        **dict(observed, **{"--out": dict(required=True),
                            "--audit": dict(action="store_true")}))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Per-phase timing/bytes breakdown table for a recorded trace.

Renders the :meth:`~repro.obs.recorder.TraceRecorder.phase_breakdown`
aggregation — one row per (span kind, name) phase with event count, wall
time, and up/down/wasted wire bytes — in the same ASCII-table style the
rest of the reporting layer uses.  Byte columns cover wire spans only;
logical phases (defer windows, retry attempts, ...) contribute timing.
"""

from __future__ import annotations

from ..units import fmt_size
from .tables import render_table


def render_phase_breakdown(source,
                           title: str = "Per-phase timing & bytes") -> str:
    """``source`` is a TraceRecorder or TraceHub (anything exposing
    ``phase_breakdown()``)."""
    rows = [
        [stat.kind, stat.name, str(stat.events), f"{stat.seconds:.3f}",
         fmt_size(stat.up_bytes), fmt_size(stat.down_bytes),
         fmt_size(stat.wasted_bytes)]
        for stat in source.phase_breakdown()
    ]
    return render_table(
        ["Phase", "Name", "Events", "Seconds", "Up", "Down", "Wasted"],
        rows, title=title)

"""Result export: persist experiment results as CSV or JSON.

All experiment functions return dataclasses (or lists of them); these
helpers serialise any such result set for downstream analysis (spreadsheets,
plotting scripts), complementing the ASCII rendering in
:mod:`repro.reporting.tables`.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Dict, Sequence, Union


def _plain(value: Any) -> Any:
    """Convert experiment values into JSON/CSV-friendly primitives."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return row_dict(value)
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(val) for key, val in value.items()}
    if isinstance(value, bytes):
        return value.hex()
    return value


def row_dict(result: Any) -> Dict[str, Any]:
    """One result dataclass → a flat dict, including computed properties."""
    if not dataclasses.is_dataclass(result):
        raise TypeError(f"expected a dataclass instance, got {type(result)}")
    row = {field.name: _plain(getattr(result, field.name))
           for field in dataclasses.fields(result)}
    # Include read-only properties (tue, saving, ...) — they carry the
    # derived numbers callers usually want.
    for name in dir(type(result)):
        attr = getattr(type(result), name, None)
        if isinstance(attr, property):
            try:
                row[name] = _plain(getattr(result, name))
            except Exception:
                continue
    return row


def to_json(results: Union[Any, Sequence[Any]], path: Union[str, Path]) -> None:
    """Write one result or a list of results as pretty-printed JSON."""
    if dataclasses.is_dataclass(results) and not isinstance(results, type):
        payload: Any = row_dict(results)
    else:
        payload = [row_dict(result) for result in results]
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True,
                                     default=str) + "\n")


def to_csv(results: Sequence[Any], path: Union[str, Path]) -> None:
    """Write a homogeneous list of result dataclasses as CSV."""
    rows = [row_dict(result) for result in results]
    if not rows:
        Path(path).write_text("")
        return
    # Keep only scalar columns; nested structures don't belong in CSV.
    columns = [key for key, value in rows[0].items()
               if not isinstance(value, (list, dict))]
    with Path(path).open("w", newline="") as stream:
        writer = csv.DictWriter(stream, fieldnames=columns,
                                extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)


def load_json(path: Union[str, Path]) -> Any:
    """Read back a JSON export."""
    return json.loads(Path(path).read_text())

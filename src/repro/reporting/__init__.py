"""Rendering helpers for tables and figure series."""

from .export import load_json, row_dict, to_csv, to_json
from .phases import render_phase_breakdown
from .tables import (fmt_tue, render_backend_matrix,
                     render_fleet_members, render_series,
                     render_strategy_matrix, render_table, size_cell)

__all__ = ["fmt_tue", "load_json", "render_backend_matrix",
           "render_fleet_members",
           "render_phase_breakdown", "render_series",
           "render_strategy_matrix",
           "render_table", "row_dict", "size_cell", "to_csv", "to_json"]

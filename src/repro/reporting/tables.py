"""ASCII rendering of the paper's tables and figure series.

The benchmark harness prints these so a run of ``pytest benchmarks/``
regenerates, row for row, what the paper reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from ..units import fmt_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fleet.report import FleetReport


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Monospace table with column auto-sizing."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    pieces = []
    if title:
        pieces.append(title)
    pieces.append(line(headers))
    pieces.append("-+-".join("-" * w for w in widths))
    pieces.extend(line(row) for row in materialised)
    return "\n".join(pieces)


def render_series(points: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  title: Optional[str] = None,
                  x_format: str = "g", y_format: str = ".2f") -> str:
    """A figure's data series as two aligned columns."""
    rows = [(format(x, x_format), format(y, y_format)) for x, y in points]
    return render_table([x_label, y_label], rows, title=title)


def size_cell(nbytes: float) -> str:
    """Table 6/7/8 style byte formatting."""
    return fmt_size(nbytes)


def render_fleet_members(report: "FleetReport",
                         title: Optional[str] = None) -> str:
    """The per-member fleet table the ``repro fleet`` CLI prints.

    Shared between the CLI and the sharded-fleet differential tests: the
    rendered report is part of the byte-identity contract, so both sides
    must render through the same code path.  Deliberately a pure function
    of the :class:`~repro.fleet.report.FleetReport` — nothing about domain
    layout may leak into it.
    """
    rows = [
        [member.name, "yes" if member.live else "left",
         size_cell(int(member.traffic.total)),
         size_cell(int(member.traffic.data_update_size)),
         fmt_tue(member.tue), str(member.notifications),
         str(member.fanout_fetches), str(member.conflicts)]
        for member in report.members
    ]
    return render_table(
        ["Member", "Live", "Traffic", "Update", "TUE", "Notifs", "Fetches",
         "Conflicts"], rows, title=title)


def render_backend_matrix(cells: Sequence, title: Optional[str] = None) -> str:
    """The Experiment 10 backend × mix sweep, one row per cell.

    Shared between ``repro backends`` and ``benchmarks/bench_backends.py``
    so the rendered sweep is part of the rerun byte-identity contract.
    """
    rows = [
        [cell.mix, cell.backend, str(cell.files),
         f"{cell.rest_ops_per_file:.2f}", str(cell.rest_ops),
         f"{cell.put_ops}/{cell.get_ops}/{cell.delete_ops}/{cell.list_ops}",
         size_cell(cell.stored_bytes), fmt_tue(cell.tue, precision=3),
         str(cell.shards_sealed), str(cell.shard_compactions),
         str(cell.bundle_commits)]
        for cell in cells
    ]
    return render_table(
        ["Mix", "Backend", "Files", "Ops/file", "REST ops",
         "P/G/D/L", "Stored", "TUE", "Sealed", "Compact", "Bundles"],
        rows, title=title)


def fmt_tue(value: float, precision: int = 2) -> str:
    """Render a TUE ratio under the zero-size convention (PR 3).

    ``nan`` (no traffic, no update) renders as ``—``; ``inf`` (traffic
    with a zero-byte update) renders literally; everything else gets
    ``precision`` decimals.
    """
    if value != value:  # nan
        return "—"
    if value == float("inf"):
        return "inf"
    return f"{value:.{precision}f}"


def render_strategy_matrix(cells: Sequence,
                           title: Optional[str] = None) -> str:
    """The Experiment 11 frontier matrix: workload × link rows, one TUE
    column per strategy, and the per-row winner.

    The Winner column names the cheapest *static* strategy, so a glance
    shows no static column winning every row; a ``*`` marks the adaptive
    column wherever its TUE matches or beats that winner's — the
    dominance contract says it always should.
    """
    strategies: List[str] = []
    for cell in cells:
        if cell.strategy not in strategies:
            strategies.append(cell.strategy)
    grid: dict = {}
    row_keys: List[Tuple[str, str]] = []
    for cell in cells:
        key = (cell.workload, cell.link)
        if key not in grid:
            grid[key] = {}
            row_keys.append(key)
        grid[key][cell.strategy] = cell
    rows = []
    for workload, link in row_keys:
        row_cells = grid[(workload, link)]
        statics = [c for c in row_cells.values() if c.strategy != "adaptive"]
        best = min(statics or row_cells.values(),
                   key=lambda c: (c.tue if c.tue == c.tue else float("inf"),
                                  c.strategy))
        row = [workload, link]
        for name in strategies:
            cell = row_cells.get(name)
            if cell is None:
                row.append("—")
                continue
            text = fmt_tue(cell.tue, precision=3)
            if name == "adaptive" and (
                    cell.tue <= best.tue or cell.tue != cell.tue):
                text += "*"
            row.append(text)
        row.append(best.strategy)
        rows.append(row)
    return render_table(
        ["Workload", "Link"] + list(strategies) + ["Winner"],
        rows, title=title)

"""Content-defined chunking (CDC) — the §5.2 counterfactual.

The paper deliberately dedups with head-aligned fixed blocks and notes it is
"not dividing files to blocks in the best possible manner [19, 39] which is
much more complicated and computation intensive".  This module implements
that best-possible manner — gear-hash CDC à la EndRE/LBFS — so the ablation
benches can quantify exactly what the paper left on the table: fixed blocks
lose all alignment after an insertion, while content-defined boundaries
survive it.

The gear hash rolls one table lookup + shift per byte; a boundary is cut
where the hash's top bits are zero (expected chunk length = ``avg_size``),
clamped to [min_size, max_size].
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .fixed import Chunk, fingerprint

#: Gear table: 256 pseudo-random 64-bit constants (fixed seed → stable
#: boundaries across runs and machines).
_GEAR_RNG = random.Random("repro-gear-table")
_GEAR = tuple(_GEAR_RNG.getrandbits(64) for _ in range(256))
_MASK64 = (1 << 64) - 1

DEFAULT_MIN = 2 * 1024
DEFAULT_AVG = 8 * 1024
DEFAULT_MAX = 64 * 1024


def _boundary_mask(avg_size: int) -> int:
    """Low-bits mask giving an expected chunk length of ``avg_size``.

    The ``fp = (fp << 1) + gear[b]`` accumulator concentrates its *high*
    bits around twice the gear table's mean, so the uniformly distributed
    low bits must carry the boundary test (the classic gear-hash pitfall).
    """
    bits = max(avg_size.bit_length() - 1, 1)
    return (1 << bits) - 1


def cdc_spans(data: bytes,
              min_size: int = DEFAULT_MIN,
              avg_size: int = DEFAULT_AVG,
              max_size: int = DEFAULT_MAX) -> List[Tuple[int, int]]:
    """(offset, length) spans with content-defined boundaries.

    Boundaries depend only on a sliding window of content, so inserting or
    deleting bytes shifts at most the chunks covering the edit — the
    property fixed-size chunking lacks.
    """
    if not 0 < min_size <= avg_size <= max_size:
        raise ValueError("need 0 < min_size <= avg_size <= max_size")
    n = len(data)
    if n == 0:
        return [(0, 0)]
    mask = _boundary_mask(avg_size)
    gear = _GEAR
    spans = []
    start = 0
    fp = 0
    position = 0
    while position < n:
        fp = ((fp << 1) + gear[data[position]]) & _MASK64
        position += 1
        length = position - start
        if length >= max_size or (length >= min_size and (fp & mask) == 0):
            spans.append((start, length))
            start = position
            fp = 0
    if start < n:
        spans.append((start, n - start))
    return spans


def cdc_chunks(data: bytes,
               min_size: int = DEFAULT_MIN,
               avg_size: int = DEFAULT_AVG,
               max_size: int = DEFAULT_MAX,
               keep_data: bool = True) -> List[Chunk]:
    """Fingerprinted content-defined chunks."""
    chunks = []
    for index, (offset, length) in enumerate(
            cdc_spans(data, min_size, avg_size, max_size)):
        piece = data[offset:offset + length]
        chunks.append(Chunk(index=index, offset=offset, length=length,
                            digest=fingerprint(piece),
                            data=piece if keep_data else b""))
    return chunks


def shared_bytes(old: bytes, new: bytes, chunker) -> int:
    """Bytes of ``new`` whose chunks already exist in ``old``'s chunk set.

    ``chunker`` maps bytes → list of Chunk; works for both fixed and CDC
    chunkers, which is what the dedup-resilience ablation compares.
    """
    old_digests = {chunk.digest for chunk in chunker(old)}
    return sum(chunk.length for chunk in chunker(new)
               if chunk.digest in old_digests)

"""Fixed-size chunking and fingerprinting.

The paper divides files into blocks "in a simple and natural way, that is to
say, by starting from the head of a file with a fixed block size" (§5.2) —
deliberately *not* content-defined chunking.  Both the dedup index and the
Dropbox-style chunked upload protocol build on these helpers.
"""

from .cdc import cdc_chunks, cdc_spans, shared_bytes
from .fixed import Chunk, chunk_data, chunk_spans, fingerprint, fingerprints

__all__ = ["Chunk", "cdc_chunks", "cdc_spans", "chunk_data", "chunk_spans",
           "fingerprint", "fingerprints", "shared_bytes"]

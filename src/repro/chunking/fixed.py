"""Head-aligned fixed-size chunker with MD5 fingerprints."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Chunk:
    """One fixed-size chunk of a file."""

    index: int
    offset: int
    length: int
    digest: str
    data: bytes = b""

    def __post_init__(self) -> None:
        if self.data and len(self.data) != self.length:
            raise ValueError("chunk data length disagrees with declared length")


def fingerprint(data: bytes) -> str:
    """MD5 hexdigest — the fingerprint function the paper's trace records."""
    return hashlib.md5(data).hexdigest()


def chunk_spans(size: int, chunk_size: int) -> List[Tuple[int, int]]:
    """(offset, length) spans covering ``size`` bytes with fixed chunks.

    An empty file still yields one empty span so it has a fingerprint.
    """
    if chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    if size < 0:
        raise ValueError("size must be non-negative")
    if size == 0:
        return [(0, 0)]
    return [
        (offset, min(chunk_size, size - offset))
        for offset in range(0, size, chunk_size)
    ]


def chunk_data(data: bytes, chunk_size: int, keep_data: bool = True) -> List[Chunk]:
    """Split ``data`` into fingerprinted chunks."""
    chunks = []
    for index, (offset, length) in enumerate(chunk_spans(len(data), chunk_size)):
        piece = data[offset:offset + length]
        chunks.append(Chunk(
            index=index,
            offset=offset,
            length=length,
            digest=fingerprint(piece),
            data=piece if keep_data else b"",
        ))
    return chunks


def fingerprints(data: bytes, chunk_size: int) -> List[str]:
    """Just the per-chunk digests (what a dedup negotiation sends)."""
    return [chunk.digest for chunk in chunk_data(data, chunk_size, keep_data=False)]

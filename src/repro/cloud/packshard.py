"""Packed-shard containers — the third storage backend.

The paper's trace is dominated by small files (77% under 100 KB), so when
every chunk becomes its own REST object (:mod:`repro.cloud.midlayer`) the
request *count* — not the payload — dominates the provider-side bill.  The
DES storage-efficiency literature answers with tight-packed containers and
algorithmic placement: units are appended into a small, fixed number of
shard containers chosen by ``shard = f(digest)``, turning millions of
objects into tens of containers and collapsing per-object API operations
by orders of magnitude.

:class:`PackShardStore` implements that idea over the same full-file
:class:`~repro.cloud.object_store.ObjectStore` contract the other backends
use, plus the one extra REST primitive real stores offer: ranged GET
(:meth:`ObjectStore.get_range`).  Mechanics:

* ``store(data)`` buffers the unit in memory under its placement slot —
  **zero REST ops**.  A slot whose buffer reaches the container size target
  seals itself: one PUT writes the concatenated units plus a
  length-prefixed JSON manifest trailer (the manifest bytes are part of
  the storage bill, not hidden metadata).
* ``flush()`` seals every dirty slot — the server calls it at commit time
  so durability matches the other backends' semantics.
* Reads resolve unit keys through the in-memory shard manifests and issue
  ranged GETs; ``fetch_many`` coalesces contiguous units of the same
  container into a single range request.
* ``delete`` marks garbage in the container's manifest.  When a container's
  garbage fraction crosses the configured threshold it is compacted: one
  whole-container GET, survivors re-buffered under their original keys,
  one DELETE — costs all visible in :class:`RestOpCounters`.

Everything is deterministic: placement is a keyed blake2b of the unit
content, buffers seal in slot order, and manifests iterate sorted.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .errors import IntegrityError, NotFound, annotate_manifest_error
from .object_store import ObjectStore

_MANIFEST_LEN_BYTES = 8


def _encode_manifest(entries: List[Tuple[str, int, int]]) -> bytes:
    """Length-prefixed JSON trailer: ``[[key, offset, length], ...]``."""
    body = json.dumps(entries, separators=(",", ":")).encode("ascii")
    return body + len(body).to_bytes(_MANIFEST_LEN_BYTES, "big")


def _decode_manifest(blob: bytes) -> List[Tuple[str, int, int]]:
    """Inverse of :func:`_encode_manifest` — containers are self-describing."""
    if len(blob) < _MANIFEST_LEN_BYTES:
        raise IntegrityError("container too small to hold a manifest trailer")
    body_len = int.from_bytes(blob[-_MANIFEST_LEN_BYTES:], "big")
    start = len(blob) - _MANIFEST_LEN_BYTES - body_len
    if start < 0:
        raise IntegrityError("container manifest trailer overruns the blob")
    entries = json.loads(blob[start:start + body_len].decode("ascii"))
    return [(key, offset, length) for key, offset, length in entries]


@dataclass(frozen=True)
class PackShardConfig:
    """Tuning knobs for the packed-shard backend."""

    slots: int = 4
    target_container_bytes: int = 4 * 1024 * 1024
    compact_garbage_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ValueError("slots must be positive")
        if self.target_container_bytes <= 0:
            raise ValueError("target_container_bytes must be positive")
        if not 0.0 < self.compact_garbage_fraction <= 1.0:
            raise ValueError(
                "compact_garbage_fraction must be in (0, 1]")


@dataclass
class PackShardStats:
    """Backend-level counters mirrored into ``ServerStats``."""

    containers_sealed: int = 0
    sealed_bytes: int = 0
    manifest_bytes: int = 0
    compactions: int = 0
    compaction_copied_bytes: int = 0
    garbage_reclaimed_bytes: int = 0


@dataclass
class _Location:
    """Where a live unit lives: an open buffer or a sealed container."""

    slot: int
    container: Optional[str] = None   # None while buffered (pending)
    offset: int = 0
    length: int = 0


@dataclass
class _Container:
    """One sealed container's in-memory manifest mirror."""

    key: str
    slot: int
    payload_bytes: int
    manifest: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    garbage_bytes: int = 0


class PackShardStore:
    """Units packed into append-only shard containers by placement digest.

    Drop-in for :class:`~repro.cloud.midlayer.ChunkStore`: same
    ``store / fetch / fetch_many / delete / exists / flush /
    collect_garbage`` surface, radically different REST cost profile.
    """

    def __init__(self, objects: ObjectStore,
                 config: Optional[PackShardConfig] = None,
                 prefix: str = "shards/"):
        self.objects = objects
        self.config = config or PackShardConfig()
        self.prefix = prefix
        self.stats = PackShardStats()
        self._sequence = itertools.count()
        self._seal_sequence = itertools.count()
        self._locations: Dict[str, _Location] = {}
        self._containers: Dict[str, _Container] = {}
        # Per-slot open buffers: list of (unit_key, data) in arrival order.
        self._open: Dict[int, List[Tuple[str, bytes]]] = {}
        self._open_bytes: Dict[int, int] = {}

    # -- placement ----------------------------------------------------------

    def placement_slot(self, data: bytes) -> int:
        """Algorithmic placement: ``slot = blake2b(data) mod slots``."""
        digest = hashlib.blake2b(data, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.config.slots

    # -- writes -------------------------------------------------------------

    def store(self, data: bytes) -> str:
        """Buffer one unit; zero REST ops until the slot seals."""
        key = f"{self.prefix}u{next(self._sequence):012d}"
        slot = self.placement_slot(data)
        self._open.setdefault(slot, []).append((key, bytes(data)))
        self._open_bytes[slot] = self._open_bytes.get(slot, 0) + len(data)
        self._locations[key] = _Location(slot=slot)
        if self._open_bytes[slot] >= self.config.target_container_bytes:
            self._seal(slot)
        return key

    def flush(self) -> int:
        """Seal every dirty slot (commit-time durability); returns seals."""
        sealed = 0
        for slot in sorted(self._open):
            if self._open[slot]:
                self._seal(slot)
                sealed += 1
        return sealed

    def _seal(self, slot: int) -> None:
        """One PUT turns a slot's buffer into a sealed container."""
        units = self._open.get(slot) or []
        if not units:
            return
        container_key = (f"{self.prefix}c{slot:03d}-"
                         f"{next(self._seal_sequence):08d}")
        entries: List[Tuple[str, int, int]] = []
        offset = 0
        pieces = []
        for unit_key, data in units:
            entries.append((unit_key, offset, len(data)))
            pieces.append(data)
            offset += len(data)
        trailer = _encode_manifest(entries)
        blob = b"".join(pieces) + trailer
        self.objects.put(container_key, blob)
        container = _Container(key=container_key, slot=slot,
                               payload_bytes=offset)
        for unit_key, unit_offset, unit_length in entries:
            container.manifest[unit_key] = (unit_offset, unit_length)
            self._locations[unit_key] = _Location(
                slot=slot, container=container_key,
                offset=unit_offset, length=unit_length)
        self._containers[container_key] = container
        self._open[slot] = []
        self._open_bytes[slot] = 0
        self.stats.containers_sealed += 1
        self.stats.sealed_bytes += len(blob)
        self.stats.manifest_bytes += len(trailer)

    # -- reads --------------------------------------------------------------

    def _resolve(self, key: str) -> _Location:
        """Seal the slot if the unit is still buffered, then locate it."""
        location = self._locations.get(key)
        if location is None:
            raise NotFound(f"unit {key!r} does not exist")
        if location.container is None:
            self._seal(location.slot)
            location = self._locations[key]
        return location

    def fetch(self, key: str) -> bytes:
        """One ranged GET against the unit's container."""
        location = self._resolve(key)
        assert location.container is not None
        return self.objects.get_range(location.container, location.offset,
                                      location.length)

    def fetch_many(self, keys: List[str]) -> bytes:
        """Reassemble a file, coalescing contiguous same-container runs.

        Units that sit next to each other in the same container are fetched
        with a single range request — the read-side half of the packing win.
        Failures carry the run's first unit key and its manifest position,
        matching :meth:`ChunkStore.fetch_many` attribution semantics.
        """
        locations = []
        for position, key in enumerate(keys):
            try:
                locations.append(self._resolve(key))
            except NotFound as error:
                raise annotate_manifest_error(
                    error, key, position, len(keys)) from error
        pieces = []
        index = 0
        while index < len(locations):
            run_start = index
            first = locations[index]
            end = first.offset + first.length
            index += 1
            while (index < len(locations)
                   and locations[index].container == first.container
                   and locations[index].offset == end):
                end += locations[index].length
                index += 1
            assert first.container is not None
            try:
                pieces.append(self.objects.get_range(
                    first.container, first.offset, end - first.offset))
            except (IntegrityError, NotFound) as error:
                raise annotate_manifest_error(
                    error, keys[run_start], run_start, len(keys)) from error
        return b"".join(pieces)

    def exists(self, key: str) -> bool:
        return key in self._locations

    # -- deletes and compaction --------------------------------------------

    def delete(self, key: str) -> None:
        """Drop a buffered unit, or mark a sealed one as garbage."""
        location = self._locations.get(key)
        if location is None:
            raise NotFound(f"unit {key!r} does not exist")
        del self._locations[key]
        if location.container is None:
            buffer = self._open[location.slot]
            for index, (unit_key, data) in enumerate(buffer):
                if unit_key == key:
                    del buffer[index]
                    self._open_bytes[location.slot] -= len(data)
                    break
            return
        container = self._containers[location.container]
        del container.manifest[key]
        container.garbage_bytes += location.length
        self._maybe_compact(container)

    def collect_garbage(self, live: Iterable[str]) -> int:
        """Mark every non-live unit as garbage — zero LIST ops.

        The per-shard manifests are authoritative, so garbage collection
        never has to enumerate the REST namespace; compaction fires as
        thresholds are crossed.
        """
        live = set(live)
        removed = 0
        for key in sorted(self._locations):
            if key not in live:
                self.delete(key)
                removed += 1
        return removed

    def _maybe_compact(self, container: _Container) -> None:
        if not container.manifest:
            self._drop_container(container)
            return
        threshold = (self.config.compact_garbage_fraction
                     * container.payload_bytes)
        if container.garbage_bytes >= threshold:
            self._compact(container)

    def _drop_container(self, container: _Container) -> None:
        """Every unit is garbage: one DELETE reclaims the whole container."""
        self.objects.delete(container.key)
        del self._containers[container.key]
        self.stats.garbage_reclaimed_bytes += container.garbage_bytes

    def _compact(self, container: _Container) -> None:
        """GET the container, re-buffer survivors, DELETE the old object."""
        blob = self.objects.get(container.key)
        survivors = sorted(container.manifest.items(),
                           key=lambda item: item[1][0])
        copied = 0
        slot = container.slot
        for unit_key, (offset, length) in survivors:
            data = blob[offset:offset + length]
            self._open.setdefault(slot, []).append((unit_key, data))
            self._open_bytes[slot] = self._open_bytes.get(slot, 0) + length
            self._locations[unit_key] = _Location(slot=slot)
            copied += length
        self.objects.delete(container.key)
        del self._containers[container.key]
        self.stats.compactions += 1
        self.stats.compaction_copied_bytes += copied
        self.stats.garbage_reclaimed_bytes += container.garbage_bytes
        if self._open_bytes.get(slot, 0) >= self.config.target_container_bytes:
            self._seal(slot)

"""RESTful object store — the Amazon-S3-class substrate.

The paper stresses that "most of today's cloud storage services are built on
top of RESTful infrastructure ... that typically only support data access
operations at the full-file level" (§4.3).  This store enforces exactly that
contract: whole-object PUT / GET / DELETE / HEAD / LIST, nothing else.  Any
finer-grained behaviour (chunks, deltas, dedup) must be layered on top — see
:mod:`repro.cloud.midlayer` — which is precisely the architectural point the
paper makes about implementing incremental data sync.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .errors import IntegrityError, NotFound

#: S3-style LIST page size: one LIST op is charged per 1000 keys returned.
LIST_PAGE_SIZE = 1000


@dataclass
class ObjectRecord:
    """One stored object plus bookkeeping."""

    key: str
    data: bytes
    etag: str
    created_at: float
    put_count: int = 1

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class RestOpCounters:
    """REST verbs issued against the store — the mid-layer's cost ledger.

    The paper notes IDS requires transforming MODIFY into GET + PUT + DELETE;
    these counters make that transformation observable in tests and benches.
    """

    put: int = 0
    get: int = 0
    delete: int = 0
    head: int = 0
    list: int = 0
    put_bytes: int = 0
    get_bytes: int = 0
    delete_bytes: int = 0
    overwritten_bytes: int = 0

    def total_ops(self) -> int:
        return self.put + self.get + self.delete + self.head + self.list

    @property
    def reclaimed_bytes(self) -> int:
        """Bytes displaced from storage by DELETEs and overwriting PUTs.

        Lifetime conservation: ``put_bytes - reclaimed_bytes`` equals the
        store's current ``stored_bytes`` — asserted by
        :func:`repro.obs.audit.verify_rest_ledger`.
        """
        return self.delete_bytes + self.overwritten_bytes


class ObjectStore:
    """In-memory full-file object store with S3-like semantics."""

    def __init__(self) -> None:
        self._objects: Dict[str, ObjectRecord] = {}
        self.ops = RestOpCounters()
        self._clock = 0.0

    def set_time(self, now: float) -> None:
        """Let the simulation clock stamp object creation times."""
        self._clock = now

    # -- REST verbs --------------------------------------------------------

    def put(self, key: str, data: bytes) -> ObjectRecord:
        """Store a whole object (create or full overwrite)."""
        etag = hashlib.md5(data).hexdigest()
        existing = self._objects.get(key)
        record = ObjectRecord(
            key=key,
            data=bytes(data),
            etag=etag,
            created_at=self._clock,
            put_count=(existing.put_count + 1) if existing else 1,
        )
        self._objects[key] = record
        self.ops.put += 1
        self.ops.put_bytes += len(data)
        if existing is not None:
            self.ops.overwritten_bytes += existing.size
        return record

    def get(self, key: str) -> bytes:
        """Fetch a whole object; verifies the stored digest on the way out."""
        record = self._objects.get(key)
        if record is None:
            raise NotFound(f"object {key!r} does not exist")
        self.ops.get += 1
        self.ops.get_bytes += record.size
        if hashlib.md5(record.data).hexdigest() != record.etag:
            raise IntegrityError(f"object {key!r} failed its digest check")
        return record.data

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        """Ranged GET — one GET op, only the requested bytes on the wire.

        This is the REST primitive packed-shard containers rely on
        (:mod:`repro.cloud.packshard`): many logical units live inside one
        object, and readers fetch ``[offset, offset + length)`` slices.  The
        whole stored object is still digest-verified — corruption anywhere
        in the container fails every ranged read, which is exactly the
        blast-radius trade-off DESIGN.md documents for this backend.
        """
        record = self._objects.get(key)
        if record is None:
            raise NotFound(f"object {key!r} does not exist")
        if offset < 0 or length < 0:
            raise ValueError("range offset and length must be non-negative")
        if offset > record.size:
            raise ValueError(
                f"range offset {offset} beyond object {key!r} "
                f"size {record.size}")
        data = record.data[offset:offset + length]
        self.ops.get += 1
        self.ops.get_bytes += len(data)
        if hashlib.md5(record.data).hexdigest() != record.etag:
            raise IntegrityError(f"object {key!r} failed its digest check")
        return data

    def delete(self, key: str) -> None:
        record = self._objects.get(key)
        if record is None:
            raise NotFound(f"object {key!r} does not exist")
        del self._objects[key]
        self.ops.delete += 1
        self.ops.delete_bytes += record.size

    def head(self, key: str) -> Optional[ObjectRecord]:
        """Metadata-only probe; returns None instead of raising."""
        self.ops.head += 1
        return self._objects.get(key)

    def list_keys(self, prefix: str = "") -> List[str]:
        """Enumerate keys; cost is paginated S3-style.

        A real LIST returns at most :data:`LIST_PAGE_SIZE` keys per request,
        so enumerating N keys costs ``ceil(N / page)`` ops (minimum one —
        an empty listing is still a round trip).  Backends with millions of
        per-chunk objects pay for enumeration; packed shards do not.
        """
        keys = sorted(k for k in self._objects if k.startswith(prefix))
        pages = -(-len(keys) // LIST_PAGE_SIZE)
        self.ops.list += pages if pages > 0 else 1
        return keys

    # -- accounting ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[ObjectRecord]:
        return iter(self._objects.values())

    @property
    def stored_bytes(self) -> int:
        """Physical bytes currently held (the provider's storage bill)."""
        return sum(record.size for record in self._objects.values())

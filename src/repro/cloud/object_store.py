"""RESTful object store — the Amazon-S3-class substrate.

The paper stresses that "most of today's cloud storage services are built on
top of RESTful infrastructure ... that typically only support data access
operations at the full-file level" (§4.3).  This store enforces exactly that
contract: whole-object PUT / GET / DELETE / HEAD / LIST, nothing else.  Any
finer-grained behaviour (chunks, deltas, dedup) must be layered on top — see
:mod:`repro.cloud.midlayer` — which is precisely the architectural point the
paper makes about implementing incremental data sync.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .errors import IntegrityError, NotFound


@dataclass
class ObjectRecord:
    """One stored object plus bookkeeping."""

    key: str
    data: bytes
    etag: str
    created_at: float
    put_count: int = 1

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class RestOpCounters:
    """REST verbs issued against the store — the mid-layer's cost ledger.

    The paper notes IDS requires transforming MODIFY into GET + PUT + DELETE;
    these counters make that transformation observable in tests and benches.
    """

    put: int = 0
    get: int = 0
    delete: int = 0
    head: int = 0
    list: int = 0
    put_bytes: int = 0
    get_bytes: int = 0

    def total_ops(self) -> int:
        return self.put + self.get + self.delete + self.head + self.list


class ObjectStore:
    """In-memory full-file object store with S3-like semantics."""

    def __init__(self) -> None:
        self._objects: Dict[str, ObjectRecord] = {}
        self.ops = RestOpCounters()
        self._clock = 0.0

    def set_time(self, now: float) -> None:
        """Let the simulation clock stamp object creation times."""
        self._clock = now

    # -- REST verbs --------------------------------------------------------

    def put(self, key: str, data: bytes) -> ObjectRecord:
        """Store a whole object (create or full overwrite)."""
        etag = hashlib.md5(data).hexdigest()
        existing = self._objects.get(key)
        record = ObjectRecord(
            key=key,
            data=bytes(data),
            etag=etag,
            created_at=self._clock,
            put_count=(existing.put_count + 1) if existing else 1,
        )
        self._objects[key] = record
        self.ops.put += 1
        self.ops.put_bytes += len(data)
        return record

    def get(self, key: str) -> bytes:
        """Fetch a whole object; verifies the stored digest on the way out."""
        record = self._objects.get(key)
        if record is None:
            raise NotFound(f"object {key!r} does not exist")
        self.ops.get += 1
        self.ops.get_bytes += record.size
        if hashlib.md5(record.data).hexdigest() != record.etag:
            raise IntegrityError(f"object {key!r} failed its digest check")
        return record.data

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise NotFound(f"object {key!r} does not exist")
        del self._objects[key]
        self.ops.delete += 1

    def head(self, key: str) -> Optional[ObjectRecord]:
        """Metadata-only probe; returns None instead of raising."""
        self.ops.head += 1
        return self._objects.get(key)

    def list_keys(self, prefix: str = "") -> List[str]:
        self.ops.list += 1
        return sorted(k for k in self._objects if k.startswith(prefix))

    # -- accounting ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[ObjectRecord]:
        return iter(self._objects.values())

    @property
    def stored_bytes(self) -> int:
        """Physical bytes currently held (the provider's storage bill)."""
        return sum(record.size for record in self._objects.values())

"""The chunk mid-layer between sync semantics and the RESTful store.

Footnote 4 of the paper describes the two known ways to make incremental
sync work over full-file REST storage: transform MODIFY into GET + PUT +
DELETE, or "store every chunk of a file as a separate data object" (the
Cumulus approach).  :class:`ChunkStore` implements the latter: every chunk
becomes one REST object, so every chunk operation is visible in the object
store's :class:`~repro.cloud.object_store.RestOpCounters`.
"""

from __future__ import annotations

import itertools
from typing import List

from .object_store import ObjectStore


class ChunkStore:
    """Content chunks stored as individual full-file REST objects."""

    def __init__(self, objects: ObjectStore, prefix: str = "chunks/"):
        self.objects = objects
        self.prefix = prefix
        self._sequence = itertools.count()

    def store(self, data: bytes) -> str:
        """PUT one chunk as a fresh object; returns its key."""
        key = f"{self.prefix}{next(self._sequence):012d}"
        self.objects.put(key, data)
        return key

    def fetch(self, key: str) -> bytes:
        """GET one chunk."""
        return self.objects.get(key)

    def fetch_many(self, keys: List[str]) -> bytes:
        """Reassemble a file from its manifest order."""
        return b"".join(self.objects.get(key) for key in keys)

    def delete(self, key: str) -> None:
        self.objects.delete(key)

    def exists(self, key: str) -> bool:
        return key in self.objects

"""The chunk mid-layer between sync semantics and the RESTful store.

Footnote 4 of the paper describes the two known ways to make incremental
sync work over full-file REST storage: transform MODIFY into GET + PUT +
DELETE, or "store every chunk of a file as a separate data object" (the
Cumulus approach).  :class:`ChunkStore` implements the latter: every chunk
becomes one REST object, so every chunk operation is visible in the object
store's :class:`~repro.cloud.object_store.RestOpCounters`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List

from .errors import IntegrityError, NotFound, annotate_manifest_error
from .object_store import ObjectStore


class ChunkStore:
    """Content chunks stored as individual full-file REST objects."""

    def __init__(self, objects: ObjectStore, prefix: str = "chunks/"):
        self.objects = objects
        self.prefix = prefix
        self._sequence = itertools.count()

    def store(self, data: bytes) -> str:
        """PUT one chunk as a fresh object; returns its key."""
        key = f"{self.prefix}{next(self._sequence):012d}"
        self.objects.put(key, data)
        return key

    def fetch(self, key: str) -> bytes:
        """GET one chunk."""
        return self.objects.get(key)

    def fetch_many(self, keys: List[str]) -> bytes:
        """Reassemble a file from its manifest order.

        A failure mid-manifest is re-raised annotated with the failing key
        and its position, so corruption is attributable instead of being
        swallowed into an anonymous join.
        """
        pieces = []
        for position, key in enumerate(keys):
            try:
                pieces.append(self.objects.get(key))
            except (IntegrityError, NotFound) as error:
                raise annotate_manifest_error(
                    error, key, position, len(keys)) from error
        return b"".join(pieces)

    def delete(self, key: str) -> None:
        self.objects.delete(key)

    def exists(self, key: str) -> bool:
        return key in self.objects

    def flush(self) -> int:
        """Nothing is buffered — every chunk was PUT eagerly at store()."""
        return 0

    def collect_garbage(self, live: Iterable[str]) -> int:
        """Delete stored chunks whose keys are not in ``live``.

        One paginated LIST enumerates the chunk namespace, then one DELETE
        per dead chunk — the per-object cost profile the packed-shard
        backend exists to avoid.
        """
        live = set(live)
        removed = 0
        for key in self.objects.list_keys(self.prefix):
            if key not in live:
                self.delete(key)
                removed += 1
        return removed

"""Exceptions raised by the simulated cloud back-end."""

from __future__ import annotations

from typing import Optional


class CloudError(Exception):
    """Base class for cloud-side failures."""


class TransientError(CloudError):
    """A temporary, retryable failure (brownout, throttling).

    ``retry_at`` is the earliest virtual time a retry can succeed (the end
    of the fault window), when the service discloses it.  ``elapsed`` is
    filled in by the client with the wall-clock cost of the failed attempt.
    """

    def __init__(self, message: str = "", retry_at: Optional[float] = None):
        super().__init__(message)
        self.retry_at = retry_at
        self.elapsed = 0.0


class ServiceUnavailable(TransientError):
    """The service is down for maintenance or overloaded (HTTP 503)."""


class RateLimited(TransientError):
    """The client exceeded its request budget (HTTP 429, Retry-After)."""


class NotFound(CloudError):
    """The requested object, file, or account does not exist."""


class AlreadyExists(CloudError):
    """Create-only operation hit an existing key."""


class ConflictError(CloudError):
    """Optimistic-concurrency commit lost the race."""


class QuotaExceeded(CloudError):
    """Account storage quota would be exceeded by the operation."""


class IntegrityError(CloudError):
    """Stored data failed a digest check — corruption in the pipeline."""


def annotate_manifest_error(error: CloudError, key: str, position: int,
                            total: int) -> CloudError:
    """Rebuild ``error`` so it names the failing chunk and manifest slot.

    Multi-chunk fetches must not swallow *which* entry failed — audits need
    to attribute corruption to a specific key.  The annotated copy carries
    ``key`` and ``position`` attributes for programmatic use and keeps the
    original message.
    """
    annotated = type(error)(
        f"{error} (chunk {key!r} at manifest position "
        f"{position + 1} of {total})")
    annotated.key = key            # type: ignore[attr-defined]
    annotated.position = position  # type: ignore[attr-defined]
    return annotated

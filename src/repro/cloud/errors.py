"""Exceptions raised by the simulated cloud back-end."""

from __future__ import annotations


class CloudError(Exception):
    """Base class for cloud-side failures."""


class NotFound(CloudError):
    """The requested object, file, or account does not exist."""


class AlreadyExists(CloudError):
    """Create-only operation hit an existing key."""


class ConflictError(CloudError):
    """Optimistic-concurrency commit lost the race."""


class QuotaExceeded(CloudError):
    """Account storage quota would be exceeded by the operation."""


class IntegrityError(CloudError):
    """Stored data failed a digest check — corruption in the pipeline."""

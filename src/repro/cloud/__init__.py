"""Simulated cloud storage back end (the paper's RESTful substrate)."""

from .accounts import Account, AccountRegistry
from .dedup import DedupConfig, DedupGranularity, DedupIndex, DedupScope
from .errors import (
    AlreadyExists,
    CloudError,
    ConflictError,
    IntegrityError,
    NotFound,
    QuotaExceeded,
    RateLimited,
    ServiceUnavailable,
    TransientError,
)
from .metadata import FileEntry, FileVersion, MetadataServer
from .midlayer import ChunkStore
from .object_store import ObjectRecord, ObjectStore, RestOpCounters
from .server import CloudServer, ServerStats

__all__ = [
    "Account",
    "AccountRegistry",
    "AlreadyExists",
    "ChunkStore",
    "CloudError",
    "CloudServer",
    "ConflictError",
    "DedupConfig",
    "DedupGranularity",
    "DedupIndex",
    "DedupScope",
    "FileEntry",
    "FileVersion",
    "IntegrityError",
    "MetadataServer",
    "NotFound",
    "ObjectRecord",
    "ObjectStore",
    "QuotaExceeded",
    "RateLimited",
    "RestOpCounters",
    "ServerStats",
    "ServiceUnavailable",
    "TransientError",
]

"""Simulated cloud storage back end (the paper's RESTful substrate)."""

from .accounts import Account, AccountRegistry
from .dedup import DedupConfig, DedupGranularity, DedupIndex, DedupScope
from .errors import (
    AlreadyExists,
    CloudError,
    ConflictError,
    IntegrityError,
    NotFound,
    QuotaExceeded,
    RateLimited,
    ServiceUnavailable,
    TransientError,
    annotate_manifest_error,
)
from .metadata import FileEntry, FileVersion, MetadataServer
from .midlayer import ChunkStore
from .object_store import LIST_PAGE_SIZE, ObjectRecord, ObjectStore, \
    RestOpCounters
from .packshard import PackShardConfig, PackShardStats, PackShardStore
from .server import CloudServer, ServerStats

__all__ = [
    "Account",
    "AccountRegistry",
    "AlreadyExists",
    "ChunkStore",
    "CloudError",
    "CloudServer",
    "ConflictError",
    "DedupConfig",
    "DedupGranularity",
    "DedupIndex",
    "DedupScope",
    "FileEntry",
    "FileVersion",
    "IntegrityError",
    "LIST_PAGE_SIZE",
    "MetadataServer",
    "NotFound",
    "ObjectRecord",
    "ObjectStore",
    "PackShardConfig",
    "PackShardStats",
    "PackShardStore",
    "QuotaExceeded",
    "RateLimited",
    "RestOpCounters",
    "ServerStats",
    "ServiceUnavailable",
    "TransientError",
    "annotate_manifest_error",
]

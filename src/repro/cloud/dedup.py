"""Deduplication index: granularity × scope, as Table 9 classifies services.

The paper finds three configurations in the wild:

* no deduplication at all (Google Drive, OneDrive, Box, SugarSync);
* full-file dedup, same-user *and* cross-user (Ubuntu One);
* 4 MB block dedup same-user, none cross-user (Dropbox).

:class:`DedupConfig` expresses any point in that space; :class:`DedupIndex`
maps fingerprints to stored chunk keys within the configured scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class DedupGranularity(enum.Enum):
    NONE = "none"
    FULL_FILE = "full-file"
    BLOCK = "block"


class DedupScope(enum.Enum):
    SAME_USER = "same-user"
    CROSS_USER = "cross-user"


@dataclass(frozen=True)
class DedupConfig:
    """A service's deduplication design choice."""

    granularity: DedupGranularity = DedupGranularity.NONE
    scope: DedupScope = DedupScope.SAME_USER
    block_size: int = 4 * 1024 * 1024  # Dropbox's observed 4 MB

    def __post_init__(self) -> None:
        if self.granularity is DedupGranularity.BLOCK and self.block_size <= 0:
            raise ValueError("block dedup requires a positive block size")

    @property
    def enabled(self) -> bool:
        return self.granularity is not DedupGranularity.NONE

    @property
    def unit_size(self) -> Optional[int]:
        """Negotiation unit in bytes, or None for whole files."""
        if self.granularity is DedupGranularity.BLOCK:
            return self.block_size
        return None

    @staticmethod
    def none() -> "DedupConfig":
        return DedupConfig(DedupGranularity.NONE)

    @staticmethod
    def full_file(cross_user: bool = False) -> "DedupConfig":
        scope = DedupScope.CROSS_USER if cross_user else DedupScope.SAME_USER
        return DedupConfig(DedupGranularity.FULL_FILE, scope)

    @staticmethod
    def block(block_size: int, cross_user: bool = False) -> "DedupConfig":
        scope = DedupScope.CROSS_USER if cross_user else DedupScope.SAME_USER
        return DedupConfig(DedupGranularity.BLOCK, scope, block_size)


class DedupIndex:
    """Fingerprint → stored-chunk-key index honouring a :class:`DedupConfig`.

    Keys are partitioned per user for SAME_USER scope and shared for
    CROSS_USER scope.  With dedup disabled every lookup misses, so each
    upload stores fresh bytes — reproducing the "no dedup" services.
    """

    def __init__(self, config: DedupConfig):
        self.config = config
        self._index: Dict[Tuple[str, str], str] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, user: str, digest: str) -> Tuple[str, str]:
        if self.config.scope is DedupScope.CROSS_USER:
            return ("*", digest)
        return (user, digest)

    def lookup(self, user: str, digest: str) -> Optional[str]:
        """Stored chunk key for ``digest`` within scope, or None."""
        if not self.config.enabled:
            self.misses += 1
            return None
        found = self._index.get(self._key(user, digest))
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def register(self, user: str, digest: str, chunk_key: str) -> None:
        """Record that ``digest`` is now stored at ``chunk_key``."""
        if self.config.enabled:
            self._index[self._key(user, digest)] = chunk_key

    def forget_user(self, user: str) -> None:
        """Drop a user's private index entries (account deletion)."""
        self._index = {k: v for k, v in self._index.items() if k[0] != user}

    def __len__(self) -> int:
        return len(self._index)

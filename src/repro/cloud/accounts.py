"""User accounts and storage quotas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..units import GB
from .errors import AlreadyExists, NotFound, QuotaExceeded


@dataclass
class Account:
    """One registered user with a logical-byte quota.

    ``used_bytes`` counts logical (pre-dedup, pre-compression) bytes of all
    live head versions — the number services show users, independent of the
    provider's physical savings.
    """

    user: str
    quota_bytes: int = 15 * GB
    used_bytes: int = 0
    device_count: int = 1

    def charge(self, nbytes: int) -> None:
        if self.used_bytes + nbytes > self.quota_bytes:
            raise QuotaExceeded(
                f"{self.user}: {self.used_bytes + nbytes} would exceed quota "
                f"{self.quota_bytes}")
        self.used_bytes += nbytes

    def refund(self, nbytes: int) -> None:
        self.used_bytes = max(0, self.used_bytes - nbytes)


class AccountRegistry:
    """All accounts known to one cloud service."""

    def __init__(self) -> None:
        self._accounts: Dict[str, Account] = {}

    def register(self, user: str, quota_bytes: int = 15 * GB) -> Account:
        if user in self._accounts:
            raise AlreadyExists(f"account {user!r} already exists")
        account = Account(user=user, quota_bytes=quota_bytes)
        self._accounts[user] = account
        return account

    def ensure(self, user: str) -> Account:
        """Get or lazily create an account (experiments use this)."""
        if user not in self._accounts:
            return self.register(user)
        return self._accounts[user]

    def get(self, user: str) -> Account:
        account = self._accounts.get(user)
        if account is None:
            raise NotFound(f"account {user!r} does not exist")
        return account

    def __contains__(self, user: str) -> bool:
        return user in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

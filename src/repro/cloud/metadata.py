"""Metadata server: per-user namespaces, versions, and "fake deletion".

Experiment 2 observes that deleting a file generates negligible traffic
because "the user client just notifies the cloud to change some attributes of
f rather than remove the content", which "also facilitates users' data
recovery, such as the version rollback of a file" (§4.2).  The metadata
server reproduces this: deletion writes a tombstone version; every prior
version remains addressable for rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .errors import NotFound


@dataclass(frozen=True)
class FileVersion:
    """One committed version of a file path."""

    version: int
    size: int
    md5: str
    chunk_digests: tuple
    chunk_keys: tuple
    stored_sizes: tuple       # on-disk size per chunk (post-compression)
    committed_at: float
    deleted: bool = False

    @property
    def manifest_bytes(self) -> int:
        """Approximate serialized size of this version's manifest."""
        return 64 + 48 * len(self.chunk_digests)


@dataclass
class FileEntry:
    """A path in a user's namespace with its whole version history."""

    path: str
    versions: List[FileVersion] = field(default_factory=list)

    @property
    def head(self) -> FileVersion:
        return self.versions[-1]

    @property
    def exists(self) -> bool:
        return bool(self.versions) and not self.head.deleted


class MetadataServer:
    """Tracks every user's file tree; all mutations are append-only."""

    def __init__(self) -> None:
        self._namespaces: Dict[str, Dict[str, FileEntry]] = {}

    def _namespace(self, user: str) -> Dict[str, FileEntry]:
        return self._namespaces.setdefault(user, {})

    # -- commits ------------------------------------------------------------

    def commit(
        self,
        user: str,
        path: str,
        size: int,
        md5: str,
        chunk_digests: List[str],
        chunk_keys: List[str],
        stored_sizes: List[int],
        now: float,
    ) -> FileVersion:
        """Append a new head version for ``path``."""
        entry = self._namespace(user).setdefault(path, FileEntry(path))
        version = FileVersion(
            version=len(entry.versions) + 1,
            size=size,
            md5=md5,
            chunk_digests=tuple(chunk_digests),
            chunk_keys=tuple(chunk_keys),
            stored_sizes=tuple(stored_sizes),
            committed_at=now,
        )
        entry.versions.append(version)
        return version

    def tombstone(self, user: str, path: str, now: float) -> FileVersion:
        """The "fake deletion": attribute change only, content retained."""
        entry = self.get_entry(user, path)
        head = entry.head
        version = FileVersion(
            version=head.version + 1,
            size=0,
            md5="",
            chunk_digests=(),
            chunk_keys=(),
            stored_sizes=(),
            committed_at=now,
            deleted=True,
        )
        entry.versions.append(version)
        return version

    # -- queries ------------------------------------------------------------

    def get_entry(self, user: str, path: str) -> FileEntry:
        entry = self._namespace(user).get(path)
        if entry is None or not entry.versions:
            raise NotFound(f"{user}:{path} has no versions")
        return entry

    def head(self, user: str, path: str) -> FileVersion:
        """Current version; raises NotFound for missing or deleted files."""
        entry = self.get_entry(user, path)
        if entry.head.deleted:
            raise NotFound(f"{user}:{path} is deleted")
        return entry.head

    def version(self, user: str, path: str, number: int) -> FileVersion:
        """Any historical version — the rollback path fake deletion enables."""
        entry = self.get_entry(user, path)
        for candidate in entry.versions:
            if candidate.version == number:
                return candidate
        raise NotFound(f"{user}:{path} has no version {number}")

    def list_paths(self, user: str, include_deleted: bool = False) -> List[str]:
        return sorted(
            path for path, entry in self._namespace(user).items()
            if entry.versions and (include_deleted or not entry.head.deleted)
        )

    def purge_history(self, user: str, path: str, keep_last: int = 1) -> int:
        """Drop all but the newest ``keep_last`` versions of a path.

        The storage-cost counterpart of fake deletion: providers cap the
        rollback window to bound version storage.  Returns the number of
        versions removed.  The head version is always retained.
        """
        if keep_last < 1:
            raise ValueError("must keep at least the head version")
        entry = self.get_entry(user, path)
        removable = len(entry.versions) - keep_last
        if removable <= 0:
            return 0
        entry.versions = entry.versions[removable:]
        return removable

    def live_chunk_keys(self) -> set:
        """Chunk keys referenced by any version of any file (GC root set)."""
        keys = set()
        for namespace in self._namespaces.values():
            for entry in namespace.values():
                for version in entry.versions:
                    keys.update(version.chunk_keys)
        return keys

"""The cloud sync service: dedup negotiation, chunk upload, commits, IDS.

:class:`CloudServer` is the server half of a cloud storage service.  It wires
together the RESTful object store, the chunk mid-layer, the metadata server,
the dedup index, and the account registry, and exposes the sync-session API
the client engine drives:

* :meth:`negotiate` — fingerprint exchange (the dedup protocol);
* :meth:`upload_chunk` / :meth:`resolve` — content transfer or dedup hit;
* :meth:`commit` — append a new file version;
* :meth:`apply_delta` — the IDS mid-layer (GET + apply + PUT + DELETE);
* :meth:`apply_cdc_delta` — the same mid-layer for content-defined chunks;
* :meth:`reconcile` / :meth:`apply_reconciled` — two-round set
  reconciliation against a user-wide CDC chunk index;
* :meth:`download`, :meth:`delete_file`, :meth:`restore_version`.

Traffic is *not* metered here: bytes cross the wire in the client engine,
which meters them on its :class:`~repro.simnet.meter.TrafficMeter`.  The
server's job is semantics plus server-side cost accounting (REST ops,
stored bytes) used by the §7 tradeoff analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..chunking import cdc_chunks, fingerprint
from ..delta import CdcDelta, Delta, apply_cdc_delta as apply_cdc_stream
from ..delta import apply_delta as apply_rsync_delta
from ..simnet.faults import FaultKind
from .accounts import AccountRegistry
from .dedup import DedupConfig, DedupIndex
from .errors import IntegrityError, NotFound, RateLimited, ServiceUnavailable
from .metadata import FileVersion, MetadataServer
from .midlayer import ChunkStore
from .object_store import ObjectStore
from .packshard import PackShardConfig, PackShardStore


@dataclass
class ServerStats:
    """Server-side cost counters for tradeoff analyses (§7)."""

    chunks_received: int = 0
    bytes_received: int = 0
    dedup_bytes_saved: int = 0
    delta_applications: int = 0
    cdc_delta_applications: int = 0
    reconciliations: int = 0
    commits: int = 0
    requests_rejected: int = 0
    shards_sealed: int = 0
    shard_compactions: int = 0


class CloudServer:
    """Semantics of one cloud storage service's back end."""

    def __init__(
        self,
        dedup: Optional[DedupConfig] = None,
        storage_chunk_size: Optional[int] = None,
        name: str = "cloud",
        backend: str = "chunk",
        shard_config: Optional[PackShardConfig] = None,
    ):
        self.name = name
        self.dedup_config = dedup or DedupConfig.none()
        #: None ⇒ whole files are single REST objects; an int ⇒ files are
        #: split into objects of this size (the Cumulus-style mid-layer).
        self.storage_chunk_size = storage_chunk_size
        self.objects = ObjectStore()
        #: Storage backend behind the mid-layer interface: ``"chunk"`` is
        #: one REST object per chunk (Cumulus-style), ``"packshard"`` packs
        #: units into shard containers (see :mod:`repro.cloud.packshard`).
        self.backend = backend
        if backend == "chunk":
            self.chunks = ChunkStore(self.objects)
        elif backend == "packshard":
            self.chunks = PackShardStore(self.objects, config=shard_config)
        else:
            raise ValueError(f"unknown storage backend {backend!r}")
        self.metadata = MetadataServer()
        self.accounts = AccountRegistry()
        self.dedup = DedupIndex(self.dedup_config)
        self.stats = ServerStats()
        self.now = 0.0
        #: Optional fault injector (see :mod:`repro.simnet.faults`): during
        #: its SERVER_UNAVAILABLE / RATE_LIMIT windows the front door answers
        #: every request with a transient error instead of serving it.
        self.faults = None
        #: Per-(user, path) CDC digest index cache for set reconciliation,
        #: keyed by the head version's md5 so an unchanged file is never
        #: re-chunked across reconcile calls.
        self._cdc_index_cache: Dict[Tuple[str, str],
                                    Tuple[str, Dict[str, bytes]]] = {}
        #: Open reconciliation sessions: (user, path) -> (ordered digest
        #: manifest from round 1, digest -> bytes the server already holds).
        self._recon_sessions: Dict[Tuple[str, str],
                                   Tuple[List[str], Dict[str, bytes]]] = {}
        #: Optional trace recorder (duck-typed; see :mod:`repro.obs`).
        #: Server events are logical (dedup hits, brownout rejections) and
        #: carry no meter delta — the client side owns the wire.  With
        #: several sessions against one cloud, the last attached recorder
        #: wins; that only re-homes these zero-byte events.
        self.recorder = None

    def set_time(self, now: float) -> None:
        self.now = now
        self.objects.set_time(now)

    # -- availability (fault injection) --------------------------------------

    def attach_faults(self, injector) -> None:
        """Subject this server to a fault injector's brownout windows."""
        self.faults = injector

    def attach_recorder(self, recorder) -> None:
        """Emit dedup-hit / fault-episode trace events to ``recorder``."""
        self.recorder = recorder

    def check_available(self, now: Optional[float] = None) -> None:
        """Raise the transient error matching any brownout active at ``now``.

        Clients call this at the front of every server-bound request with
        their wire-level clock (which advances within a sync transaction);
        it defaults to the server's own coarser notion of time.
        """
        if self.faults is None:
            return
        time = self.now if now is None else now
        episode = self.faults.server_episode(time)
        if episode is None:
            return
        self.faults.note_server_fault(episode)
        self.stats.requests_rejected += 1
        if self.recorder is not None:
            self.recorder.record_span(
                "fault-episode", episode.kind.value, f"server:{self.name}",
                time, episode.end, rejected=True)
        if episode.kind is FaultKind.RATE_LIMIT:
            raise RateLimited(
                f"{self.name}: request budget exhausted until t={episode.end:.3f}s",
                retry_at=episode.end)
        raise ServiceUnavailable(
            f"{self.name}: service brownout until t={episode.end:.3f}s",
            retry_at=episode.end)

    # -- dedup negotiation ---------------------------------------------------

    def negotiate(self, user: str, digests: Sequence[str]) -> List[str]:
        """Return the digests the client must actually upload.

        With dedup disabled this is all of them; otherwise only those missing
        from the index within the configured scope.
        """
        self.accounts.ensure(user)
        missing = []
        for digest in digests:
            if self.dedup.lookup(user, digest) is None:
                missing.append(digest)
        hits = len(digests) - len(missing)
        if hits and self.recorder is not None:
            self.recorder.record_span(
                "dedup-hit", "negotiate", f"server:{self.name}",
                self.now, self.now, units=len(digests), hits=hits, user=user)
        return missing

    def resolve(self, user: str, digest: str) -> Optional[str]:
        """Chunk key for an already-stored digest within scope (no upload)."""
        return self.dedup.lookup(user, digest)

    # -- content transfer ------------------------------------------------------

    def upload_chunk(self, user: str, digest: str, data: bytes) -> str:
        """Receive one chunk, verify its fingerprint, store it, index it."""
        self.accounts.ensure(user)
        if fingerprint(data) != digest:
            raise IntegrityError("uploaded chunk does not match declared digest")
        existing = self.dedup.lookup(user, digest)
        if existing is not None:
            # Client raced a duplicate past negotiation; don't store twice.
            self.stats.dedup_bytes_saved += len(data)
            if self.recorder is not None:
                self.recorder.record_span(
                    "dedup-hit", "upload-race", f"server:{self.name}",
                    self.now, self.now, units=1, hits=1, user=user)
            return existing
        key = self.chunks.store(data)
        self.dedup.register(user, digest, key)
        self.stats.chunks_received += 1
        self.stats.bytes_received += len(data)
        return key

    # -- commits -----------------------------------------------------------

    def commit(
        self,
        user: str,
        path: str,
        size: int,
        md5: str,
        chunk_digests: Sequence[str],
        chunk_keys: Sequence[str],
        stored_sizes: Sequence[int],
    ) -> FileVersion:
        """Append a new head version referencing already-stored chunks."""
        if len(chunk_digests) != len(chunk_keys):
            raise ValueError("digest/key manifests disagree in length")
        for key in chunk_keys:
            if not self.chunks.exists(key):
                raise NotFound(f"commit references missing chunk {key}")
        account = self.accounts.ensure(user)
        previous_size = 0
        try:
            previous_size = self.metadata.head(user, path).size
        except NotFound:
            pass
        account.refund(previous_size)
        account.charge(size)
        version = self.metadata.commit(
            user, path, size, md5,
            list(chunk_digests), list(chunk_keys), list(stored_sizes), self.now)
        self.stats.commits += 1
        # Durability point: a packed-shard backend seals its open buffers
        # here so committed data is always REST-visible; the chunk backend's
        # flush is a no-op (chunks were PUT eagerly).
        self.chunks.flush()
        self._mirror_shard_stats()
        return version

    # -- the IDS mid-layer ---------------------------------------------------

    def apply_delta(self, user: str, path: str, delta: Delta,
                    expected_md5: str) -> FileVersion:
        """MODIFY transformed into GET + PUT + DELETE (§4.3).

        The client ships only the rsync delta; the mid-layer GETs the old
        content from REST objects, applies the delta, PUTs the new content,
        and DELETEs stale objects.  Every verb lands in
        ``self.objects.ops`` so the REST amplification is measurable.
        """
        head = self.metadata.head(user, path)
        old_data = self.chunks.fetch_many(list(head.chunk_keys))  # GETs
        new_data = apply_rsync_delta(old_data, delta)
        if fingerprint(new_data) != expected_md5:
            raise IntegrityError("delta application produced wrong content")
        self.stats.delta_applications += 1

        chunk_size = self.storage_chunk_size or max(len(new_data), 1)
        digests, keys, sizes = self._store_content(user, new_data, chunk_size)

        # DELETE the old version's objects that no new version references.
        new_version = self.commit(
            user, path, len(new_data), expected_md5, digests, keys, sizes)
        self._delete_stale(set(head.chunk_keys))
        return new_version

    def apply_cdc_delta(self, user: str, path: str, cdelta: CdcDelta,
                        expected_md5: str) -> FileVersion:
        """Content-defined-chunk variant of :meth:`apply_delta`.

        Same GET + apply + PUT + DELETE shape; the stream references
        byte ranges of the basis (coalesced CDC chunk matches) instead of
        fixed rsync blocks.
        """
        head = self.metadata.head(user, path)
        old_data = self.chunks.fetch_many(list(head.chunk_keys))  # GETs
        new_data = apply_cdc_stream(old_data, cdelta)
        if fingerprint(new_data) != expected_md5:
            raise IntegrityError("cdc delta application produced wrong content")
        self.stats.cdc_delta_applications += 1

        chunk_size = self.storage_chunk_size or max(len(new_data), 1)
        digests, keys, sizes = self._store_content(user, new_data, chunk_size)
        new_version = self.commit(
            user, path, len(new_data), expected_md5, digests, keys, sizes)
        self._delete_stale(set(head.chunk_keys))
        return new_version

    # -- set reconciliation ---------------------------------------------------

    def reconcile(self, user: str, path: str,
                  digests: Sequence[str]) -> List[str]:
        """Round 1 of set reconciliation: which CDC chunks must be sent?

        The client describes its new content as an ordered manifest of CDC
        chunk digests; the server answers with the subset it cannot supply
        from *any* of the user's live files.  The manifest and the resolved
        server-side bytes are parked in an open session for
        :meth:`apply_reconciled` (round 2).
        """
        self.accounts.ensure(user)
        index = self._user_cdc_index(user)
        known: Dict[str, bytes] = {}
        missing: List[str] = []
        for digest in digests:
            if digest in known:
                continue
            data = index.get(digest)
            if data is None:
                if digest not in missing:
                    missing.append(digest)
            else:
                known[digest] = data
        self._recon_sessions[(user, path)] = (list(digests), known)
        self.stats.reconciliations += 1
        return missing

    def apply_reconciled(self, user: str, path: str,
                         supplied: Dict[str, bytes],
                         expected_md5: str) -> FileVersion:
        """Round 2 of set reconciliation: splice supplied + known chunks.

        Reconstructs the new content in round-1 manifest order from the
        client's supplied chunks plus the server-resident ones, verifies
        the whole-file digest, and commits like :meth:`apply_delta`.
        """
        try:
            manifest, known = self._recon_sessions.pop((user, path))
        except KeyError:
            raise NotFound(f"no open reconciliation for {user}:{path}")
        for digest, data in supplied.items():
            if fingerprint(data) != digest:
                raise IntegrityError(
                    "reconciled chunk does not match declared digest")
        pieces: List[bytes] = []
        for digest in manifest:
            data = known.get(digest)
            if data is None:
                data = supplied.get(digest)
            if data is None:
                raise IntegrityError(
                    f"reconciliation missing chunk {digest} for {path}")
            pieces.append(data)
        new_data = b"".join(pieces)
        if fingerprint(new_data) != expected_md5:
            raise IntegrityError("reconciliation produced wrong content")

        old_keys: set = set()
        try:
            old_keys = set(self.metadata.head(user, path).chunk_keys)
        except NotFound:
            pass
        chunk_size = self.storage_chunk_size or max(len(new_data), 1)
        digests, keys, sizes = self._store_content(user, new_data, chunk_size)
        new_version = self.commit(
            user, path, len(new_data), expected_md5, digests, keys, sizes)
        if old_keys:
            self._delete_stale(old_keys)
        return new_version

    def _user_cdc_index(self, user: str) -> Dict[str, bytes]:
        """Digest -> bytes over the CDC chunks of the user's live heads.

        Rebuilt lazily per path, cached against the head md5 so repeated
        reconciles only re-chunk files that actually changed.
        """
        index: Dict[str, bytes] = {}
        live_paths = set(self.metadata.list_paths(user))
        for cached_key in [key for key in self._cdc_index_cache
                           if key[0] == user and key[1] not in live_paths]:
            del self._cdc_index_cache[cached_key]
        for a_path in sorted(live_paths):
            head = self.metadata.head(user, a_path)
            cached = self._cdc_index_cache.get((user, a_path))
            if cached is not None and cached[0] == head.md5:
                per_file = cached[1]
            else:
                content = self.chunks.fetch_many(list(head.chunk_keys))
                per_file = {chunk.digest: chunk.data
                            for chunk in cdc_chunks(content)}
                self._cdc_index_cache[(user, a_path)] = (head.md5, per_file)
            index.update(per_file)
        return index

    def _store_content(self, user: str, data: bytes, chunk_size: int):
        """Chunk, dedup, and PUT content server-side (mid-layer internals)."""
        digests: List[str] = []
        keys: List[str] = []
        sizes: List[int] = []
        for offset in range(0, max(len(data), 1), chunk_size):
            piece = data[offset:offset + chunk_size]
            digest = fingerprint(piece)
            key = self.dedup.lookup(user, digest)
            if key is None:
                key = self.chunks.store(piece)
                self.dedup.register(user, digest, key)
            digests.append(digest)
            keys.append(key)
            sizes.append(len(piece))
        return digests, keys, sizes

    def _delete_stale(self, candidate_keys: set) -> None:
        live = self.metadata.live_chunk_keys()
        for key in sorted(candidate_keys - live):
            if self.chunks.exists(key):
                self.chunks.delete(key)
        self._mirror_shard_stats()

    def _mirror_shard_stats(self) -> None:
        """Copy backend counters into ServerStats (packshard only)."""
        stats = getattr(self.chunks, "stats", None)
        if stats is not None:
            self.stats.shards_sealed = stats.containers_sealed
            self.stats.shard_compactions = stats.compactions

    # -- reads, deletes, rollback ---------------------------------------------

    def download(self, user: str, path: str) -> bytes:
        """Reassemble the head version's content (GET per chunk)."""
        head = self.metadata.head(user, path)
        data = self.chunks.fetch_many(list(head.chunk_keys))
        if head.md5 and fingerprint(data) != head.md5:
            raise IntegrityError(f"{user}:{path} failed reassembly digest check")
        return data

    def head_version(self, user: str, path: str) -> int:
        """Version number of the path's newest metadata entry.

        Tombstones count (a deletion *is* a newer version for notification
        ordering); a never-committed path is version 0.  Followers use this
        to suppress re-downloads: a fetch that already delivered head
        version v satisfies every notification for versions <= v.
        """
        try:
            entry = self.metadata.get_entry(user, path)
        except NotFound:
            return 0
        return entry.head.version

    def delete_file(self, user: str, path: str) -> FileVersion:
        """Fake deletion: tombstone the path, retain every stored version."""
        head = self.metadata.head(user, path)
        self.accounts.get(user).refund(head.size)
        return self.metadata.tombstone(user, path, self.now)

    def rename_file(self, user: str, old_path: str, new_path: str) -> FileVersion:
        """Move a file: a metadata-only commit referencing the same chunks.

        No content moves; the old path gets a tombstone (history preserved)
        and the new path's first version points at the existing chunk keys.
        """
        head = self.metadata.head(user, old_path)
        version = self.metadata.commit(
            user, new_path, head.size, head.md5,
            list(head.chunk_digests), list(head.chunk_keys),
            list(head.stored_sizes), self.now)
        self.metadata.tombstone(user, old_path, self.now)
        return version

    def restore_version(self, user: str, path: str, number: int) -> FileVersion:
        """Version rollback — the recovery feature fake deletion enables."""
        target = self.metadata.version(user, path, number)
        if target.deleted:
            raise NotFound(f"version {number} is a tombstone")
        account = self.accounts.ensure(user)
        try:
            account.refund(self.metadata.head(user, path).size)
        except NotFound:
            pass
        account.charge(target.size)
        return self.metadata.commit(
            user, path, target.size, target.md5,
            list(target.chunk_digests), list(target.chunk_keys),
            list(target.stored_sizes), self.now)

    def purge_history(self, user: str, path: str, keep_last: int = 1) -> int:
        """Cap a path's version history, then GC unreferenced chunks."""
        removed_versions = self.metadata.purge_history(user, path, keep_last)
        if removed_versions:
            self.collect_garbage()
        return removed_versions

    def collect_garbage(self) -> int:
        """Remove stored units no version references; returns count.

        Delegates to the backend: the chunk store pays a paginated LIST
        plus one DELETE per dead object, while the packed-shard store
        resolves garbage through its in-memory manifests and reclaims via
        compaction.
        """
        removed = self.chunks.collect_garbage(self.metadata.live_chunk_keys())
        self._mirror_shard_stats()
        return removed

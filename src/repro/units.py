"""Size, rate, and time unit helpers shared across the library.

The paper (and the rsync / dedup literature it builds on) uses binary
multiples: ``1 KB == 1024 bytes``.  All byte quantities in this code base
follow that convention.  Bandwidth is expressed in bits per second, matching
how the paper reports link speeds ("20 Mbps", "1.6 Mbps").
"""

from __future__ import annotations

B = 1
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

Kbps = 1_000
Mbps = 1_000_000

MSEC = 1e-3
SEC = 1.0

_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": KB,
    "KB": KB,
    "M": MB,
    "MB": MB,
    "G": GB,
    "GB": GB,
}


def parse_size(text: str) -> int:
    """Parse a human-style size string such as ``"10M"`` or ``"1 KB"``.

    >>> parse_size("10M")
    10485760
    >>> parse_size("1")
    1
    """
    cleaned = text.strip().upper().replace(" ", "")
    index = len(cleaned)
    while index > 0 and not cleaned[index - 1].isdigit():
        index -= 1
    number, suffix = cleaned[:index], cleaned[index:]
    if not number or suffix not in _SUFFIXES:
        raise ValueError(f"unparseable size: {text!r}")
    return int(number) * _SUFFIXES[suffix]


def fmt_size(nbytes: float) -> str:
    """Render a byte count the way the paper's tables do (e.g. ``1.28 M``)."""
    value = float(nbytes)
    for unit, scale in (("G", GB), ("M", MB), ("K", KB)):
        if value >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value:.0f} B"


def fmt_rate(bps: float) -> str:
    """Render a bandwidth in the paper's Mbps/Kbps style."""
    if bps >= Mbps:
        return f"{bps / Mbps:.1f} Mbps"
    return f"{bps / Kbps:.0f} Kbps"

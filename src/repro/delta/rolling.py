"""rsync's weak rolling checksum (the Adler-32 variant from the tech report).

The incremental data sync (IDS) mechanism the paper observes in Dropbox and
SugarSync PC clients "works according to the rsync algorithm" (§4.3).  This
module implements the weak checksum exactly as rsync defines it:

    a(k, l) = sum(X_i)            mod 2^16     for i in [k, l]
    b(k, l) = sum((l - i + 1)·X_i) mod 2^16
    s(k, l) = a + 2^16 · b

with the O(1) rolling update that lets the checksum slide one byte at a time.
"""

from __future__ import annotations

import numpy as np

_M16 = 0xFFFF
#: Below this window size the pure-Python loop beats numpy's setup cost.
_VECTOR_THRESHOLD = 64


def _sums(data: bytes) -> "tuple[int, int]":
    """(a, b) component sums of the weak checksum, vectorised when large."""
    length = len(data)
    if length >= _VECTOR_THRESHOLD:
        arr = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
        a = int(arr.sum())
        b = int(np.dot(np.arange(length, 0, -1, dtype=np.uint64), arr))
        return a & _M16, b & _M16
    a = 0
    b = 0
    for index, byte in enumerate(data):
        a += byte
        b += (length - index) * byte
    return a & _M16, b & _M16


def weak_checksum(data: bytes) -> int:
    """Compute the weak checksum of a whole block."""
    a, b = _sums(data)
    return (b << 16) | a


class RollingChecksum:
    """Incrementally maintained weak checksum over a sliding window.

    >>> rc = RollingChecksum(b"abcd")
    >>> rc.roll(ord("a"), ord("e"))  # window becomes b"bcde"
    >>> rc.digest == weak_checksum(b"bcde")
    True
    """

    __slots__ = ("a", "b", "window_len")

    def __init__(self, window: bytes):
        self.window_len = len(window)
        self.a, self.b = _sums(window)

    @property
    def digest(self) -> int:
        return (self.b << 16) | self.a

    def roll(self, out_byte: int, in_byte: int) -> None:
        """Slide the window one byte: drop ``out_byte``, take in ``in_byte``."""
        self.a = (self.a - out_byte + in_byte) & _M16
        self.b = (self.b - self.window_len * out_byte + self.a) & _M16

    def roll_out(self, out_byte: int) -> None:
        """Shrink the window from the left (used at end-of-file tails)."""
        self.a = (self.a - out_byte) & _M16
        self.b = (self.b - self.window_len * out_byte) & _M16
        self.window_len -= 1

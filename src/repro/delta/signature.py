"""Block signatures for the rsync algorithm.

The receiver (here: the client's shadow copy of the cloud file) splits the
basis file into fixed-size blocks and publishes, per block, a weak rolling
checksum plus a strong hash.  Signature *wire size* accounting matches the
rsync protocol: 4 bytes weak + truncated strong hash per block.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .rolling import weak_checksum

#: rsync's recommended default block size range is 700 B – 16 KB; the paper
#: estimates Dropbox's IDS granularity at ~10 KB, which we take as default.
DEFAULT_BLOCK_SIZE = 10 * 1024

#: Wire bytes per signature entry: 4 (weak) + 8 (truncated strong).
SIGNATURE_ENTRY_BYTES = 12


def strong_hash(data: bytes) -> bytes:
    """Strong per-block hash (MD5, as in rsync ≥3.0)."""
    return hashlib.md5(data).digest()


@dataclass
class BlockSignature:
    """Signature of one fixed-size block of the basis file."""

    index: int
    weak: int
    strong: bytes
    length: int


@dataclass
class FileSignature:
    """All block signatures of a basis file, indexed for O(1) weak lookup."""

    block_size: int
    file_length: int
    blocks: List[BlockSignature]
    _by_weak: Dict[int, List[BlockSignature]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._by_weak:
            for block in self.blocks:
                self._by_weak.setdefault(block.weak, []).append(block)

    def candidates(self, weak: int) -> List[BlockSignature]:
        """Blocks whose weak checksum collides with ``weak``."""
        return self._by_weak.get(weak, [])

    def find(self, weak: int, window: bytes) -> Tuple[bool, int]:
        """Two-level match: weak first, strong on collision.

        Returns ``(matched, block_index)``; only full-size interior blocks
        and the (possibly short) final block of equal length can match.
        """
        entries = self._by_weak.get(weak)
        if not entries:
            return False, -1
        digest = None
        for block in entries:
            if block.length != len(window):
                continue
            if digest is None:
                digest = strong_hash(window)
            if block.strong == digest:
                return True, block.index
        return False, -1

    @property
    def wire_size(self) -> int:
        """Bytes needed to ship this signature over the network."""
        return len(self.blocks) * SIGNATURE_ENTRY_BYTES + 16  # + header


def compute_signature(data: bytes, block_size: int = DEFAULT_BLOCK_SIZE) -> FileSignature:
    """Build the signature of a basis file."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    if not data:
        # Explicit zero-length branch (the PR 7 empty-units convention):
        # an empty basis has no blocks — the block size is validated above
        # and never silently floored — and the signature still costs its
        # stream header on the wire.
        return FileSignature(block_size=block_size, file_length=0, blocks=[])
    blocks = []
    for index, offset in enumerate(range(0, len(data), block_size)):
        piece = data[offset:offset + block_size]
        blocks.append(BlockSignature(
            index=index,
            weak=weak_checksum(piece),
            strong=strong_hash(piece),
            length=len(piece),
        ))
    return FileSignature(block_size=block_size, file_length=len(data), blocks=blocks)

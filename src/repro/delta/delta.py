"""Delta computation and application — the sender side of rsync.

Given the signature of the basis file (the version the cloud already holds)
and the new file content, the sender walks the new file with a rolling
checksum.  On a two-level match it emits a block-copy token; otherwise it
rolls forward one byte, accumulating a literal run.  Applying the resulting
delta to the basis reconstructs the new file exactly (property-tested in
tests/test_delta.py).

Wire-size accounting mirrors the rsync stream: copy tokens cost a few bytes,
literals cost their length plus a small framing header.  This is what makes
the paper's observation quantitative — a one-byte edit in a Z-byte file
ships roughly one block (~10 KB for Dropbox) instead of Z bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from .rolling import RollingChecksum, weak_checksum
from .signature import DEFAULT_BLOCK_SIZE, FileSignature, compute_signature

#: Wire bytes per copy token (block index + run length encoding).
COPY_TOKEN_BYTES = 5
#: Wire bytes of framing per literal run.
LITERAL_HEADER_BYTES = 4


@dataclass(frozen=True)
class CopyOp:
    """Copy ``count`` consecutive basis blocks starting at ``block_index``."""

    block_index: int
    count: int = 1


@dataclass(frozen=True)
class LiteralOp:
    """Raw bytes that had no match in the basis file."""

    data: bytes


DeltaOp = Union[CopyOp, LiteralOp]


@dataclass
class Delta:
    """An rsync delta: ops plus the basis geometry needed to apply them."""

    block_size: int
    basis_length: int
    ops: List[DeltaOp]

    @property
    def literal_bytes(self) -> int:
        return sum(len(op.data) for op in self.ops if isinstance(op, LiteralOp))

    @property
    def matched_bytes(self) -> int:
        total = 0
        for op in self.ops:
            if isinstance(op, CopyOp):
                total += op.count * self.block_size
        # The final basis block may be short; callers treat this as an
        # upper bound, apply_delta handles the true lengths.
        return total

    @property
    def wire_size(self) -> int:
        """Bytes this delta occupies in the sync stream."""
        size = 8  # stream header
        for op in self.ops:
            if isinstance(op, CopyOp):
                size += COPY_TOKEN_BYTES
            else:
                size += LITERAL_HEADER_BYTES + len(op.data)
        return size


def compute_delta(signature: FileSignature, new_data: bytes) -> Delta:
    """Compute the delta that transforms the basis into ``new_data``.

    The interior scan keeps the rolling checksum in local integers and does a
    raw dict probe per byte (the overwhelmingly common miss path must stay a
    handful of bytecode ops).  Once fewer than ``block_size`` bytes remain,
    only one alignment can still match — a basis block of exactly the
    remaining length — so the tail is resolved with a single direct check
    instead of a shrinking-window roll.
    """
    block_size = signature.block_size
    if not new_data:
        # Explicit zero-length branch (the PR 7 empty-units convention):
        # an empty target needs no scan and ships no ops, only the stream
        # header wire_size accounts for.
        return Delta(block_size=block_size,
                     basis_length=signature.file_length, ops=[])
    ops: List[DeltaOp] = []
    literal_start = 0  # start of the current unmatched run
    position = 0
    n = len(new_data)

    def flush_literal(up_to: int) -> None:
        nonlocal literal_start
        if up_to > literal_start:
            ops.append(LiteralOp(new_data[literal_start:up_to]))
        literal_start = up_to

    def emit_copy(block_index: int) -> None:
        last = ops[-1] if ops else None
        if isinstance(last, CopyOp) and last.block_index + last.count == block_index:
            ops[-1] = CopyOp(last.block_index, last.count + 1)
        else:
            ops.append(CopyOp(block_index))

    by_weak = signature._by_weak
    mask = 0xFFFF
    a = b = 0
    have_roller = False

    while position + block_size <= n:
        if not have_roller:
            roller = RollingChecksum(new_data[position:position + block_size])
            a, b = roller.a, roller.b
            have_roller = True
        digest = (b << 16) | a
        if digest in by_weak:
            matched, block_index = signature.find(
                digest, new_data[position:position + block_size])
            if matched:
                flush_literal(position)
                emit_copy(block_index)
                position += block_size
                literal_start = position
                have_roller = False
                continue
        next_end = position + block_size
        if next_end < n:
            out_byte = new_data[position]
            a = (a - out_byte + new_data[next_end]) & mask
            b = (b - block_size * out_byte + a) & mask
        position += 1

    # Tail: fewer than block_size bytes remain.  In the classic shrinking-
    # window scan the window is always flush against the end of file here,
    # so the only possible match is the basis's own short final block, of
    # some fixed length L, at new-file offset n − L.  Check that one
    # alignment directly instead of rolling byte by byte.
    remaining = n - position
    if remaining > 0:
        short_lengths = {blk.length for blk in signature.blocks
                         if blk.length < block_size}
        for length in sorted(short_lengths, reverse=True):
            if length > remaining:
                continue
            window = new_data[n - length:]
            matched, block_index = signature.find(weak_checksum(window), window)
            if matched:
                flush_literal(n - length)
                emit_copy(block_index)
                literal_start = n
                break

    flush_literal(n)
    return Delta(block_size=block_size, basis_length=signature.file_length, ops=ops)


def apply_delta(basis: bytes, delta: Delta) -> bytes:
    """Reconstruct the new file from the basis and a delta."""
    block_size = delta.block_size
    if delta.basis_length != len(basis):
        raise ValueError(
            f"delta was computed against a {delta.basis_length}-byte basis, "
            f"got {len(basis)} bytes")
    pieces: List[bytes] = []
    for op in delta.ops:
        if isinstance(op, LiteralOp):
            pieces.append(op.data)
            continue
        start = op.block_index * block_size
        end = start + op.count * block_size
        if start >= len(basis) or op.block_index < 0:
            raise ValueError(f"copy op references missing block {op.block_index}")
        pieces.append(basis[start:min(end, len(basis))])
    return b"".join(pieces)


def diff_stats(old: bytes, new: bytes,
               block_size: int = DEFAULT_BLOCK_SIZE) -> "DeltaStats":
    """One-call convenience: signature + delta + verified round trip."""
    signature = compute_signature(old, block_size)
    delta = compute_delta(signature, new)
    if apply_delta(old, delta) != new:
        raise AssertionError("rsync round-trip failed; this is a bug")
    return DeltaStats(
        block_size=block_size,
        old_size=len(old),
        new_size=len(new),
        literal_bytes=delta.literal_bytes,
        delta_wire_bytes=delta.wire_size,
        signature_wire_bytes=signature.wire_size,
        op_count=len(delta.ops),
    )


@dataclass(frozen=True)
class DeltaStats:
    """Summary of a delta-sync exchange, for reports and tests."""

    block_size: int
    old_size: int
    new_size: int
    literal_bytes: int
    delta_wire_bytes: int
    signature_wire_bytes: int
    op_count: int

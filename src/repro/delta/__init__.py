"""rsync-style delta sync: rolling checksum, signatures, delta streams."""

from .cdc_delta import (
    CDC_STREAM_HEADER_BYTES,
    CHUNK_REF_BYTES,
    CdcDelta,
    ChunkCopyOp,
    ChunkLiteralOp,
    apply_cdc_delta,
    chunk_digest_map,
    compute_cdc_delta,
)
from .delta import (
    COPY_TOKEN_BYTES,
    LITERAL_HEADER_BYTES,
    CopyOp,
    Delta,
    DeltaStats,
    LiteralOp,
    apply_delta,
    compute_delta,
    diff_stats,
)
from .rolling import RollingChecksum, weak_checksum
from .signature import (
    DEFAULT_BLOCK_SIZE,
    SIGNATURE_ENTRY_BYTES,
    BlockSignature,
    FileSignature,
    compute_signature,
    strong_hash,
)

__all__ = [
    "BlockSignature",
    "CDC_STREAM_HEADER_BYTES",
    "CHUNK_REF_BYTES",
    "COPY_TOKEN_BYTES",
    "CdcDelta",
    "ChunkCopyOp",
    "ChunkLiteralOp",
    "CopyOp",
    "DEFAULT_BLOCK_SIZE",
    "Delta",
    "DeltaStats",
    "apply_cdc_delta",
    "chunk_digest_map",
    "compute_cdc_delta",
    "FileSignature",
    "LITERAL_HEADER_BYTES",
    "LiteralOp",
    "RollingChecksum",
    "SIGNATURE_ENTRY_BYTES",
    "apply_delta",
    "compute_delta",
    "compute_signature",
    "diff_stats",
    "strong_hash",
    "weak_checksum",
]

"""Content-defined-chunk delta — the CDC sibling of the rsync stream.

Where :mod:`repro.delta.delta` rolls a weak checksum at every byte offset
against a fixed-block signature, this codec cuts *both* versions with the
same gear-hash chunker (:mod:`repro.chunking.cdc`) and matches whole
chunks by strong digest.  Boundaries are content-defined, so an insertion
shifts only the chunks covering the edit; everything downstream still
matches without any rolling resynchronisation.

Wire-size accounting mirrors the rsync stream's conventions: a stream
header, a fixed-cost copy reference per matched chunk run, and
``LITERAL_HEADER_BYTES + len`` per literal run.  Copy references name a
``(offset, length)`` range of the basis (6 + 4 bytes plus framing), which
is costlier than rsync's 5-byte block index token — the price of
variable-size chunks, quantified by Experiment 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..chunking.cdc import DEFAULT_AVG, DEFAULT_MAX, DEFAULT_MIN, cdc_spans
from .delta import LITERAL_HEADER_BYTES
from .signature import strong_hash

#: Wire bytes per chunk-copy reference: 6 offset + 4 length + 2 framing.
CHUNK_REF_BYTES = 12
#: Stream header, matching the rsync delta stream's 8 bytes.
CDC_STREAM_HEADER_BYTES = 8


@dataclass(frozen=True)
class ChunkCopyOp:
    """Copy ``length`` basis bytes starting at ``offset``."""

    offset: int
    length: int


@dataclass(frozen=True)
class ChunkLiteralOp:
    """Raw bytes whose chunk digest had no match in the basis."""

    data: bytes


CdcOp = Union[ChunkCopyOp, ChunkLiteralOp]


@dataclass
class CdcDelta:
    """A CDC delta: ops plus the basis length needed to apply them."""

    basis_length: int
    ops: List[CdcOp]

    @property
    def literal_bytes(self) -> int:
        return sum(len(op.data) for op in self.ops
                   if isinstance(op, ChunkLiteralOp))

    @property
    def matched_bytes(self) -> int:
        return sum(op.length for op in self.ops
                   if isinstance(op, ChunkCopyOp))

    @property
    def wire_size(self) -> int:
        """Bytes this delta occupies in the sync stream."""
        size = CDC_STREAM_HEADER_BYTES
        for op in self.ops:
            if isinstance(op, ChunkCopyOp):
                size += CHUNK_REF_BYTES
            else:
                size += LITERAL_HEADER_BYTES + len(op.data)
        return size


def chunk_digest_map(data: bytes,
                     min_size: int = DEFAULT_MIN,
                     avg_size: int = DEFAULT_AVG,
                     max_size: int = DEFAULT_MAX
                     ) -> Dict[bytes, Tuple[int, int]]:
    """Strong digest → first ``(offset, length)`` of each CDC chunk.

    The shared index both the CDC delta sender and the set-reconciliation
    sketch build over a basis.  Zero-length data is an explicit branch
    (PR 7 empty-units convention): no chunks, never a phantom empty chunk.
    """
    if not data:
        return {}
    index: Dict[bytes, Tuple[int, int]] = {}
    for offset, length in cdc_spans(data, min_size, avg_size, max_size):
        index.setdefault(strong_hash(data[offset:offset + length]),
                         (offset, length))
    return index


def compute_cdc_delta(old: bytes, new: bytes,
                      min_size: int = DEFAULT_MIN,
                      avg_size: int = DEFAULT_AVG,
                      max_size: int = DEFAULT_MAX) -> CdcDelta:
    """Delta that transforms ``old`` into ``new`` by whole-chunk matching.

    Adjacent matched chunks coalesce into one copy reference when they are
    contiguous in the basis; adjacent literal chunks coalesce into one run.
    """
    basis = chunk_digest_map(old, min_size, avg_size, max_size)
    ops: List[CdcOp] = []
    if not new:
        # Explicit zero-length target branch: no ops, header-only stream.
        return CdcDelta(basis_length=len(old), ops=ops)
    for offset, length in cdc_spans(new, min_size, avg_size, max_size):
        piece = new[offset:offset + length]
        match = basis.get(strong_hash(piece))
        if match is not None:
            last = ops[-1] if ops else None
            if (isinstance(last, ChunkCopyOp)
                    and last.offset + last.length == match[0]):
                ops[-1] = ChunkCopyOp(last.offset, last.length + match[1])
            else:
                ops.append(ChunkCopyOp(match[0], match[1]))
            continue
        last = ops[-1] if ops else None
        if isinstance(last, ChunkLiteralOp):
            ops[-1] = ChunkLiteralOp(last.data + piece)
        else:
            ops.append(ChunkLiteralOp(piece))
    return CdcDelta(basis_length=len(old), ops=ops)


def apply_cdc_delta(basis: bytes, delta: CdcDelta) -> bytes:
    """Reconstruct the new file from the basis and a CDC delta."""
    if delta.basis_length != len(basis):
        raise ValueError(
            f"CDC delta was computed against a {delta.basis_length}-byte "
            f"basis, got {len(basis)} bytes")
    pieces: List[bytes] = []
    for op in delta.ops:
        if isinstance(op, ChunkLiteralOp):
            pieces.append(op.data)
            continue
        if op.offset < 0 or op.length < 0 \
                or op.offset + op.length > len(basis):
            raise ValueError(
                f"copy ref [{op.offset}, {op.offset + op.length}) falls "
                f"outside the {len(basis)}-byte basis")
        pieces.append(basis[op.offset:op.offset + op.length])
    return b"".join(pieces)

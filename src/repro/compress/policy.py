"""Compression policies modelling the levels the paper observes (§5.1).

Experiment 4 distinguishes four behaviours per service × access method ×
direction:

* **no compression** (Google Drive, OneDrive, Box, SugarSync — everywhere;
  every service over the web upload path);
* **low-level compression** (Dropbox / Ubuntu One mobile uploads — "quite
  low", chosen "to reduce the battery consumption");
* **moderate compression** (Dropbox / Ubuntu One PC-client uploads);
* **high compression** (cloud-side recompression on the download path).

We realise the levels with real DEFLATE, but model "low/moderate" as
*segmented* streams — each segment compressed independently with a small
window, which is exactly how battery/latency-constrained clients trade ratio
for speed (and how Dropbox's chunked protocol behaves, since each 4 MB chunk
is compressed independently).  Smaller segments + lower zlib level ⇒ worse
ratio, reproducing the paper's ordering LOW > MODERATE > HIGH (in bytes).
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass

from ..content import Content


class CompressionLevel(enum.Enum):
    """Qualitative compression levels as classified by the paper."""

    NONE = "none"
    LOW = "low"
    MODERATE = "moderate"
    HIGH = "high"


@dataclass(frozen=True)
class _LevelParams:
    zlib_level: int
    segment: int      # bytes per independently compressed segment
    coverage: float   # fraction of each segment actually deflated (fast path)


_PARAMS = {
    # Mobile "quite low" level: small independent segments, minimum effort,
    # and a fast path that stores half of each segment uncompressed (the
    # battery-saving throughput heuristic low-power clients use).
    CompressionLevel.LOW: _LevelParams(zlib_level=1, segment=4 * 1024, coverage=0.5),
    # PC-client "moderate" level: mid-effort DEFLATE over modest segments
    # with a small stored fast path — lands near the paper's observed
    # Dropbox PC upload ratio (~57 % on the Experiment 4 text).
    CompressionLevel.MODERATE: _LevelParams(zlib_level=3, segment=16 * 1024, coverage=0.85),
    CompressionLevel.HIGH: _LevelParams(zlib_level=9, segment=1 << 62, coverage=1.0),
}


class CompressionPolicy:
    """Compresses content (or predicts its wire size) at a qualitative level."""

    def __init__(self, level: CompressionLevel):
        self.level = level

    def __repr__(self) -> str:
        return f"CompressionPolicy({self.level.value})"

    @property
    def enabled(self) -> bool:
        return self.level is not CompressionLevel.NONE

    def compress(self, data: bytes) -> bytes:
        """Return the on-the-wire representation of ``data``."""
        if self.level is CompressionLevel.NONE:
            return data
        params = _PARAMS[self.level]
        if not data:
            return zlib.compress(data, params.zlib_level)
        pieces = []
        for offset in range(0, len(data), params.segment):
            segment = data[offset:offset + params.segment]
            split = int(len(segment) * params.coverage)
            pieces.append(zlib.compress(segment[:split], params.zlib_level))
            pieces.append(segment[split:])
        return b"".join(pieces)

    def wire_size(self, content: Content) -> int:
        """Bytes that cross the wire for ``content`` under this policy.

        Compression never expands the payload on the wire: real clients fall
        back to stored (uncompressed) framing when DEFLATE would grow the
        data, so the size is capped at the original.
        """
        if self.level is CompressionLevel.NONE or content.size == 0:
            return content.size
        return min(content.size, len(self.compress(content.data)))

    def ratio(self, content: Content) -> float:
        """wire_size / original size (≤ 1.0 by the stored-fallback rule)."""
        if content.size == 0:
            return 1.0
        return self.wire_size(content) / content.size


NO_COMPRESSION = CompressionPolicy(CompressionLevel.NONE)
LOW_COMPRESSION = CompressionPolicy(CompressionLevel.LOW)
MODERATE_COMPRESSION = CompressionPolicy(CompressionLevel.MODERATE)
HIGH_COMPRESSION = CompressionPolicy(CompressionLevel.HIGH)


def winzip_reference_size(content: Content) -> int:
    """The paper's reference compressor: highest-level whole-stream DEFLATE.

    Used by the trace analysis to classify files as "effectively compressed"
    (compressed/original < 90 %).
    """
    return HIGH_COMPRESSION.wire_size(content)

"""Compression engine: qualitative levels backed by real DEFLATE."""

from .policy import (
    HIGH_COMPRESSION,
    LOW_COMPRESSION,
    MODERATE_COMPRESSION,
    NO_COMPRESSION,
    CompressionLevel,
    CompressionPolicy,
    winzip_reference_size,
)

__all__ = [
    "CompressionLevel",
    "CompressionPolicy",
    "HIGH_COMPRESSION",
    "LOW_COMPRESSION",
    "MODERATE_COMPRESSION",
    "NO_COMPRESSION",
    "winzip_reference_size",
]

"""Trace analyses behind the paper's macro-level findings.

Maps each published statistic to a function:

* Figure 2 — :func:`size_cdf`, :func:`summary_stats`;
* §4.1 — :func:`small_file_fraction`, :func:`batchable_small_fraction`;
* §4.3 — :func:`modified_fraction`;
* §5.1 — :func:`compressible_fraction`, :func:`compression_ratio`,
  :func:`compression_traffic_saving`;
* §5.2 / Figure 5 — :func:`dedup_ratio`, :func:`dedup_ratio_curve`,
  :func:`duplicate_file_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..units import KB
from .schema import BLOCK_GRANULARITIES, Trace

SMALL_FILE_THRESHOLD = 100 * KB

#: Creation-batch window (seconds): two small files of one user created
#: within this window count as batchable (§4.1).  Shared by the trace
#: analysis below and the replay estimator's BDS eligibility test — the
#: two MUST agree, or the estimator silently drifts from the statistic it
#: is calibrated against.
BDS_BATCH_WINDOW = 5.0


# ---------------------------------------------------------------------------
# Figure 2: size distributions
# ---------------------------------------------------------------------------

def size_cdf(trace: Trace, compressed: bool = False,
             points: Optional[Sequence[int]] = None) -> List[Tuple[int, float]]:
    """(size, P[X ≤ size]) pairs — the Figure 2 curves.

    With ``points`` unset, a log-spaced grid from 1 B to the maximum is used.
    """
    sizes = np.sort(trace.sizes(compressed=compressed))
    if len(sizes) == 0:
        return []
    if points is None:
        grid = np.unique(np.logspace(0, np.log10(max(sizes.max(), 2)), 60).astype(np.int64))
    else:
        grid = np.asarray(sorted(points), dtype=np.int64)
    positions = np.searchsorted(sizes, grid, side="right")
    return [(int(size), float(pos) / len(sizes))
            for size, pos in zip(grid, positions)]


@dataclass(frozen=True)
class TraceStats:
    """The headline numbers the paper quotes for its trace."""

    file_count: int
    user_count: int
    mean_size: float
    median_size: float
    max_size: int
    mean_compressed: float
    median_compressed: float
    max_compressed: int
    small_fraction: float            # P[size < 100 KB]
    small_fraction_compressed: float
    modified_fraction: float         # P[modified ≥ once]
    compressible_fraction: float     # P[ratio < 0.9]
    compression_ratio: float         # Σoriginal / Σcompressed
    duplicate_file_ratio: float      # duplicate bytes / total bytes


def summary_stats(trace: Trace) -> TraceStats:
    sizes = trace.sizes()
    compressed = trace.sizes(compressed=True)
    return TraceStats(
        file_count=len(trace),
        user_count=sum(trace.users().values()),
        # Descriptive statistics are deliberately fractional; they never
        # feed a byte ledger (reprolint REP010 suppressed for that reason).
        mean_size=float(sizes.mean()),  # reprolint: disable=REP010 stats
        median_size=float(np.median(sizes)),  # reprolint: disable=REP010 stats
        max_size=int(sizes.max()),
        mean_compressed=float(compressed.mean()),
        median_compressed=float(np.median(compressed)),
        max_compressed=int(compressed.max()),
        small_fraction=small_file_fraction(trace),
        small_fraction_compressed=small_file_fraction(trace, compressed=True),
        modified_fraction=modified_fraction(trace),
        compressible_fraction=compressible_fraction(trace),
        compression_ratio=compression_ratio(trace),
        duplicate_file_ratio=duplicate_file_ratio(trace),
    )


# ---------------------------------------------------------------------------
# §4.1: small files and batchability
# ---------------------------------------------------------------------------

def small_file_fraction(trace: Trace, threshold: int = SMALL_FILE_THRESHOLD,
                        compressed: bool = False) -> float:
    """Fraction of files under ``threshold`` (the paper's 77 % / 81 %)."""
    sizes = trace.sizes(compressed=compressed)
    if len(sizes) == 0:
        return 0.0
    return float((sizes < threshold).mean())


def batchable_small_fraction(trace: Trace,
                             threshold: int = SMALL_FILE_THRESHOLD,
                             window: float = BDS_BATCH_WINDOW) -> float:
    """Fraction of small files that arrive in creation batches (§4.1's 66 %).

    A small file is batchable when the same user created another small file
    within ``window`` seconds — exactly the files BDS could combine.
    """
    per_user: Dict[Tuple[str, str], List[float]] = {}
    for record in trace:
        if record.size < threshold:
            per_user.setdefault((record.service, record.user), []).append(
                record.created_at)
    small_total = 0
    batchable = 0
    for times in per_user.values():
        times.sort()
        for index, moment in enumerate(times):
            small_total += 1
            near_prev = index > 0 and moment - times[index - 1] <= window
            near_next = (index + 1 < len(times)
                         and times[index + 1] - moment <= window)
            if near_prev or near_next:
                batchable += 1
    if small_total == 0:
        return 0.0
    return batchable / small_total


# ---------------------------------------------------------------------------
# §4.3: modifications
# ---------------------------------------------------------------------------

def modified_fraction(trace: Trace) -> float:
    """Fraction of files modified at least once (the paper's 84 %)."""
    if len(trace) == 0:
        return 0.0
    return sum(1 for r in trace if r.was_modified) / len(trace)


# ---------------------------------------------------------------------------
# §5.1: compression
# ---------------------------------------------------------------------------

def compressible_fraction(trace: Trace) -> float:
    """Fraction of files with compression ratio < 0.9 (the paper's 52 %)."""
    if len(trace) == 0:
        return 0.0
    return sum(1 for r in trace if r.effectively_compressible) / len(trace)


def compression_ratio(trace: Trace) -> float:
    """Σ original / Σ compressed — the paper's 1.31."""
    compressed = trace.total_compressed_bytes()
    if compressed == 0:
        return 1.0
    return trace.total_bytes() / compressed


def compression_traffic_saving(trace: Trace) -> float:
    """Fraction of sync bytes compression removes (the paper's 24 %)."""
    total = trace.total_bytes()
    if total == 0:
        return 0.0
    return 1.0 - trace.total_compressed_bytes() / total


# ---------------------------------------------------------------------------
# §5.2 / Figure 5: deduplication
# ---------------------------------------------------------------------------

def duplicate_file_ratio(trace: Trace) -> float:
    """Size of duplicate files / total size (the paper's 18.8 %).

    The first occurrence of each content is the original; later identical
    files are the duplicates.
    """
    total = 0
    duplicate = 0
    seen = set()
    for record in trace:
        total += record.size
        key = record.full_file_key()
        if key in seen:
            duplicate += record.size
        else:
            seen.add(key)
    if total == 0:
        return 0.0
    return duplicate / total


def dedup_ratio(trace: Trace, block_size: Optional[int] = None) -> float:
    """Cross-user dedup ratio = bytes before / bytes after (Figure 5).

    ``block_size=None`` analyses full-file dedup; otherwise head-aligned
    fixed blocks of the given size.
    """
    before = 0
    after = 0
    seen = set()
    if block_size is None:
        for record in trace:
            before += record.size
            key = record.full_file_key()
            if key not in seen:
                seen.add(key)
                after += record.size
        return before / after if after else 1.0
    for record in trace:
        before += record.size
        for key in record.block_keys(block_size):
            if key not in seen:
                seen.add(key)
                after += key[1]
    return before / after if after else 1.0


def dedup_ratio_curve(
    trace: Trace,
    block_sizes: Sequence[int] = BLOCK_GRANULARITIES,
) -> List[Tuple[Optional[int], float]]:
    """Figure 5's series: dedup ratio per block size, plus full-file (None)."""
    curve: List[Tuple[Optional[int], float]] = [
        (block_size, dedup_ratio(trace, block_size))
        for block_size in block_sizes
    ]
    curve.append((None, dedup_ratio(trace, None)))
    return curve

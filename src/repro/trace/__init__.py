"""The real-world trace substrate: schema, statistical twin generator,
analysis (Figures 2 & 5, §4/§5 statistics), and persistence."""

from .analysis import (
    SMALL_FILE_THRESHOLD,
    TraceStats,
    batchable_small_fraction,
    compressible_fraction,
    compression_ratio,
    compression_traffic_saving,
    dedup_ratio,
    dedup_ratio_curve,
    duplicate_file_ratio,
    modified_fraction,
    size_cdf,
    small_file_fraction,
    summary_stats,
)
from .generator import (
    GeneratorConfig,
    SERVICE_FILES,
    SERVICE_USERS,
    TRACE_SPAN,
    generate_trace,
)
from .io import load_trace, read_csv, save_trace, write_csv
from .replay import (
    ReplayReport,
    modification_share,
    replay_all,
    replay_trace,
    traffic_overuse_fraction,
)
from .schema import BLOCK_GRANULARITIES, UNIT_SIZE, FileRecord, Trace

__all__ = [
    "BLOCK_GRANULARITIES",
    "FileRecord",
    "GeneratorConfig",
    "SERVICE_FILES",
    "SERVICE_USERS",
    "SMALL_FILE_THRESHOLD",
    "TRACE_SPAN",
    "Trace",
    "TraceStats",
    "UNIT_SIZE",
    "batchable_small_fraction",
    "compressible_fraction",
    "compression_ratio",
    "compression_traffic_saving",
    "dedup_ratio",
    "dedup_ratio_curve",
    "duplicate_file_ratio",
    "generate_trace",
    "load_trace",
    "modified_fraction",
    "ReplayReport",
    "read_csv",
    "replay_all",
    "replay_trace",
    "modification_share",
    "traffic_overuse_fraction",
    "save_trace",
    "size_cdf",
    "small_file_fraction",
    "summary_stats",
    "write_csv",
]

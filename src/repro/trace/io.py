"""Trace persistence: CSV (and zip) round-trip.

The paper shipped its trace as a downloadable archive; we do the same.  Each
row serialises one :class:`~repro.trace.schema.FileRecord`, including the
content identity (the 128 KB segment ids) as a run-length-encoded list so
duplicate/near-duplicate structure — and therefore every dedup analysis —
survives the round trip exactly.
"""

from __future__ import annotations

import csv
import io
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from .schema import FileRecord, Trace

_FIELDS = [
    "user", "service", "path", "size", "compressed_size",
    "created_at", "modified_at", "modify_count", "content_id", "segments",
]


def _encode_segments(segments: np.ndarray) -> str:
    """Run-length encode consecutive id runs: ``start:length;start:length``."""
    if len(segments) == 0:
        return ""
    runs = []
    start = int(segments[0])
    length = 1
    for value in segments[1:]:
        value = int(value)
        if value == start + length:
            length += 1
        else:
            runs.append(f"{start}:{length}")
            start = value
            length = 1
    runs.append(f"{start}:{length}")
    return ";".join(runs)


def _decode_segments(text: str) -> np.ndarray:
    if not text:
        return np.empty(0, dtype=np.int64)
    pieces = []
    for run in text.split(";"):
        start, length = run.split(":")
        pieces.append(np.arange(int(start), int(start) + int(length),
                                dtype=np.int64))
    return np.concatenate(pieces)


def write_csv(trace: Trace, stream) -> None:
    writer = csv.DictWriter(stream, fieldnames=_FIELDS)
    writer.writeheader()
    for record in trace:
        writer.writerow({
            "user": record.user,
            "service": record.service,
            "path": record.path,
            "size": record.size,
            "compressed_size": record.compressed_size,
            "created_at": repr(record.created_at),
            "modified_at": repr(record.modified_at),
            "modify_count": record.modify_count,
            "content_id": record.content_id,
            "segments": _encode_segments(record.segments),
        })


def read_csv(stream) -> Trace:
    trace = Trace()
    for row in csv.DictReader(stream):
        trace.records.append(FileRecord(
            user=row["user"],
            service=row["service"],
            path=row["path"],
            size=int(row["size"]),
            compressed_size=int(row["compressed_size"]),
            created_at=float(row["created_at"]),
            modified_at=float(row["modified_at"]),
            modify_count=int(row["modify_count"]),
            segments=_decode_segments(row["segments"]),
            content_id=int(row["content_id"]),
        ))
    return trace


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``*.csv`` or, with a ``.zip`` suffix, a zip archive."""
    path = Path(path)
    if path.suffix == ".zip":
        buffer = io.StringIO()
        write_csv(trace, buffer)
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.writestr("trace.csv", buffer.getvalue())
        return
    with path.open("w", newline="") as stream:
        write_csv(trace, stream)


def load_trace(path: Union[str, Path]) -> Trace:
    path = Path(path)
    if path.suffix == ".zip":
        with zipfile.ZipFile(path) as archive:
            with archive.open("trace.csv") as raw:
                return read_csv(io.TextIOWrapper(raw, encoding="utf-8"))
    with path.open(newline="") as stream:
        return read_csv(stream)

"""Macro-level trace replay: what would each service pay for this trace?

The paper's motivation is macro-economic: at a billion files a day, sync
traffic is a line item (§1 estimates Dropbox's S3 bill from per-sync
averages).  The micro simulator in :mod:`repro.client` measures single
sessions exactly, but replaying 222,632 files — some of them gigabytes —
through it byte-for-byte is not feasible; this module instead *estimates*
each service's trace-wide traffic analytically from the very same design
choices the micro engine implements, and decomposes the total into what
each mechanism (compression, dedup, BDS, IDS) saves.

The estimator is validated against the micro engine in
tests/test_replay.py: for small synthetic traces the two agree on every
qualitative ordering and within tens of percent on totals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..client import AccessMethod, ServiceProfile, service_profile
from ..client.profiles import BdsMode
from ..cloud.dedup import DedupGranularity, DedupScope
from ..compress import CompressionLevel
from .analysis import SMALL_FILE_THRESHOLD
from .schema import FileRecord, Trace

#: Fraction of a file's *achievable* compression each level realises
#: (calibrated against repro.compress on the Experiment 4 text corpus:
#: HIGH ≈ 0.444, MODERATE ≈ 0.578, LOW ≈ 0.773 of original → savings
#: fractions relative to HIGH's saving).
_LEVEL_SAVING_FRACTION = {
    CompressionLevel.NONE: 0.0,
    CompressionLevel.LOW: 0.41,
    CompressionLevel.MODERATE: 0.76,
    CompressionLevel.HIGH: 1.0,
}

#: Modelled fraction of a file altered per modification (median ≈ 2 %,
#: heavy-tailed — office documents re-save small diffs, media re-encodes
#: everything).
_MOD_FRACTION_LOG_MU = -3.9   # exp(-3.9) ≈ 0.02
_MOD_FRACTION_LOG_SIGMA = 1.0


@dataclass
class ReplayReport:
    """Trace-wide traffic estimate for one service profile."""

    service: str
    access: str
    file_count: int = 0
    upload_events: int = 0
    data_update_bytes: int = 0
    traffic_bytes: int = 0
    overhead_bytes: int = 0
    saved_by_compression: int = 0
    saved_by_dedup: int = 0
    saved_by_bds: int = 0
    saved_by_ids: int = 0
    per_user_traffic: Dict[str, int] = field(default_factory=dict)
    per_user_modification_traffic: Dict[str, int] = field(default_factory=dict)
    per_user_modification_update: Dict[str, int] = field(default_factory=dict)

    @property
    def tue(self) -> float:
        if self.data_update_bytes <= 0:
            return float("nan")
        return self.traffic_bytes / self.data_update_bytes

    @property
    def total_savings(self) -> int:
        return (self.saved_by_compression + self.saved_by_dedup
                + self.saved_by_bds + self.saved_by_ids)


def _fixed_overhead(profile: ServiceProfile) -> int:
    """Per-sync fixed overhead implied by the profile's cost parameters.

    Mirrors the micro engine: handshake (when each sync opens a connection),
    HTTP framing per request, service metadata, and the notification push.
    """
    costs = profile.protocol
    overhead = profile.overhead
    handshake = 0
    if overhead.connection_per_sync:
        handshake = (costs.tcp_handshake_up + costs.tcp_handshake_down
                     + (costs.tls_handshake_up + costs.tls_handshake_down
                        if costs.use_tls else 0))
    framing = (costs.request_header + costs.response_header) \
        * max(overhead.requests_per_sync, 1)
    return (handshake + framing + overhead.meta_up + overhead.meta_down
            + overhead.notify_down)


def _wire_payload(profile: ServiceProfile, size: int, compressed: int) -> int:
    """Upload bytes for content with a known reference-compressed size."""
    saving_fraction = _LEVEL_SAVING_FRACTION[profile.upload_compression.level]
    achievable = max(size - compressed, 0)
    wire = size - int(achievable * saving_fraction)
    return wire + int(profile.overhead.per_byte_factor * wire)


def _in_creation_batch(record: FileRecord,
                       batch_windows: Dict[Tuple[str, str], List[float]],
                       window: float = 5.0) -> bool:
    times = batch_windows.get((record.service, record.user), [])
    # times is sorted; record.created_at is in it.  Neighbour within window?
    import bisect
    index = bisect.bisect_left(times, record.created_at)
    before = index > 0 and record.created_at - times[index - 1] <= window
    after = (index + 1 < len(times)
             and times[index + 1] - record.created_at <= window)
    return before or after


def replay_trace(trace: Trace, profile: ServiceProfile,
                 seed: int = 0) -> ReplayReport:
    """Estimate the trace-wide sync traffic under one service profile."""
    rng = random.Random(f"replay:{seed}:{profile.name}")
    report = ReplayReport(service=profile.service,
                          access=profile.access.value)
    fixed = _fixed_overhead(profile)
    bds = profile.bds

    # Precompute creation-time neighbourhoods for BDS eligibility.
    small_times: Dict[Tuple[str, str], List[float]] = {}
    for record in trace:
        if record.size < SMALL_FILE_THRESHOLD:
            small_times.setdefault((record.service, record.user), []).append(
                record.created_at)
    for times in small_times.values():
        times.sort()

    dedup = profile.dedup
    seen_units: Set = set()

    for record in trace:
        report.file_count += 1
        # ---- creation upload ------------------------------------------------
        report.data_update_bytes += record.size
        raw_wire = record.size + int(profile.overhead.per_byte_factor * record.size)
        wire = _wire_payload(profile, record.size, record.compressed_size)
        report.saved_by_compression += max(raw_wire - wire, 0)

        if dedup.enabled:
            shipped = 0
            if dedup.granularity is DedupGranularity.FULL_FILE:
                keys = [(record.full_file_key(), record.size)]
            else:
                keys = [(key, length)
                        for key, length in record.block_keys(dedup.block_size)]
            total_len = sum(length for _, length in keys) or 1
            for key, length in keys:
                scope_key = key if dedup.scope is DedupScope.CROSS_USER \
                    else (record.user, key)
                if scope_key in seen_units:
                    continue
                seen_units.add(scope_key)
                shipped += length
            deduped_wire = int(wire * shipped / total_len)
            report.saved_by_dedup += wire - deduped_wire
            wire = deduped_wire

        overhead = fixed
        if (record.size < SMALL_FILE_THRESHOLD and bds.mode is not BdsMode.NONE
                and _in_creation_batch(record, small_times)):
            batched = bds.per_file_bytes if bds.mode is BdsMode.FULL \
                else max(bds.per_file_bytes, fixed // 8)
            report.saved_by_bds += max(fixed - batched, 0)
            overhead = batched
        report.traffic_bytes += wire + overhead
        report.overhead_bytes += overhead
        report.upload_events += 1
        report.per_user_traffic[record.user] = \
            report.per_user_traffic.get(record.user, 0) + wire + overhead

        # ---- modifications ---------------------------------------------------
        for _ in range(record.modify_count):
            fraction = min(
                1.0, rng.lognormvariate(_MOD_FRACTION_LOG_MU,
                                        _MOD_FRACTION_LOG_SIGMA))
            altered = max(1, int(record.size * fraction))
            report.data_update_bytes += altered
            full_wire = _wire_payload(profile, record.size,
                                      record.compressed_size)
            if profile.uses_ids:
                # Delta ships the altered region rounded up to whole blocks.
                blocks = -(-altered // profile.delta_block) + 1
                delta_wire = min(blocks * profile.delta_block, record.size)
                ratio = record.compressed_size / max(record.size, 1)
                delta_wire = _wire_payload(
                    profile, delta_wire, int(delta_wire * ratio))
                report.saved_by_ids += max(full_wire - delta_wire, 0)
                wire = delta_wire
            else:
                wire = full_wire
            report.traffic_bytes += wire + fixed
            report.overhead_bytes += fixed
            report.upload_events += 1
            report.per_user_traffic[record.user] = \
                report.per_user_traffic.get(record.user, 0) + wire + fixed
            report.per_user_modification_traffic[record.user] = \
                report.per_user_modification_traffic.get(record.user, 0) \
                + wire + fixed
            report.per_user_modification_update[record.user] = \
                report.per_user_modification_update.get(record.user, 0) \
                + altered

    return report


def modification_share(report: ReplayReport) -> Dict[str, float]:
    """Per-user fraction of sync traffic *wasted* on modifications.

    [36] defines the traffic overuse problem as modification sync traffic
    far exceeding the useful data-update bytes; the share here is that
    excess (modification traffic minus altered bytes) over the user's
    total sync traffic.
    """
    shares = {}
    for user, total in report.per_user_traffic.items():
        if total <= 0:
            continue
        mod_traffic = report.per_user_modification_traffic.get(user, 0)
        useful = report.per_user_modification_update.get(user, 0)
        shares[user] = max(mod_traffic - useful, 0) / total
    return shares


def traffic_overuse_fraction(report: ReplayReport,
                             threshold: float = 0.10) -> float:
    """Fraction of users losing more than ``threshold`` of their traffic
    to modification overuse.

    The paper cites (from the ISP-level Dropbox trace of [12, 36]) that for
    8.5 % of Dropbox users, more than 10 % of their sync traffic is caused
    by frequent modifications; this reproduces the statistic on any replay.
    """
    shares = modification_share(report)
    if not shares:
        return 0.0
    return sum(1 for share in shares.values() if share > threshold) / len(shares)


def replay_all(trace: Trace,
               services: Optional[Sequence[str]] = None,
               access: AccessMethod = AccessMethod.PC,
               seed: int = 0) -> List[ReplayReport]:
    """Replay the trace under every service, sorted by estimated traffic."""
    from ..client import SERVICES
    names = services or SERVICES
    reports = [replay_trace(trace, service_profile(name, access), seed=seed)
               for name in names]
    reports.sort(key=lambda report: report.traffic_bytes)
    return reports

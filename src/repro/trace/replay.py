"""Macro-level trace replay: what would each service pay for this trace?

The paper's motivation is macro-economic: at a billion files a day, sync
traffic is a line item (§1 estimates Dropbox's S3 bill from per-sync
averages).  The micro simulator in :mod:`repro.client` measures single
sessions exactly, but replaying 222,632 files — some of them gigabytes —
through it byte-for-byte is not feasible; this module instead *estimates*
each service's trace-wide traffic analytically from the very same design
choices the micro engine implements, and decomposes the total into what
each mechanism (compression, dedup, BDS, IDS) saves.

The estimator is validated against the micro engine in
tests/test_replay.py: for small synthetic traces the two agree on every
qualitative ordering and within tens of percent on totals.

Scaling: :class:`ReplayPool` shards the replay across a persistent pool of
worker processes (one per user-disjoint shard, forked once and reused for
every profile replayed against the same trace) and is **byte-identical**
to :func:`replay_trace` at any worker count.  Four properties make that
possible (see DESIGN.md, "Parallel replay & determinism contract"):

* every record's modification RNG is its own stream keyed by
  ``(seed, profile, global record index)`` — no draw-order coupling
  between records;
* BDS batch eligibility and ``SAME_USER`` dedup only couple records of
  one user, and sharding is by user;
* ``CROSS_USER`` dedup couples records globally, so shards retain per-unit
  first-occurrence *candidates* worker-side and ship only a compact
  digest/index summary; a merge pass resolves true first occurrences and
  re-credits ``saved_by_dedup`` exactly (two-phase protocol, with the
  winner table published once through ``multiprocessing.shared_memory``);
* phase 2 short-circuits entirely when no unit has candidates in more
  than one shard — the common case for traces without cross-user
  duplicate content.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import random
import threading
import traceback
from array import array
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..client import AccessMethod, ServiceProfile, service_profile
from ..client.defer import NoDefer
from ..client.profiles import BdsMode
from ..cloud.dedup import DedupGranularity, DedupScope
from ..compress import CompressionLevel
from .analysis import BDS_BATCH_WINDOW, SMALL_FILE_THRESHOLD
from .schema import FileRecord, Trace

#: Fraction of a file's *achievable* compression each level realises
#: (calibrated against repro.compress on the Experiment 4 text corpus:
#: HIGH ≈ 0.444, MODERATE ≈ 0.578, LOW ≈ 0.773 of original → savings
#: fractions relative to HIGH's saving).
_LEVEL_SAVING_FRACTION = {
    CompressionLevel.NONE: 0.0,
    CompressionLevel.LOW: 0.41,
    CompressionLevel.MODERATE: 0.76,
    CompressionLevel.HIGH: 1.0,
}

#: Modelled fraction of a file altered per modification (median ≈ 2 %,
#: heavy-tailed — office documents re-save small diffs, media re-encodes
#: everything).
_MOD_FRACTION_LOG_MU = -3.9   # exp(-3.9) ≈ 0.02
_MOD_FRACTION_LOG_SIGMA = 1.0

#: Counter fields summed exactly by :meth:`ReplayReport.merge`.
_MERGE_COUNTERS = (
    "file_count", "upload_events", "data_update_bytes", "traffic_bytes",
    "overhead_bytes", "saved_by_compression", "saved_by_dedup",
    "saved_by_bds", "saved_by_ids",
)

#: Per-user dict fields merged by key-wise addition.
_MERGE_DICTS = (
    "per_user_traffic", "per_user_modification_traffic",
    "per_user_modification_update",
)


@dataclass
class ReplayReport:
    """Trace-wide traffic estimate for one service profile."""

    service: str
    access: str
    file_count: int = 0
    upload_events: int = 0
    data_update_bytes: int = 0
    traffic_bytes: int = 0
    overhead_bytes: int = 0
    saved_by_compression: int = 0
    saved_by_dedup: int = 0
    saved_by_bds: int = 0
    saved_by_ids: int = 0
    per_user_traffic: Dict[str, int] = field(default_factory=dict)
    per_user_modification_traffic: Dict[str, int] = field(default_factory=dict)
    per_user_modification_update: Dict[str, int] = field(default_factory=dict)

    @property
    def tue(self) -> float:
        if self.data_update_bytes <= 0:
            # Zero-size convention (PR 3): traffic with no data update is
            # infinitely inefficient; no traffic at all is undefined.
            return float("inf") if self.traffic_bytes > 0 else float("nan")
        return self.traffic_bytes / self.data_update_bytes

    @property
    def total_savings(self) -> int:
        return (self.saved_by_compression + self.saved_by_dedup
                + self.saved_by_bds + self.saved_by_ids)

    @classmethod
    def merge(cls, reports: Sequence["ReplayReport"]) -> "ReplayReport":
        """Exact sum of shard reports: all counters and per-user dicts.

        Every field is additive, so merging is associative and
        order-insensitive up to dict insertion order (the parallel replay
        canonicalises that separately).  Raises on an empty sequence or on
        reports for different profiles — a merged report must mean one
        (service, access) pair.
        """
        if not reports:
            raise ValueError("cannot merge zero reports")
        first = reports[0]
        for other in reports[1:]:
            if (other.service, other.access) != (first.service, first.access):
                raise ValueError(
                    f"cannot merge reports for different profiles: "
                    f"{first.service}/{first.access} vs "
                    f"{other.service}/{other.access}")
        merged = cls(service=first.service, access=first.access)
        for report in reports:
            for name in _MERGE_COUNTERS:
                setattr(merged, name, getattr(merged, name) + getattr(report, name))
            for name in _MERGE_DICTS:
                target = getattr(merged, name)
                for user, value in getattr(report, name).items():
                    target[user] = target.get(user, 0) + value
        return merged


def _fixed_overhead(profile: ServiceProfile) -> int:
    """Per-sync fixed overhead implied by the profile's cost parameters.

    Mirrors the micro engine: handshake (when each sync opens a connection),
    HTTP framing per request, service metadata, and the notification push.
    """
    costs = profile.protocol
    overhead = profile.overhead
    handshake = 0
    if overhead.connection_per_sync:
        handshake = (costs.tcp_handshake_up + costs.tcp_handshake_down
                     + (costs.tls_handshake_up + costs.tls_handshake_down
                        if costs.use_tls else 0))
    framing = (costs.request_header + costs.response_header) \
        * max(overhead.requests_per_sync, 1)
    return (handshake + framing + overhead.meta_up + overhead.meta_down
            + overhead.notify_down)


def _wire_payload(profile: ServiceProfile, size: int, compressed: int) -> int:
    """Upload bytes for content with a known reference-compressed size."""
    saving_fraction = _LEVEL_SAVING_FRACTION[profile.upload_compression.level]
    achievable = max(size - compressed, 0)
    wire = size - int(achievable * saving_fraction)
    return wire + int(profile.overhead.per_byte_factor * wire)


def _in_creation_batch(record: FileRecord,
                       batch_windows: Dict[Tuple[str, str], List[float]],
                       window: float = BDS_BATCH_WINDOW) -> bool:
    times = batch_windows.get((record.service, record.user), [])
    # times is sorted; record.created_at is in it.  Neighbour within window?
    index = bisect.bisect_left(times, record.created_at)
    before = index > 0 and record.created_at - times[index - 1] <= window
    after = (index + 1 < len(times)
             and times[index + 1] - record.created_at <= window)
    return before or after


def _mod_fractions(seed: int, profile_name: str, index: int,
                   count: int) -> List[float]:
    """Modification fractions for one record: an independent RNG stream.

    Keyed by (seed, profile, global record index) so any shard can
    reproduce exactly the draws the sequential replay makes for this
    record — the determinism contract that makes parallel == sequential.
    """
    rng = random.Random(f"replay:{seed}:{profile_name}:{index}")
    return [min(1.0, rng.lognormvariate(_MOD_FRACTION_LOG_MU,
                                        _MOD_FRACTION_LOG_SIGMA))
            for _ in range(count)]


# ---------------------------------------------------------------------------
# Compact dedup-candidate representation (the phase-1 wire format)
# ---------------------------------------------------------------------------

#: Bytes per unit digest.  Unit identities (segment-id blobs, up to 128 KB
#: for a 2 GB file's full-file key) are folded to fixed-width blake2b
#: digests before they enter the dedup set or the candidate state — the
#: collision probability over a trillion distinct units is < 2⁻⁸⁰, far
#: below any other modelling noise, and it is what makes the candidate
#: summaries compact enough to ship between processes.
_DIGEST_SIZE = 16


def _unit_digest(key) -> bytes:
    """Fixed-width identity digest for one dedup unit.

    ``key`` is the raw unit identity (the segment-id blob for a block, or
    the ``(blob, size)`` tuple of a full-file key).  Both the sequential
    and the sharded replay dedup on these digests, so the two paths agree
    by construction.
    """
    if isinstance(key, tuple):
        blob, size = key
        digest = hashlib.blake2b(blob, digest_size=_DIGEST_SIZE)
        digest.update(size.to_bytes(8, "little"))
    else:
        digest = hashlib.blake2b(key, digest_size=_DIGEST_SIZE)
    return digest.digest()


class _ShardCandidates:
    """Phase-1 candidate state for one shard under CROSS_USER dedup.

    Flat, integer-packed columns instead of per-record objects: global
    record indices, users, pre-dedup wires, unit-length sums, and a unit
    table (digest + length) addressed by per-record offsets.  The whole
    structure stays resident in the worker process that produced it; only
    :meth:`summary` — one digest and one owning record index per fresh
    unit — crosses the IPC boundary.
    """

    __slots__ = ("indices", "users", "wires", "total_lens", "offsets",
                 "unit_digests", "unit_lengths")

    def __init__(self) -> None:
        self.indices: List[int] = []
        self.users: List[str] = []
        self.wires: List[int] = []
        self.total_lens: List[int] = []
        self.offsets: List[int] = [0]
        self.unit_digests: List[bytes] = []
        self.unit_lengths: List[int] = []

    def __len__(self) -> int:
        return len(self.indices)

    def add(self, index: int, user: str, wire: int, total_len: int,
            fresh_units: Sequence[Tuple[bytes, int]]) -> None:
        self.indices.append(index)
        self.users.append(user)
        self.wires.append(wire)
        self.total_lens.append(total_len)
        for digest, length in fresh_units:
            self.unit_digests.append(digest)
            self.unit_lengths.append(length)
        self.offsets.append(len(self.unit_digests))

    def summary(self) -> Tuple[bytes, bytes]:
        """Packed (digest blob, int64 owner-index blob), one entry per
        fresh unit.  Within a shard every fresh unit belongs to exactly one
        candidate record (later occurrences were deduplicated locally), and
        shard records are scanned in increasing global index order, so the
        owner index *is* the shard's first occurrence of that unit.
        """
        owners = array("q")
        for position, index in enumerate(self.indices):
            owners.extend(
                [index] * (self.offsets[position + 1] - self.offsets[position]))
        return b"".join(self.unit_digests), owners.tobytes()

    def settle(self, winners: Dict[bytes, int]) -> Dict[str, int]:
        """Phase 2: per-user re-credit for units lost to an earlier shard.

        ``winners`` maps each *contested* unit digest (candidates in more
        than one shard) to the globally smallest candidate record index.
        Uncontested units are always kept.  The correction per record is
        computed with the *same* integer expression phase 1 used —
        ``wire * shipped // total_len`` — so the merged report equals the
        sequential one bit for bit, with no float rounding above 2**53.
        """
        credits: Dict[str, int] = {}
        lookup = winners.get
        for position, index in enumerate(self.indices):
            start = self.offsets[position]
            end = self.offsets[position + 1]
            shipped = 0
            kept = 0
            for unit in range(start, end):
                length = self.unit_lengths[unit]
                shipped += length
                winner = lookup(self.unit_digests[unit])
                if winner is None or winner == index:
                    kept += length
            if kept == shipped:
                continue
            wire = self.wires[position]
            total_len = self.total_lens[position]
            delta = wire * shipped // total_len - wire * kept // total_len
            if delta:
                user = self.users[position]
                credits[user] = credits.get(user, 0) + delta
        return credits


def _replay_records(shard: Sequence[Tuple[int, FileRecord]],
                    profile: ServiceProfile, seed: int,
                    collect_candidates: bool,
                    ) -> Tuple[ReplayReport, Optional[_ShardCandidates]]:
    """Replay one shard of (global index, record) pairs.

    The single code path behind both the sequential and the parallel
    replay: :func:`replay_trace` calls it once with the whole trace (where
    the local dedup state *is* the global state), shards call it with
    per-user partitions.  ``collect_candidates`` turns on the phase-1 side
    of the CROSS_USER two-phase protocol.
    """
    report = ReplayReport(service=profile.service,
                          access=profile.access.value)
    fixed = _fixed_overhead(profile)
    bds = profile.bds

    # Precompute creation-time neighbourhoods for BDS eligibility.  All of
    # a user's records live in this shard, so the neighbourhoods equal the
    # sequential ones.
    small_times: Dict[Tuple[str, str], List[float]] = {}
    for _, record in shard:
        if record.size < SMALL_FILE_THRESHOLD:
            small_times.setdefault((record.service, record.user), []).append(
                record.created_at)
    for times in small_times.values():
        times.sort()

    dedup = profile.dedup
    seen_units: Set = set()
    candidates = _ShardCandidates() if collect_candidates else None

    for index, record in shard:
        report.file_count += 1
        # ---- creation upload ------------------------------------------------
        report.data_update_bytes += record.size
        raw_wire = record.size + int(profile.overhead.per_byte_factor * record.size)
        wire = _wire_payload(profile, record.size, record.compressed_size)
        report.saved_by_compression += max(raw_wire - wire, 0)

        if dedup.enabled:
            shipped = 0
            fresh_units: List[Tuple[bytes, int]] = []
            if dedup.granularity is DedupGranularity.FULL_FILE:
                keys = [(record.full_file_key(), record.size)]
            else:
                keys = list(record.block_keys(dedup.block_size))
            total_len = sum(length for _, length in keys)
            for key, length in keys:
                digest = _unit_digest(key)
                scope_key = digest if dedup.scope is DedupScope.CROSS_USER \
                    else (record.user, digest)
                if scope_key in seen_units:
                    continue
                seen_units.add(scope_key)
                shipped += length
                if collect_candidates:
                    fresh_units.append((digest, length))
            if total_len == 0:
                # Explicit empty-units branch (formerly a silent `or 1`
                # guard): a size-0 file — or a record with no content
                # units at all — has no bytes to negotiate, so dedup
                # neither ships nor saves anything and the wire passes
                # through unchanged (it is 0 for size-0 records).
                deduped_wire = wire
            else:
                deduped_wire = wire * shipped // total_len
            report.saved_by_dedup += wire - deduped_wire
            if collect_candidates and fresh_units and total_len > 0:
                candidates.add(index, record.user, wire, total_len,
                               fresh_units)
            wire = deduped_wire

        overhead = fixed
        if (record.size < SMALL_FILE_THRESHOLD and bds.mode is not BdsMode.NONE
                and _in_creation_batch(record, small_times)):
            batched = bds.per_file_bytes if bds.mode is BdsMode.FULL \
                else max(bds.per_file_bytes, fixed // 8)
            report.saved_by_bds += max(fixed - batched, 0)
            overhead = batched
        report.traffic_bytes += wire + overhead
        report.overhead_bytes += overhead
        report.upload_events += 1
        report.per_user_traffic[record.user] = \
            report.per_user_traffic.get(record.user, 0) + wire + overhead

        # ---- modifications ---------------------------------------------------
        if record.modify_count:
            fractions = _mod_fractions(seed, profile.name, index,
                                       record.modify_count)
        else:
            fractions = []
        for fraction in fractions:
            altered = max(1, int(record.size * fraction))
            report.data_update_bytes += altered
            full_wire = _wire_payload(profile, record.size,
                                      record.compressed_size)
            if profile.uses_ids:
                # Delta ships the altered region rounded up to whole blocks.
                blocks = -(-altered // profile.delta_block) + 1
                delta_wire = min(blocks * profile.delta_block, record.size)
                # size == 0 forces delta_wire to 0 above, so the ratio is
                # never consumed on that branch; no max(size, 1) masking.
                ratio = (record.compressed_size / record.size
                         if record.size else 0.0)
                delta_wire = _wire_payload(
                    profile, delta_wire, int(delta_wire * ratio))
                report.saved_by_ids += max(full_wire - delta_wire, 0)
                wire = delta_wire
            else:
                wire = full_wire
            report.traffic_bytes += wire + fixed
            report.overhead_bytes += fixed
            report.upload_events += 1
            report.per_user_traffic[record.user] = \
                report.per_user_traffic.get(record.user, 0) + wire + fixed
            report.per_user_modification_traffic[record.user] = \
                report.per_user_modification_traffic.get(record.user, 0) \
                + wire + fixed
            report.per_user_modification_update[record.user] = \
                report.per_user_modification_update.get(record.user, 0) \
                + altered

    return report, candidates


def replay_trace(trace: Trace, profile: ServiceProfile,
                 seed: int = 0) -> ReplayReport:
    """Estimate the trace-wide sync traffic under one service profile."""
    report, _ = _replay_records(list(enumerate(trace)), profile, seed,
                                collect_candidates=False)
    return report


# ---------------------------------------------------------------------------
# Parallel sharded replay
# ---------------------------------------------------------------------------

def _shard_by_user(trace: Trace,
                   shard_count: int) -> List[List[Tuple[int, FileRecord]]]:
    """Partition (index, record) pairs into user-disjoint, balanced shards.

    Users are assigned greedily (heaviest first, ties by first appearance)
    to the least-loaded shard — deterministic, so shard contents depend
    only on the trace and ``shard_count``.
    """
    counts = trace.user_file_counts()
    # Stable sort: equal counts keep first-appearance order.
    ordered = sorted(counts.items(), key=lambda item: -item[1])
    loads = [0] * shard_count
    assignment: Dict[str, int] = {}
    for user, count in ordered:
        target = min(range(shard_count), key=lambda idx: loads[idx])
        assignment[user] = target
        loads[target] += count
    shards: List[List[Tuple[int, FileRecord]]] = [[] for _ in range(shard_count)]
    for index, record in enumerate(trace):
        shards[assignment[record.user]].append((index, record))
    return [shard for shard in shards if shard]


def _user_orders(records: Iterable[FileRecord]) -> Tuple[List[str], List[str]]:
    """(creation order, modification order) of users, by first appearance.

    Sequential replay inserts users into the per-user dicts on their first
    record (traffic) and first modified record (modification dicts); the
    parallel merge re-canonicalises to these orders.
    """
    creation_order: List[str] = []
    modification_order: List[str] = []
    seen_any: Set[str] = set()
    seen_modified: Set[str] = set()
    for record in records:
        if record.user not in seen_any:
            seen_any.add(record.user)
            creation_order.append(record.user)
        if record.modify_count > 0 and record.user not in seen_modified:
            seen_modified.add(record.user)
            modification_order.append(record.user)
    return creation_order, modification_order


def _restore_user_order(report: ReplayReport, creation_order: Sequence[str],
                        modification_order: Sequence[str]) -> None:
    """Reorder per-user dicts to sequential insertion order.

    The merged dicts carry shard order; rebuilding them makes the parallel
    report byte-identical to the sequential one — same ``repr``, same
    JSON — not merely equal.
    """
    report.per_user_traffic = {
        user: report.per_user_traffic[user]
        for user in creation_order if user in report.per_user_traffic}
    report.per_user_modification_traffic = {
        user: report.per_user_modification_traffic[user]
        for user in modification_order
        if user in report.per_user_modification_traffic}
    report.per_user_modification_update = {
        user: report.per_user_modification_update[user]
        for user in modification_order
        if user in report.per_user_modification_update}


def _parse_summary(summary: Tuple[bytes, bytes]
                   ) -> Tuple[List[bytes], List[int]]:
    blob, owner_blob = summary
    owners = array("q")
    owners.frombytes(owner_blob)
    digests = [blob[unit * _DIGEST_SIZE:(unit + 1) * _DIGEST_SIZE]
               for unit in range(len(owners))]
    return digests, list(owners)


def _contested_winners(summaries: Sequence[Optional[Tuple[bytes, bytes]]]
                       ) -> Tuple[Dict[bytes, int], List[int]]:
    """Resolve the cross-shard first-occurrence index from shard summaries.

    Returns ``(winners, losers)``: ``winners`` maps each unit digest whose
    candidates span **more than one shard** to the smallest candidate
    record index; ``losers`` lists the shard positions that hold at least
    one contested unit they did not win.  Units confined to a single shard
    are already settled by that shard's local first-occurrence pass, which
    is what lets phase 2 skip untouched shards — or vanish entirely.
    """
    best: Dict[bytes, int] = {}
    contested: Dict[bytes, bool] = {}   # dict-as-ordered-set: deterministic
    parsed: List[Optional[Tuple[List[bytes], List[int]]]] = []
    for summary in summaries:
        if not summary:
            parsed.append(None)
            continue
        digests, owners = _parse_summary(summary)
        parsed.append((digests, owners))
        for digest, index in zip(digests, owners):
            current = best.get(digest)
            if current is None:
                best[digest] = index
            else:
                contested[digest] = True
                if index < current:
                    best[digest] = index
    winners = {digest: best[digest] for digest in contested}
    losers: List[int] = []
    for position, entry in enumerate(parsed):
        if entry is None:
            continue
        digests, owners = entry
        if any(winners.get(digest, index) != index
               for digest, index in zip(digests, owners)):
            losers.append(position)
    return winners, losers


def _pack_winner_table(winners: Dict[bytes, int]) -> Tuple[bytes, bytes]:
    indices = array("q", winners.values())
    return b"".join(winners.keys()), indices.tobytes()


def _unpack_winner_table(digest_blob: bytes,
                         index_blob: bytes) -> Dict[bytes, int]:
    indices = array("q")
    indices.frombytes(index_blob)
    return {digest_blob[entry * _DIGEST_SIZE:(entry + 1) * _DIGEST_SIZE]:
            indices[entry] for entry in range(len(indices))}


#: Serialises ``os.fork`` against every parent-side lock a fork child
#: could inherit in the locked state.  Two such locks exist on this path:
#: the stdio buffer locks (``Process.start`` flushes the std streams
#: before forking) and the resource tracker's send lock (acquired when a
#: shared-memory segment is registered, unregistered, or the tracker is
#: started).  If another thread holds either at the instant of fork, the
#: child deadlocks the moment *it* needs the lock — flushing at exit, or
#: attaching the winner table.  So: forking and every tracker-touching
#: operation take this lock; one pool per thread is then safe.
_fork_lock = threading.Lock()


def _publish_winner_table(winners: Dict[bytes, int]
                          ) -> Tuple[tuple, Callable[[], None]]:
    """Publish the contested-winner index for workers to read.

    Preferred transport is one ``multiprocessing.shared_memory`` segment
    (written once, mapped read-only by every settling worker) so the table
    is not re-pickled per worker; platforms without shared memory fall
    back to shipping the packed blobs inline through each pipe.  Returns
    ``(descriptor, cleanup)`` — call ``cleanup()`` after every settle reply
    arrived.
    """
    digest_blob, index_blob = _pack_winner_table(winners)
    try:
        from multiprocessing import shared_memory
        # Creating a segment registers it with the resource tracker, which
        # briefly holds the tracker's lock — serialise against forks (see
        # _fork_lock) so no child is born with that lock held.
        with _fork_lock:
            segment = shared_memory.SharedMemory(
                create=True, size=len(digest_blob) + len(index_blob))
    except Exception:
        return ("inline", digest_blob, index_blob), (lambda: None)
    split = len(digest_blob)
    segment.buf[:split] = digest_blob
    segment.buf[split:split + len(index_blob)] = index_blob

    def cleanup() -> None:
        segment.close()
        try:
            with _fork_lock:  # unlink unregisters → tracker lock again
                segment.unlink()
        except FileNotFoundError:
            pass

    return ("shm", segment.name, len(winners)), cleanup


def _load_winner_table(descriptor: tuple) -> Dict[bytes, int]:
    """Worker-side inverse of :func:`_publish_winner_table`."""
    if descriptor[0] == "inline":
        return _unpack_winner_table(descriptor[1], descriptor[2])
    _, name, count = descriptor
    from multiprocessing import shared_memory
    # Attach-only: the parent owns the segment's lifetime and unlinks it
    # after the settle round.  Workers are fork children sharing the
    # parent's resource tracker, so the attach-side register is a set-add
    # no-op there and needs no compensating unregister (an unregister here
    # would strip the parent's own registration and make its unlink race
    # the tracker).
    segment = shared_memory.SharedMemory(name=name)
    split = count * _DIGEST_SIZE
    try:
        blob = bytes(segment.buf[:split + count * 8])
    finally:
        segment.close()
    return _unpack_winner_table(blob[:split], blob[split:])


def _portable_profile(profile: ServiceProfile) -> ServiceProfile:
    """A pickle-safe copy of ``profile`` for the worker pipe.

    Profiles carry defer-policy factory lambdas that cannot be pickled;
    the replay estimator never defers, so the factory is swapped for the
    no-op policy class before the profile crosses the pipe.  Every other
    field is plain data, which is what lets the pool replay *ad hoc*
    profiles (``dataclasses.replace`` variants), not just registry ones.
    """
    return replace(profile, defer_factory=NoDefer)


def _pool_worker_main(channel, shard: List[Tuple[int, FileRecord]]) -> None:
    """Worker loop for one shard.

    The shard rides into the process through the fork (``Process`` args —
    no module global, no pickling); commands and compact results ride the
    pipe.  Phase-1 candidate state stays resident here between a
    ``replay`` and its ``settle``, which is what keeps candidates off the
    IPC boundary entirely.
    """
    candidates: Optional[_ShardCandidates] = None
    try:
        while True:
            message = channel.recv()
            command = message[0]
            try:
                if command == "feed":
                    shard.extend(message[1])
                    continue
                if command == "replay":
                    _, profile, seed, collect = message
                    report, candidates = _replay_records(
                        shard, profile, seed, collect)
                    summary = candidates.summary() \
                        if candidates is not None and len(candidates) else None
                    channel.send(("ok", (report, summary)))
                elif command == "settle":
                    winners = _load_winner_table(message[1])
                    credits = candidates.settle(winners) \
                        if candidates is not None else {}
                    channel.send(("ok", credits))
                elif command == "close":
                    return
                else:
                    channel.send(("error", f"unknown command {command!r}"))
            except Exception:
                channel.send(("error", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            channel.close()
        except OSError:
            pass


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    return workers or os.cpu_count() or 1


#: Records per ``feed`` message when streaming a record source into a live
#: pool: large enough to amortise pickling, small enough to keep parent
#: memory bounded by a batch rather than the trace.
_FEED_BATCH = 1024


class ReplayPool:
    """A persistent, user-sharded pool of replay worker processes.

    Forks one worker per shard **once** and reuses the same processes for
    every :meth:`replay` call — :func:`replay_all` replays ~18 profiles
    against one fork instead of forking ~18 pools.  Each worker owns its
    shard for the pool's lifetime (received through the fork, or streamed
    in batches by :meth:`from_records`), so per-call IPC is limited to a
    profile, a seed, and the compact phase-1/phase-2 dedup exchanges.

    Byte-identity contract: ``pool.replay(profile, seed)`` equals
    ``replay_trace(trace, profile, seed)`` for the trace (or record
    stream, in stream order) the pool was built from, at any worker
    count.  Platforms without the ``fork`` start method run the shard
    pipeline in-process — same results, no speedup.
    """

    def __init__(self, trace: Trace, workers: Optional[int] = None) -> None:
        resolved = _resolve_workers(workers)
        self._shards: List[List[Tuple[int, FileRecord]]] = \
            _shard_by_user(trace, resolved)
        self._creation_order, self._modification_order = _user_orders(trace)
        self._record_count = len(trace)
        self._channels: list = []
        self._processes: list = []
        self._closed = False
        if resolved > 1 and len(self._shards) > 1:
            self._start(self._shards)

    @classmethod
    def from_records(cls, records: Iterable[FileRecord],
                     workers: Optional[int] = None) -> "ReplayPool":
        """Build a pool by streaming records into the workers.

        The workers fork *first* with empty shards; records are then
        assigned to users' shards on first appearance (least-loaded shard,
        ties to the lowest) and shipped in batches, so the parent never
        materialises the trace — peak parent memory is one feed batch plus
        the record source's own state.  Replay results are byte-identical
        to ``replay_trace`` over the same records in stream order.
        """
        resolved = _resolve_workers(workers)
        pool = cls.__new__(cls)
        pool._shards = [[] for _ in range(resolved)]
        pool._creation_order = []
        pool._modification_order = []
        pool._record_count = 0
        pool._channels = []
        pool._processes = []
        pool._closed = False
        if resolved > 1:
            pool._start(pool._shards)
        live = bool(pool._processes)
        buffers: List[List[Tuple[int, FileRecord]]] = \
            [[] for _ in range(resolved)]
        loads = [0] * resolved
        assignment: Dict[str, int] = {}
        seen_modified: Set[str] = set()
        for index, record in enumerate(records):
            user = record.user
            slot = assignment.get(user)
            if slot is None:
                slot = min(range(resolved), key=lambda idx: loads[idx])
                assignment[user] = slot
                pool._creation_order.append(user)
            loads[slot] += 1
            if record.modify_count > 0 and user not in seen_modified:
                seen_modified.add(user)
                pool._modification_order.append(user)
            pool._record_count += 1
            if live:
                buffers[slot].append((index, record))
                if len(buffers[slot]) >= _FEED_BATCH:
                    pool._channels[slot].send(("feed", buffers[slot]))
                    buffers[slot] = []
            else:
                pool._shards[slot].append((index, record))
        if live:
            for slot, batch in enumerate(buffers):
                if batch:
                    pool._channels[slot].send(("feed", batch))
        else:
            pool._shards = [shard for shard in pool._shards if shard]
        return pool

    @classmethod
    def from_shards(cls, shards: Iterable[Trace],
                    workers: Optional[int] = None) -> "ReplayPool":
        """Build a pool from a shard stream (e.g. ``iter_trace_shards``).

        Equivalent to :meth:`from_records` over the flattened stream: the
        replay's sequential reference is the concatenated shard ordering.
        """
        return cls.from_records(
            (record for shard in shards for record in shard),
            workers=workers)

    # -- lifecycle ---------------------------------------------------------

    def _start(self, shards: List[List[Tuple[int, FileRecord]]]) -> None:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            return
        with _fork_lock:
            try:
                # Start the resource tracker *before* forking so every
                # worker inherits it: attaching the shared-memory winner
                # table then re-registers the same name with the one shared
                # tracker (a set-add no-op) instead of each worker spawning
                # a private tracker that would race the parent's unlink at
                # exit.
                from multiprocessing import resource_tracker
                resource_tracker.ensure_running()
            except (ImportError, AttributeError, OSError):
                # No tracker on this platform: the shm path degrades to
                # each worker tracking its own attach, which is still
                # correct.
                pass
            for shard in shards:
                parent_channel, child_channel = context.Pipe()
                process = context.Process(target=_pool_worker_main,
                                          args=(child_channel, shard),
                                          daemon=True)
                process.start()
                child_channel.close()
                self._channels.append(parent_channel)
                self._processes.append(process)

    def close(self) -> None:
        """Shut the workers down; the pool is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for channel in self._channels:
            try:
                channel.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for channel in self._channels:
            try:
                channel.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10)
        self._channels = []
        self._processes = []

    def __enter__(self) -> "ReplayPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except (OSError, ValueError, AttributeError, TypeError):
            # Interpreter teardown: pipes and process handles may already
            # be half-destroyed; __del__ must never raise.
            pass

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def worker_count(self) -> int:
        """Live worker processes (0 when running shards in-process)."""
        return len(self._processes)

    # -- replay ------------------------------------------------------------

    def replay(self, profile: ServiceProfile, seed: int = 0) -> ReplayReport:
        """Replay the pool's trace under ``profile``; byte-identical to
        :func:`replay_trace` on the same records."""
        report, _, _ = self._replay_full(profile, seed)
        return report

    def replay_audited(self, profile: ServiceProfile,
                       seed: int = 0) -> ReplayReport:
        """Replay and verify the replay-conservation invariant over the
        merge: shard reports must sum to the merged report, with phase-2
        settle credits moving bytes from ``traffic_bytes`` into
        ``saved_by_dedup`` exactly, user by user.  Raises the first
        :class:`~repro.obs.AuditViolation` found.
        """
        from ..obs.audit import verify_replay_merge, verify_replay_report
        report, parts, credits = self._replay_full(profile, seed)
        violations = verify_replay_merge(parts, report,
                                         settle_credits=credits)
        violations.extend(verify_replay_report(report))
        if violations:
            raise violations[0]
        return report

    def _replay_full(self, profile: ServiceProfile, seed: int
                     ) -> Tuple[ReplayReport, List[ReplayReport],
                                Dict[str, int]]:
        if self._closed:
            raise RuntimeError("replay pool is closed")
        collect = (profile.dedup.enabled
                   and profile.dedup.scope is DedupScope.CROSS_USER)
        local_candidates: List[Optional[_ShardCandidates]] = []
        if self._processes:
            safe_profile = _portable_profile(profile)
            for channel in self._channels:
                channel.send(("replay", safe_profile, seed, collect))
            results = [self._receive(channel) for channel in self._channels]
            parts = [part for part, _ in results]
            summaries = [summary for _, summary in results]
        else:
            parts = []
            summaries = []
            for shard in self._shards:
                part, candidates = _replay_records(shard, profile, seed,
                                                   collect)
                parts.append(part)
                local_candidates.append(candidates)
                summaries.append(
                    candidates.summary()
                    if candidates is not None and len(candidates) else None)
        if not parts:
            empty = ReplayReport(service=profile.service,
                                 access=profile.access.value)
            return empty, [], {}
        merged = ReplayReport.merge(parts)
        credits: Dict[str, int] = {}
        if collect:
            winners, losers = _contested_winners(summaries)
            if winners and losers:
                credits = self._settle(winners, losers, local_candidates)
                adjustment = sum(credits.values())
                merged.traffic_bytes -= adjustment
                merged.saved_by_dedup += adjustment
                for user, value in credits.items():
                    merged.per_user_traffic[user] -= value
        _restore_user_order(merged, self._creation_order,
                            self._modification_order)
        return merged, parts, credits

    def _settle(self, winners: Dict[bytes, int], losers: Sequence[int],
                local_candidates: Sequence[Optional[_ShardCandidates]]
                ) -> Dict[str, int]:
        shard_credits: List[Dict[str, int]] = []
        if self._processes:
            descriptor, cleanup = _publish_winner_table(winners)
            try:
                for position in losers:
                    self._channels[position].send(("settle", descriptor))
                shard_credits = [self._receive(self._channels[position])
                                 for position in losers]
            finally:
                cleanup()
        else:
            for position in losers:
                candidates = local_candidates[position]
                shard_credits.append(
                    candidates.settle(winners) if candidates else {})
        credits: Dict[str, int] = {}
        for per_user in shard_credits:
            for user, value in per_user.items():
                credits[user] = credits.get(user, 0) + value
        return credits

    def _receive(self, channel):
        try:
            status, payload = channel.recv()
        except (EOFError, OSError):
            self.close()
            raise RuntimeError("replay worker exited unexpectedly")
        if status != "ok":
            self.close()
            raise RuntimeError(f"replay worker failed:\n{payload}")
        return payload


def replay_trace_parallel(trace: Trace, profile: ServiceProfile,
                          workers: Optional[int] = None,
                          seed: int = 0) -> ReplayReport:
    """Sharded, multi-process replay; byte-identical to :func:`replay_trace`.

    One-shot convenience over :class:`ReplayPool` (which is the API to use
    when replaying several profiles against one trace — the pool forks
    once and is reused).  Records are sharded by user (exact for SAME_USER
    dedup and BDS batch windows); CROSS_USER dedup is settled by the
    two-phase candidate/merge protocol.  ``workers=None`` uses the CPU
    count; ``workers=1`` runs the shard pipeline in-process (useful for
    testing the merge path without process overhead).  On platforms
    without the ``fork`` start method the shards also run in-process —
    same results, no speedup.
    """
    with ReplayPool(trace, workers=workers) as pool:
        return pool.replay(profile, seed=seed)


def modification_share(report: ReplayReport) -> Dict[str, float]:
    """Per-user fraction of sync traffic *wasted* on modifications.

    [36] defines the traffic overuse problem as modification sync traffic
    far exceeding the useful data-update bytes; the share here is that
    excess (modification traffic minus altered bytes) over the user's
    total sync traffic.
    """
    shares = {}
    for user, total in report.per_user_traffic.items():
        if total <= 0:
            continue
        mod_traffic = report.per_user_modification_traffic.get(user, 0)
        useful = report.per_user_modification_update.get(user, 0)
        shares[user] = max(mod_traffic - useful, 0) / total
    return shares


def traffic_overuse_fraction(report: ReplayReport,
                             threshold: float = 0.10) -> float:
    """Fraction of users losing more than ``threshold`` of their traffic
    to modification overuse.

    The paper cites (from the ISP-level Dropbox trace of [12, 36]) that for
    8.5 % of Dropbox users, more than 10 % of their sync traffic is caused
    by frequent modifications; this reproduces the statistic on any replay.
    """
    shares = modification_share(report)
    if not shares:
        return 0.0
    return sum(1 for share in shares.values() if share > threshold) / len(shares)


def replay_all(trace: Optional[Trace] = None,
               services: Optional[Sequence[str]] = None,
               access: AccessMethod = AccessMethod.PC,
               seed: int = 0,
               workers: int = 1,
               pool: Optional[ReplayPool] = None) -> List[ReplayReport]:
    """Replay the trace under every service, sorted by estimated traffic.

    With ``workers > 1`` a single :class:`ReplayPool` is forked once and
    reused across all profiles; pass ``pool`` to reuse an existing pool
    (e.g. one streamed from ``iter_trace_records``) — the caller keeps
    ownership and must close it.
    """
    from ..client import SERVICES
    names = services or SERVICES
    owns_pool = False
    if pool is None and workers > 1 and trace is not None:
        pool = ReplayPool(trace, workers=workers)
        owns_pool = True
    try:
        if pool is not None:
            reports = [pool.replay(service_profile(name, access), seed=seed)
                       for name in names]
        else:
            if trace is None:
                raise ValueError("replay_all needs a trace or a pool")
            reports = [replay_trace(trace, service_profile(name, access),
                                    seed=seed)
                       for name in names]
    finally:
        if owns_pool:
            pool.close()
    reports.sort(key=lambda report: report.traffic_bytes)
    return reports

"""Macro-level trace replay: what would each service pay for this trace?

The paper's motivation is macro-economic: at a billion files a day, sync
traffic is a line item (§1 estimates Dropbox's S3 bill from per-sync
averages).  The micro simulator in :mod:`repro.client` measures single
sessions exactly, but replaying 222,632 files — some of them gigabytes —
through it byte-for-byte is not feasible; this module instead *estimates*
each service's trace-wide traffic analytically from the very same design
choices the micro engine implements, and decomposes the total into what
each mechanism (compression, dedup, BDS, IDS) saves.

The estimator is validated against the micro engine in
tests/test_replay.py: for small synthetic traces the two agree on every
qualitative ordering and within tens of percent on totals.

Scaling: :func:`replay_trace_parallel` shards the replay across processes
by user and is **byte-identical** to :func:`replay_trace` at any worker
count.  Three properties make that possible (see DESIGN.md, "Parallel
replay & determinism contract"):

* every record's modification RNG is its own stream keyed by
  ``(seed, profile, global record index)`` — no draw-order coupling
  between records;
* BDS batch eligibility and ``SAME_USER`` dedup only couple records of
  one user, and sharding is by user;
* ``CROSS_USER`` dedup couples records globally, so shards emit per-unit
  first-occurrence *candidates* keyed by global record index, and a merge
  pass resolves true first occurrences and re-credits ``saved_by_dedup``
  exactly (two-phase protocol).
"""

from __future__ import annotations

import bisect
import multiprocessing
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..client import AccessMethod, ServiceProfile, service_profile
from ..client.profiles import BdsMode
from ..cloud.dedup import DedupGranularity, DedupScope
from ..compress import CompressionLevel
from .analysis import BDS_BATCH_WINDOW, SMALL_FILE_THRESHOLD
from .schema import FileRecord, Trace

#: Fraction of a file's *achievable* compression each level realises
#: (calibrated against repro.compress on the Experiment 4 text corpus:
#: HIGH ≈ 0.444, MODERATE ≈ 0.578, LOW ≈ 0.773 of original → savings
#: fractions relative to HIGH's saving).
_LEVEL_SAVING_FRACTION = {
    CompressionLevel.NONE: 0.0,
    CompressionLevel.LOW: 0.41,
    CompressionLevel.MODERATE: 0.76,
    CompressionLevel.HIGH: 1.0,
}

#: Modelled fraction of a file altered per modification (median ≈ 2 %,
#: heavy-tailed — office documents re-save small diffs, media re-encodes
#: everything).
_MOD_FRACTION_LOG_MU = -3.9   # exp(-3.9) ≈ 0.02
_MOD_FRACTION_LOG_SIGMA = 1.0

#: Counter fields summed exactly by :meth:`ReplayReport.merge`.
_MERGE_COUNTERS = (
    "file_count", "upload_events", "data_update_bytes", "traffic_bytes",
    "overhead_bytes", "saved_by_compression", "saved_by_dedup",
    "saved_by_bds", "saved_by_ids",
)

#: Per-user dict fields merged by key-wise addition.
_MERGE_DICTS = (
    "per_user_traffic", "per_user_modification_traffic",
    "per_user_modification_update",
)


@dataclass
class ReplayReport:
    """Trace-wide traffic estimate for one service profile."""

    service: str
    access: str
    file_count: int = 0
    upload_events: int = 0
    data_update_bytes: int = 0
    traffic_bytes: int = 0
    overhead_bytes: int = 0
    saved_by_compression: int = 0
    saved_by_dedup: int = 0
    saved_by_bds: int = 0
    saved_by_ids: int = 0
    per_user_traffic: Dict[str, int] = field(default_factory=dict)
    per_user_modification_traffic: Dict[str, int] = field(default_factory=dict)
    per_user_modification_update: Dict[str, int] = field(default_factory=dict)

    @property
    def tue(self) -> float:
        if self.data_update_bytes <= 0:
            # Zero-size convention (PR 3): traffic with no data update is
            # infinitely inefficient; no traffic at all is undefined.
            return float("inf") if self.traffic_bytes > 0 else float("nan")
        return self.traffic_bytes / self.data_update_bytes

    @property
    def total_savings(self) -> int:
        return (self.saved_by_compression + self.saved_by_dedup
                + self.saved_by_bds + self.saved_by_ids)

    @classmethod
    def merge(cls, reports: Sequence["ReplayReport"]) -> "ReplayReport":
        """Exact sum of shard reports: all counters and per-user dicts.

        Every field is additive, so merging is associative and
        order-insensitive up to dict insertion order (the parallel replay
        canonicalises that separately).  Raises on an empty sequence or on
        reports for different profiles — a merged report must mean one
        (service, access) pair.
        """
        if not reports:
            raise ValueError("cannot merge zero reports")
        first = reports[0]
        for other in reports[1:]:
            if (other.service, other.access) != (first.service, first.access):
                raise ValueError(
                    f"cannot merge reports for different profiles: "
                    f"{first.service}/{first.access} vs "
                    f"{other.service}/{other.access}")
        merged = cls(service=first.service, access=first.access)
        for report in reports:
            for name in _MERGE_COUNTERS:
                setattr(merged, name, getattr(merged, name) + getattr(report, name))
            for name in _MERGE_DICTS:
                target = getattr(merged, name)
                for user, value in getattr(report, name).items():
                    target[user] = target.get(user, 0) + value
        return merged


def _fixed_overhead(profile: ServiceProfile) -> int:
    """Per-sync fixed overhead implied by the profile's cost parameters.

    Mirrors the micro engine: handshake (when each sync opens a connection),
    HTTP framing per request, service metadata, and the notification push.
    """
    costs = profile.protocol
    overhead = profile.overhead
    handshake = 0
    if overhead.connection_per_sync:
        handshake = (costs.tcp_handshake_up + costs.tcp_handshake_down
                     + (costs.tls_handshake_up + costs.tls_handshake_down
                        if costs.use_tls else 0))
    framing = (costs.request_header + costs.response_header) \
        * max(overhead.requests_per_sync, 1)
    return (handshake + framing + overhead.meta_up + overhead.meta_down
            + overhead.notify_down)


def _wire_payload(profile: ServiceProfile, size: int, compressed: int) -> int:
    """Upload bytes for content with a known reference-compressed size."""
    saving_fraction = _LEVEL_SAVING_FRACTION[profile.upload_compression.level]
    achievable = max(size - compressed, 0)
    wire = size - int(achievable * saving_fraction)
    return wire + int(profile.overhead.per_byte_factor * wire)


def _in_creation_batch(record: FileRecord,
                       batch_windows: Dict[Tuple[str, str], List[float]],
                       window: float = BDS_BATCH_WINDOW) -> bool:
    times = batch_windows.get((record.service, record.user), [])
    # times is sorted; record.created_at is in it.  Neighbour within window?
    index = bisect.bisect_left(times, record.created_at)
    before = index > 0 and record.created_at - times[index - 1] <= window
    after = (index + 1 < len(times)
             and times[index + 1] - record.created_at <= window)
    return before or after


def _mod_fractions(seed: int, profile_name: str, index: int,
                   count: int) -> List[float]:
    """Modification fractions for one record: an independent RNG stream.

    Keyed by (seed, profile, global record index) so any shard can
    reproduce exactly the draws the sequential replay makes for this
    record — the determinism contract that makes parallel == sequential.
    """
    rng = random.Random(f"replay:{seed}:{profile_name}:{index}")
    return [min(1.0, rng.lognormvariate(_MOD_FRACTION_LOG_MU,
                                        _MOD_FRACTION_LOG_SIGMA))
            for _ in range(count)]


@dataclass
class _DedupCandidates:
    """Phase-1 output for one record under CROSS_USER dedup.

    ``units`` are this record's locally-first-seen units; each may lose to
    an earlier occurrence (smaller global index) in another shard, in which
    case phase 2 re-credits the difference to ``saved_by_dedup``.
    """

    index: int                       # global record index in the trace
    user: str
    wire: int                        # compressed creation wire, pre-dedup
    total_len: int                   # `or 1`-guarded unit length sum
    units: List[Tuple[bytes, int]]   # (unit key, unit length)


def _replay_records(shard: Sequence[Tuple[int, FileRecord]],
                    profile: ServiceProfile, seed: int,
                    collect_candidates: bool,
                    ) -> Tuple[ReplayReport, List[_DedupCandidates]]:
    """Replay one shard of (global index, record) pairs.

    The single code path behind both the sequential and the parallel
    replay: :func:`replay_trace` calls it once with the whole trace (where
    the local dedup state *is* the global state), shards call it with
    per-user partitions.  ``collect_candidates`` turns on the phase-1 side
    of the CROSS_USER two-phase protocol.
    """
    report = ReplayReport(service=profile.service,
                          access=profile.access.value)
    fixed = _fixed_overhead(profile)
    bds = profile.bds

    # Precompute creation-time neighbourhoods for BDS eligibility.  All of
    # a user's records live in this shard, so the neighbourhoods equal the
    # sequential ones.
    small_times: Dict[Tuple[str, str], List[float]] = {}
    for _, record in shard:
        if record.size < SMALL_FILE_THRESHOLD:
            small_times.setdefault((record.service, record.user), []).append(
                record.created_at)
    for times in small_times.values():
        times.sort()

    dedup = profile.dedup
    seen_units: Set = set()
    candidates: List[_DedupCandidates] = []

    for index, record in shard:
        report.file_count += 1
        # ---- creation upload ------------------------------------------------
        report.data_update_bytes += record.size
        raw_wire = record.size + int(profile.overhead.per_byte_factor * record.size)
        wire = _wire_payload(profile, record.size, record.compressed_size)
        report.saved_by_compression += max(raw_wire - wire, 0)

        if dedup.enabled:
            shipped = 0
            fresh_units: List[Tuple[bytes, int]] = []
            if dedup.granularity is DedupGranularity.FULL_FILE:
                keys = [(record.full_file_key(), record.size)]
            else:
                keys = [(key, length)
                        for key, length in record.block_keys(dedup.block_size)]
            total_len = sum(length for _, length in keys) or 1
            for key, length in keys:
                scope_key = key if dedup.scope is DedupScope.CROSS_USER \
                    else (record.user, key)
                if scope_key in seen_units:
                    continue
                seen_units.add(scope_key)
                shipped += length
                if collect_candidates:
                    fresh_units.append((key, length))
            deduped_wire = int(wire * shipped / total_len)
            report.saved_by_dedup += wire - deduped_wire
            if collect_candidates and fresh_units:
                candidates.append(_DedupCandidates(
                    index=index, user=record.user, wire=wire,
                    total_len=total_len, units=fresh_units))
            wire = deduped_wire

        overhead = fixed
        if (record.size < SMALL_FILE_THRESHOLD and bds.mode is not BdsMode.NONE
                and _in_creation_batch(record, small_times)):
            batched = bds.per_file_bytes if bds.mode is BdsMode.FULL \
                else max(bds.per_file_bytes, fixed // 8)
            report.saved_by_bds += max(fixed - batched, 0)
            overhead = batched
        report.traffic_bytes += wire + overhead
        report.overhead_bytes += overhead
        report.upload_events += 1
        report.per_user_traffic[record.user] = \
            report.per_user_traffic.get(record.user, 0) + wire + overhead

        # ---- modifications ---------------------------------------------------
        if record.modify_count:
            fractions = _mod_fractions(seed, profile.name, index,
                                       record.modify_count)
        else:
            fractions = []
        for fraction in fractions:
            altered = max(1, int(record.size * fraction))
            report.data_update_bytes += altered
            full_wire = _wire_payload(profile, record.size,
                                      record.compressed_size)
            if profile.uses_ids:
                # Delta ships the altered region rounded up to whole blocks.
                blocks = -(-altered // profile.delta_block) + 1
                delta_wire = min(blocks * profile.delta_block, record.size)
                # size == 0 forces delta_wire to 0 above, so the ratio is
                # never consumed on that branch; no max(size, 1) masking.
                ratio = (record.compressed_size / record.size
                         if record.size else 0.0)
                delta_wire = _wire_payload(
                    profile, delta_wire, int(delta_wire * ratio))
                report.saved_by_ids += max(full_wire - delta_wire, 0)
                wire = delta_wire
            else:
                wire = full_wire
            report.traffic_bytes += wire + fixed
            report.overhead_bytes += fixed
            report.upload_events += 1
            report.per_user_traffic[record.user] = \
                report.per_user_traffic.get(record.user, 0) + wire + fixed
            report.per_user_modification_traffic[record.user] = \
                report.per_user_modification_traffic.get(record.user, 0) \
                + wire + fixed
            report.per_user_modification_update[record.user] = \
                report.per_user_modification_update.get(record.user, 0) \
                + altered

    return report, candidates


def replay_trace(trace: Trace, profile: ServiceProfile,
                 seed: int = 0) -> ReplayReport:
    """Estimate the trace-wide sync traffic under one service profile."""
    report, _ = _replay_records(list(enumerate(trace)), profile, seed,
                                collect_candidates=False)
    return report


# ---------------------------------------------------------------------------
# Parallel sharded replay
# ---------------------------------------------------------------------------

def _shard_by_user(trace: Trace,
                   shard_count: int) -> List[List[Tuple[int, FileRecord]]]:
    """Partition (index, record) pairs into user-disjoint, balanced shards.

    Users are assigned greedily (heaviest first, ties by first appearance)
    to the least-loaded shard — deterministic, so shard contents depend
    only on the trace and ``shard_count``.
    """
    counts = trace.user_file_counts()
    # Stable sort: equal counts keep first-appearance order.
    ordered = sorted(counts.items(), key=lambda item: -item[1])
    loads = [0] * shard_count
    assignment: Dict[str, int] = {}
    for user, count in ordered:
        target = min(range(shard_count), key=lambda idx: loads[idx])
        assignment[user] = target
        loads[target] += count
    shards: List[List[Tuple[int, FileRecord]]] = [[] for _ in range(shard_count)]
    for index, record in enumerate(trace):
        shards[assignment[record.user]].append((index, record))
    return [shard for shard in shards if shard]


def _resolve_cross_user(report: ReplayReport,
                        shard_candidates: Sequence[List[_DedupCandidates]],
                        ) -> None:
    """Phase 2 of the CROSS_USER protocol: settle true first occurrences.

    A unit's true first occurrence is its candidate with the smallest
    global record index.  Every losing candidate record gets its creation
    wire recomputed with the losers removed — using the *same* integer
    expression as phase 1, so the merged report equals the sequential one
    bit for bit.
    """
    winners: Dict[bytes, int] = {}
    for entries in shard_candidates:
        for entry in entries:
            for key, _length in entry.units:
                current = winners.get(key)
                if current is None or entry.index < current:
                    winners[key] = entry.index
    for entries in shard_candidates:
        for entry in entries:
            shipped = sum(length for _, length in entry.units)
            kept = sum(length for key, length in entry.units
                       if winners[key] == entry.index)
            if kept == shipped:
                continue
            old_wire = int(entry.wire * shipped / entry.total_len)
            new_wire = int(entry.wire * kept / entry.total_len)
            delta = old_wire - new_wire
            report.traffic_bytes -= delta
            report.saved_by_dedup += delta
            report.per_user_traffic[entry.user] -= delta


def _restore_user_order(report: ReplayReport, trace: Trace) -> None:
    """Reorder per-user dicts to sequential insertion order.

    Sequential replay inserts users on first record (traffic) and on first
    modified record (modification dicts); the merged dicts carry shard
    order instead.  Rebuilding them makes the parallel report byte-identical
    to the sequential one — same ``repr``, same JSON — not merely equal.
    """
    creation_order: List[str] = []
    modification_order: List[str] = []
    seen_any: Set[str] = set()
    seen_modified: Set[str] = set()
    for record in trace:
        if record.user not in seen_any:
            seen_any.add(record.user)
            creation_order.append(record.user)
        if record.modify_count > 0 and record.user not in seen_modified:
            seen_modified.add(record.user)
            modification_order.append(record.user)
    report.per_user_traffic = {
        user: report.per_user_traffic[user]
        for user in creation_order if user in report.per_user_traffic}
    report.per_user_modification_traffic = {
        user: report.per_user_modification_traffic[user]
        for user in modification_order
        if user in report.per_user_modification_traffic}
    report.per_user_modification_update = {
        user: report.per_user_modification_update[user]
        for user in modification_order
        if user in report.per_user_modification_update}


#: Fork-inherited state for pool workers: (shards, profile, seed, collect).
#: Set only for the duration of the Pool.map call; fork children see a
#: copy-on-write snapshot, so nothing is pickled per task but the shard
#: index.  (Service profiles carry lambdas and cannot cross a spawn
#: boundary, which is why the pool requires the fork start method.)
_FORK_STATE: Optional[tuple] = None


def _replay_shard_worker(shard_index: int):
    shards, profile, seed, collect = _FORK_STATE
    return _replay_records(shards[shard_index], profile, seed, collect)


def replay_trace_parallel(trace: Trace, profile: ServiceProfile,
                          workers: Optional[int] = None,
                          seed: int = 0) -> ReplayReport:
    """Sharded, multi-process replay; byte-identical to :func:`replay_trace`.

    Records are sharded by user (exact for SAME_USER dedup and BDS batch
    windows); CROSS_USER dedup is settled by the two-phase candidate/merge
    protocol.  ``workers=None`` uses the CPU count; ``workers=1`` runs the
    shard pipeline in-process (useful for testing the merge path without
    process overhead).  On platforms without the ``fork`` start method the
    shards also run in-process — same results, no speedup.
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    workers = workers or os.cpu_count() or 1
    collect = (profile.dedup.enabled
               and profile.dedup.scope is DedupScope.CROSS_USER)
    shards = _shard_by_user(trace, workers)
    if not shards:
        return ReplayReport(service=profile.service,
                            access=profile.access.value)

    results = None
    if workers > 1 and len(shards) > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            global _FORK_STATE
            _FORK_STATE = (shards, profile, seed, collect)
            try:
                with context.Pool(processes=min(workers, len(shards))) as pool:
                    results = pool.map(_replay_shard_worker,
                                       range(len(shards)))
            finally:
                _FORK_STATE = None
    if results is None:
        results = [_replay_records(shard, profile, seed, collect)
                   for shard in shards]

    report = ReplayReport.merge([shard_report for shard_report, _ in results])
    if collect:
        _resolve_cross_user(report, [entries for _, entries in results])
    _restore_user_order(report, trace)
    return report


def modification_share(report: ReplayReport) -> Dict[str, float]:
    """Per-user fraction of sync traffic *wasted* on modifications.

    [36] defines the traffic overuse problem as modification sync traffic
    far exceeding the useful data-update bytes; the share here is that
    excess (modification traffic minus altered bytes) over the user's
    total sync traffic.
    """
    shares = {}
    for user, total in report.per_user_traffic.items():
        if total <= 0:
            continue
        mod_traffic = report.per_user_modification_traffic.get(user, 0)
        useful = report.per_user_modification_update.get(user, 0)
        shares[user] = max(mod_traffic - useful, 0) / total
    return shares


def traffic_overuse_fraction(report: ReplayReport,
                             threshold: float = 0.10) -> float:
    """Fraction of users losing more than ``threshold`` of their traffic
    to modification overuse.

    The paper cites (from the ISP-level Dropbox trace of [12, 36]) that for
    8.5 % of Dropbox users, more than 10 % of their sync traffic is caused
    by frequent modifications; this reproduces the statistic on any replay.
    """
    shares = modification_share(report)
    if not shares:
        return 0.0
    return sum(1 for share in shares.values() if share > threshold) / len(shares)


def replay_all(trace: Trace,
               services: Optional[Sequence[str]] = None,
               access: AccessMethod = AccessMethod.PC,
               seed: int = 0,
               workers: int = 1) -> List[ReplayReport]:
    """Replay the trace under every service, sorted by estimated traffic."""
    from ..client import SERVICES
    names = services or SERVICES
    if workers > 1:
        reports = [replay_trace_parallel(trace, service_profile(name, access),
                                         workers=workers, seed=seed)
                   for name in names]
    else:
        reports = [replay_trace(trace, service_profile(name, access), seed=seed)
                   for name in names]
    reports.sort(key=lambda report: report.traffic_bytes)
    return reports

"""Trace record schema (the paper's Table 3).

Each tracked file carries: user name, file name, original and compressed
size, creation and last-modification time, full-file MD5, and block-level
MD5 hash codes at 128 KB … 16 MB granularities.

The real trace's contents are unavailable (the published link is dead), so
records carry a *segment identity* instead of bytes: every 128 KB unit of a
file has an abstract segment id; duplicate files share all ids,
near-duplicate files share a prefix.  Block fingerprints at any granularity
are derived from the covered segment ids on demand — byte-free, but with
exactly the collision structure a real block-hash trace exhibits, which is
all the paper's trace analyses (Figures 2 and 5, §4/§5 statistics) consume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..units import KB, MB

#: The segment granularity underlying block fingerprints.
UNIT_SIZE = 128 * KB

#: The paper's recorded block-hash granularities (Table 3).
BLOCK_GRANULARITIES = (128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB,
                       4 * MB, 8 * MB, 16 * MB)


@dataclass
class FileRecord:
    """One tracked file (one row of the paper's trace)."""

    user: str
    service: str
    path: str
    size: int
    compressed_size: int
    created_at: float
    modified_at: float
    modify_count: int
    #: Abstract 128 KB segment ids; identity of the file's content.
    segments: np.ndarray = field(repr=False)
    #: Shared by exact duplicates; unique otherwise.
    content_id: int = 0

    def __post_init__(self) -> None:
        if self.size < 0 or self.compressed_size < 0:
            raise ValueError("sizes must be non-negative")
        if self.modified_at < self.created_at:
            raise ValueError("modification cannot precede creation")

    @property
    def compression_ratio(self) -> float:
        """compressed/original (≤ 1.0); 1.0 for empty files."""
        if self.size == 0:
            return 1.0
        return self.compressed_size / self.size

    @property
    def effectively_compressible(self) -> bool:
        """The paper's definition: compresses below 90 % of original."""
        return self.compression_ratio < 0.90

    @property
    def was_modified(self) -> bool:
        return self.modify_count > 0

    @property
    def md5(self) -> str:
        """Full-file fingerprint derived from the content identity."""
        raw = self.segments.tobytes() + self.size.to_bytes(8, "little")
        return hashlib.md5(raw).hexdigest()

    def full_file_key(self) -> Tuple[bytes, int]:
        """Hashable identity for full-file dedup analysis."""
        return (self.segments.tobytes(), self.size)

    def block_keys(self, block_size: int) -> Iterator[Tuple[bytes, int]]:
        """(identity, length) per block at ``block_size`` granularity.

        Blocks are head-aligned and fixed-size (§5.2); the final block is
        short.  Identity is the tuple of covered segment ids, so two files
        sharing a prefix share exactly the aligned prefix blocks.
        """
        if block_size % UNIT_SIZE != 0:
            raise ValueError(f"block size must be a multiple of {UNIT_SIZE}")
        units_per_block = block_size // UNIT_SIZE
        remaining = self.size
        segments = self.segments
        for start in range(0, len(segments), units_per_block):
            ids = segments[start:start + units_per_block]
            length = min(block_size, remaining)
            remaining -= length
            yield (ids.tobytes(), length)

    def block_md5s(self, block_size: int) -> List[str]:
        """Block-level MD5 hash codes as the trace records them."""
        return [
            hashlib.md5(identity + length.to_bytes(8, "little")).hexdigest()
            for identity, length in self.block_keys(block_size)
        ]


@dataclass
class Trace:
    """A full collected trace: many users, many files, several services."""

    records: List[FileRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FileRecord]:
        return iter(self.records)

    def by_service(self) -> Dict[str, List[FileRecord]]:
        out: Dict[str, List[FileRecord]] = {}
        for record in self.records:
            out.setdefault(record.service, []).append(record)
        return out

    def by_user(self) -> Dict[str, List[FileRecord]]:
        """user → that user's records, in trace order.

        Users are keyed by name alone (names embed the service, so they are
        globally unique); the dict itself is ordered by each user's first
        appearance in the trace — the order the replay sharder and the
        parallel-merge canonicalisation both rely on.
        """
        out: Dict[str, List[FileRecord]] = {}
        for record in self.records:
            out.setdefault(record.user, []).append(record)
        return out

    def user_file_counts(self) -> Dict[str, int]:
        """user → file count, ordered by first appearance in the trace."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.user] = counts.get(record.user, 0) + 1
        return counts

    def users(self) -> Dict[str, int]:
        """service → distinct user count (the paper's Table 2)."""
        seen: Dict[str, set] = {}
        for record in self.records:
            seen.setdefault(record.service, set()).add(record.user)
        return {service: len(users) for service, users in seen.items()}

    def total_bytes(self) -> int:
        return sum(record.size for record in self.records)

    def total_compressed_bytes(self) -> int:
        return sum(record.compressed_size for record in self.records)

    def sizes(self, compressed: bool = False) -> np.ndarray:
        if compressed:
            return np.array([r.compressed_size for r in self.records], dtype=np.int64)
        return np.array([r.size for r in self.records], dtype=np.int64)

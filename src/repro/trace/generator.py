"""Statistical twin of the paper's collected trace (§3.1).

The original trace (153 users, 222,632 files, Jul 2013 – Mar 2014, six
services) is no longer downloadable, so this generator synthesises a trace
matching every aggregate the paper publishes:

* per-service user and file counts (Table 2);
* the original/compressed size CDFs of Figure 2 (median 7.5 KB / 3.2 KB,
  mean 962 KB / 732 KB, max 2.0 GB / 1.97 GB);
* 77 % of files smaller than 100 KB; 66 % of those created in batches (§4.1);
* 84 % of files modified at least once (§4.3);
* 52 % of files effectively compressible; overall compression ratio 1.31,
  i.e. compression saves 24 % of bytes (§5.1);
* full-file duplicate ratio ≈ 18.8 % of bytes, with block-level dedup only
  trivially better (§5.2, Figure 5).

Sizes follow a clipped log-normal (heavy right tail: a 7.5 KB median
coexisting with a ~1 MB mean forces σ ≈ 3), compressibility is
class-conditional on size (small document-like files compress far better
than large media files — which is what makes the compressed median drop to
~3.2 KB while the byte-weighted saving stays at ~24 %), and duplication is
popularity-weighted with a small near-duplicate (shared-prefix) population
that gives block-level dedup its slim edge over full-file.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..units import GB, KB, MB
from .schema import UNIT_SIZE, FileRecord, Trace

#: Table 2 of the paper.
SERVICE_USERS = {
    "GoogleDrive": 33, "OneDrive": 24, "Dropbox": 55,
    "Box": 13, "UbuntuOne": 13, "SugarSync": 15,
}
SERVICE_FILES = {
    "GoogleDrive": 32677, "OneDrive": 17903, "Dropbox": 106493,
    "Box": 19995, "UbuntuOne": 27281, "SugarSync": 18283,
}

#: Trace collection window: Jul 2013 → Mar 2014, in seconds.
TRACE_SPAN = 236 * 24 * 3600.0

_SMALL = 100 * KB

#: Size model: log-normal around the paper's 7.5 KB median, σ tuned so the
#: clipped mean lands near 962 KB (validated in tests/test_trace.py).
_SIZE_MU = float(np.log(7.5 * KB))
_SIZE_SIGMA = 3.17
_SIZE_MAX = 2 * GB

#: Compressibility classes: (probability compressible | small/large,
#: compressible-ratio range, incompressible-ratio range).
_P_COMPRESSIBLE_SMALL = 0.56
_P_COMPRESSIBLE_LARGE = 0.37
_RATIO_COMPRESSIBLE_SMALL = (0.18, 0.50)
_RATIO_COMPRESSIBLE_LARGE = (0.25, 0.52)
_RATIO_INCOMPRESSIBLE = (0.935, 1.0)

#: Duplication model.  Sources are capped in size: users duplicate documents
#: and media, not half-terabyte archives — and the cap keeps the
#: byte-weighted duplicate ratio stable across trace scales.
_P_DUPLICATE = 0.22
_P_NEAR_DUPLICATE = 0.050
_NEAR_SHARE_RANGE = (0.3, 0.9)
_DUP_SOURCE_MAX = 512 * MB

#: Modification model (84 % modified at least once).
_P_MODIFIED = 0.84

#: Burst model for creation times (drives the 66 % batchable statistic).
_P_SOLO_CREATE = 0.86
_BURST_MAX = 24
_BURST_SPACING = (0.05, 2.0)

_EXTENSIONS_COMPRESSIBLE = ("txt", "csv", "doc", "xls", "htm", "log", "xml", "tex")
_EXTENSIONS_INCOMPRESSIBLE = ("jpg", "png", "mp3", "mp4", "zip", "pdf", "gz", "apk")


@dataclass
class GeneratorConfig:
    """Knobs for the trace generator; defaults reproduce the paper's trace."""

    scale: float = 1.0          # shrink user/file counts (tests use < 1)
    seed: int = 42
    services: Optional[Dict[str, Tuple[int, int]]] = None  # name -> (users, files)

    def service_plan(self) -> Dict[str, Tuple[int, int]]:
        if self.services is not None:
            return self.services
        return {
            name: (max(1, round(SERVICE_USERS[name] * self.scale)),
                   max(1, round(SERVICE_FILES[name] * self.scale)))
            for name in SERVICE_USERS
        }


class _SegmentFactory:
    """Allocates globally unique 128 KB segment ids."""

    def __init__(self) -> None:
        self._next = 0

    def fresh(self, count: int) -> np.ndarray:
        ids = np.arange(self._next, self._next + count, dtype=np.int64)
        self._next += count
        return ids


@dataclass(frozen=True)
class _PoolEntry:
    """Content identity of a prior original, kept for duplicate sampling.

    Holding full :class:`FileRecord` objects in the pool would pin every
    original of the whole trace in memory; the duplicate/near-duplicate
    draw only needs these four fields, which is what makes
    :func:`iter_trace_shards` memory-bounded at large scales.
    """

    size: int
    compressed_size: int
    segments: np.ndarray
    content_id: int


def _unit_count(size: int) -> int:
    return max(1, -(-size // UNIT_SIZE))


def _service_records(service: str, n_users: int, n_files: int,
                     rng: np.random.Generator, segments: _SegmentFactory,
                     pool: List[_PoolEntry],
                     file_counter: "itertools.count") -> Iterator[FileRecord]:
    """Yield one service's records in creation order.

    This is the single code path behind both :func:`generate_trace` and
    :func:`iter_trace_shards`: both consume the identical RNG stream, so
    they produce identical records at the same seed.
    """
    users = [f"{service.lower()}-user{idx:03d}" for idx in range(n_users)]
    # Zipf-ish activity: a few heavy users own most files (observed in
    # every storage-trace study the paper builds on).
    weights = 1.0 / np.arange(1, n_users + 1) ** 0.7
    weights /= weights.sum()
    files_left = n_files
    while files_left > 0:
        user = users[int(rng.choice(n_users, p=weights))]
        if rng.random() < _P_SOLO_CREATE:
            burst = 1
        else:
            burst = int(rng.integers(2, _BURST_MAX + 1))
        burst = min(burst, files_left)
        start = float(rng.random() * TRACE_SPAN)
        offset = 0.0
        for _ in range(burst):
            offset += float(rng.uniform(*_BURST_SPACING))
            yield _make_record(
                rng, segments, pool, service, user,
                created_at=start + offset,
                index=next(file_counter),
            )
        files_left -= burst


def iter_trace_records(scale: float = 1.0, seed: int = 42,
                       config: Optional[GeneratorConfig] = None
                       ) -> Iterator[FileRecord]:
    """Stream the statistical twin trace record by record.

    Yields exactly the records of ``generate_trace(scale, seed)`` in the
    same order (it *is* ``generate_trace``'s implementation), without
    materialising the trace: peak memory is the duplicate-sampling pool
    plus one record.  Feed it to ``ReplayPool.from_records`` to replay a
    trace that never exists in the parent process at all.
    """
    config = config or GeneratorConfig(scale=scale, seed=seed)
    rng = np.random.default_rng(config.seed)
    segments = _SegmentFactory()
    #: Global pool of prior originals for duplicate/near-duplicate sampling.
    pool: List[_PoolEntry] = []
    file_counter = itertools.count()

    for service, (n_users, n_files) in sorted(config.service_plan().items()):
        yield from _service_records(service, n_users, n_files, rng,
                                    segments, pool, file_counter)


def generate_trace(scale: float = 1.0, seed: int = 42,
                   config: Optional[GeneratorConfig] = None) -> Trace:
    """Generate the statistical twin trace.

    ``scale`` < 1 produces a proportionally smaller trace with the same
    distributions (unit tests use ``scale≈0.02``; benches use 1.0).
    """
    config = config or GeneratorConfig(scale=scale, seed=seed)
    return Trace(records=list(iter_trace_records(config=config)))


def iter_trace_shards(scale: float = 1.0, seed: int = 42,
                      shard_users: int = 8,
                      config: Optional[GeneratorConfig] = None) -> Iterator[Trace]:
    """Stream the statistical twin trace as per-user-group shards.

    Yields :class:`Trace` shards whose records are *identical* to
    ``generate_trace(scale, seed)`` at the same seed (validated in
    tests/test_replay_parallel.py): every user's files land in exactly one
    shard, each shard covers at most ``shard_users`` consecutive users of
    one service, and records keep their generation order within a shard.

    Memory stays bounded by one service's records plus the lightweight
    duplicate-sampling pool, instead of the whole trace — the difference
    between fitting a ``scale=50`` (~11M file) replay in RAM or not.
    """
    if shard_users < 1:
        raise ValueError("shard_users must be >= 1")
    config = config or GeneratorConfig(scale=scale, seed=seed)
    rng = np.random.default_rng(config.seed)
    segments = _SegmentFactory()
    pool: List[_PoolEntry] = []
    file_counter = itertools.count()

    for service, (n_users, n_files) in sorted(config.service_plan().items()):
        user_names = [f"{service.lower()}-user{idx:03d}"
                      for idx in range(n_users)]
        group_of = {user: idx // shard_users
                    for idx, user in enumerate(user_names)}
        n_groups = -(-n_users // shard_users)
        buckets: List[List[FileRecord]] = [[] for _ in range(n_groups)]
        for record in _service_records(service, n_users, n_files, rng,
                                       segments, pool, file_counter):
            buckets[group_of[record.user]].append(record)
        for group in range(n_groups):
            records = buckets[group]
            # Hand the bucket off and drop our reference immediately, so a
            # consumer that discards shards as it goes keeps peak memory at
            # one shard, not one service.
            buckets[group] = []
            if records:
                yield Trace(records=records)


def _draw_size(rng: np.random.Generator) -> int:
    size = int(rng.lognormal(_SIZE_MU, _SIZE_SIGMA))
    return int(min(max(size, 1), _SIZE_MAX))


def _draw_ratio(rng: np.random.Generator, size: int) -> float:
    small = size < _SMALL
    p_compressible = _P_COMPRESSIBLE_SMALL if small else _P_COMPRESSIBLE_LARGE
    if rng.random() < p_compressible:
        lo, hi = (_RATIO_COMPRESSIBLE_SMALL if small
                  else _RATIO_COMPRESSIBLE_LARGE)
    else:
        lo, hi = _RATIO_INCOMPRESSIBLE
    return float(rng.uniform(lo, hi))


def _make_record(rng: np.random.Generator, segments: _SegmentFactory,
                 pool: List[_PoolEntry], service: str, user: str,
                 created_at: float, index: int) -> FileRecord:
    duplicate_of: Optional[_PoolEntry] = None
    near_source: Optional[_PoolEntry] = None
    roll = rng.random()
    if pool and roll < _P_DUPLICATE:
        candidate = pool[int(rng.integers(len(pool)))]
        if candidate.size <= _DUP_SOURCE_MAX:
            duplicate_of = candidate
    elif pool and roll < _P_DUPLICATE + _P_NEAR_DUPLICATE:
        candidate = pool[int(rng.integers(len(pool)))]
        if candidate.size <= _DUP_SOURCE_MAX:
            near_source = candidate

    if duplicate_of is not None:
        size = duplicate_of.size
        compressed = duplicate_of.compressed_size
        segment_ids = duplicate_of.segments
        content_id = duplicate_of.content_id
    elif near_source is not None and len(near_source.segments) >= 2:
        share = float(rng.uniform(*_NEAR_SHARE_RANGE))
        shared_units = max(1, int(len(near_source.segments) * share))
        size = _draw_size(rng)
        size = max(size, shared_units * UNIT_SIZE)
        fresh = segments.fresh(_unit_count(size) - shared_units) \
            if _unit_count(size) > shared_units else np.empty(0, dtype=np.int64)
        segment_ids = np.concatenate(
            [near_source.segments[:shared_units], fresh])
        compressed = max(1, int(size * _draw_ratio(rng, size)))
        content_id = index
    else:
        size = _draw_size(rng)
        segment_ids = segments.fresh(_unit_count(size))
        compressed = max(1, int(size * _draw_ratio(rng, size)))
        content_id = index

    modify_count = 0
    modified_at = created_at
    if rng.random() < _P_MODIFIED:
        modify_count = 1 + int(rng.geometric(0.35))
        # Clamp to the collection window (§3.1): nothing is observed
        # modified after Mar 2014.  Late-window creations keep
        # modified_at == created_at rather than running past the span.
        modified_at = min(created_at + float(rng.exponential(14 * 24 * 3600.0)),
                          TRACE_SPAN)
        modified_at = max(modified_at, created_at)

    # _draw_size clamps every size to >= 1, so no zero guard is needed.
    compressible = compressed / size < 0.9
    extensions = (_EXTENSIONS_COMPRESSIBLE if compressible
                  else _EXTENSIONS_INCOMPRESSIBLE)
    extension = extensions[int(rng.integers(len(extensions)))]
    record = FileRecord(
        user=user, service=service,
        path=f"{user}/f{index:07d}.{extension}",
        size=size, compressed_size=compressed,
        created_at=created_at, modified_at=modified_at,
        modify_count=modify_count,
        segments=segment_ids, content_id=content_id,
    )
    if duplicate_of is None:
        pool.append(_PoolEntry(size=size, compressed_size=compressed,
                               segments=segment_ids, content_id=content_id))
    return record

"""Deterministic discrete-event simulation core.

Every experiment in this reproduction runs on a :class:`Simulator`: a single
monotonic clock plus a priority queue of timed callbacks.  Determinism matters
because the paper's TUE numbers depend on the precise interleaving of file
modifications, metadata computation, and network transfers (§6.2 of the
paper); a real-time implementation would make the figures unrepeatable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulator is driven into an invalid state."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.  Cancellable until it fires."""

    __slots__ = ("callback", "args", "cancelled", "time")

    def __init__(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True


class Simulator:
    """A heapq-based event loop with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print(sim.now))
        sim.run_until_idle()
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, callback, args)
        heapq.heappush(self._queue, _QueueEntry(event.time, next(self._seq), event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, *args)

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._queue and self._queue[0].event.cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.event.cancelled:
                continue
            if entry.time < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = entry.time
            entry.event.callback(*entry.event.args)
            return True
        return False

    def run_until_idle(self, max_time: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run events until the queue drains (or a safety bound trips).

        ``max_time`` stops the loop *after* the last event at or before that
        time; the clock is then advanced to ``max_time`` so follow-on
        scheduling behaves intuitively.
        """
        if self._running:
            raise SimulationError("run_until_idle re-entered; simulator is not reentrant")
        self._running = True
        try:
            for _ in range(max_events):
                next_time = self.peek_next_time()
                if next_time is None:
                    return
                if max_time is not None and next_time > max_time:
                    self._now = max(self._now, max_time)
                    return
                self.step()
            raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
        finally:
            self._running = False

    def run_until(self, time: float) -> None:
        """Run all events scheduled at or before ``time`` and advance the clock."""
        self.run_until_idle(max_time=time)
        self._now = max(self._now, time)

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for entry in self._queue if not entry.event.cancelled)

"""Deterministic discrete-event simulation core.

Every experiment in this reproduction runs on a :class:`Simulator`: a single
monotonic clock plus a priority queue of timed callbacks.  Determinism matters
because the paper's TUE numbers depend on the precise interleaving of file
modifications, metadata computation, and network transfers (§6.2 of the
paper); a real-time implementation would make the figures unrepeatable.

Two interchangeable queue implementations back the simulator:

* :class:`CalendarEventQueue` (the default) — a Brown-style calendar/bucket
  queue with O(1) amortized push/pop and **eager** cancellation (a cancelled
  event leaves its bucket immediately instead of lingering until popped);
* :class:`HeapEventQueue` — the original ``heapq`` implementation with lazy
  cancellation, kept as the reference the calendar queue is property-tested
  against (``Simulator(queue="heap")``).

Both order events by ``(time, seq)`` where ``seq`` is the schedule-call
counter, so pop order — and therefore every downstream byte count — is
identical regardless of which queue is in use.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple, Union


class SimulationError(RuntimeError):
    """Raised when the simulator is driven into an invalid state."""


#: Relative tolerance for "scheduling into the past".  Chains of absolute
#: times (``schedule_at(committed_at + k * delay)``) accumulate float noise
#: on the order of a few ulps; a delta no more negative than this fraction
#: of the clock magnitude is rounding, not a logic error, and clamps to
#: "now".  Genuinely past times still raise.
PAST_EPSILON = 1e-12


def _event_key(event: "Event") -> Tuple[float, int]:
    return (event.time, event.seq)


def resolve_delay(now: float, delay: float) -> float:
    """Validate a relative delay, clamping sub-epsilon float noise to zero.

    Shared by :class:`Simulator` and the per-domain handles in
    :mod:`repro.simnet.domains` so both reject genuinely past times and
    forgive ulp-scale negatives identically.
    """
    if delay < 0:
        if -delay <= PAST_EPSILON * max(1.0, abs(now)):
            return 0.0
        raise SimulationError(
            f"cannot schedule into the past (delay={delay})")
    return delay


class Event:
    """A scheduled callback.  Cancellable until it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "queue")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: The queue currently holding the event; popping clears it, so a
        #: cancel after the event fired is a no-op.
        self.queue: Optional["EventQueue"] = None

    def __lt__(self, other: "Event") -> bool:
        """Order by ``(time, seq)`` so buckets can be heap-ordered."""
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        queue, self.queue = self.queue, None
        if queue is not None:
            queue.discard(self)


class HeapEventQueue:
    """The reference ``heapq`` queue: lazy cancellation, O(log n) ops.

    Cancelled events stay on the heap (flag-skipped at pop/peek time) —
    exactly the pre-calendar behaviour the equivalence property test pins
    the calendar queue against.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []

    def __len__(self) -> int:
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.seq, event))
        event.queue = self

    def discard(self, event: Event) -> None:
        """Lazy: the ``cancelled`` flag alone keeps the event from firing."""

    def _prune(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)

    def pop(self) -> Optional[Event]:
        self._prune()
        if not self._heap:
            return None
        _, _, event = heapq.heappop(self._heap)
        event.queue = None
        return event

    def peek_key(self) -> Optional[Tuple[float, int]]:
        self._prune()
        if not self._heap:
            return None
        time, seq, _ = self._heap[0]
        return (time, seq)


class CalendarEventQueue:
    """A calendar (bucket) queue ordered by ``(time, seq)``.

    Virtual time is partitioned into fixed-width slots mapped round-robin
    onto ``nbuckets`` buckets (R. Brown, CACM 1988), each kept
    **heap-ordered** by ``(time, seq)``: the bucket head is always the
    bucket minimum, so a pop scans at most one "year" of slot *heads* from
    the clock hand and then does one ``heappop``.  That keeps pop O(1)
    amortized when occupancy stays near one event per bucket (the resize
    policy's job) *and* O(log k) — never O(k) — when a fan-out burst lands
    k same-time events in one slot, the degenerate case that makes an
    unsorted-bucket calendar quadratic.  Cancellation is **eager**: the
    event is removed from its bucket immediately, so dead entries never
    inflate bucket scans the way they inflate a lazy-deletion heap.
    """

    _MIN_BUCKETS = 8

    def __init__(self, width: float = 1.0,
                 nbuckets: int = _MIN_BUCKETS) -> None:
        self._width = float(width)
        self._nbuckets = max(int(nbuckets), self._MIN_BUCKETS)
        self._buckets: List[List[Event]] = [[] for _ in range(self._nbuckets)]
        self._count = 0
        #: Pop cursor: never above the smallest live event time.
        self._hand = 0.0
        #: Cached result of the last slot scan (invalidated on mutation).
        self._head: Optional[Event] = None

    def __len__(self) -> int:
        return self._count

    def _index(self, time: float) -> int:
        return int(time // self._width) % self._nbuckets

    def push(self, event: Event) -> None:
        heapq.heappush(self._buckets[self._index(event.time)], event)
        self._count += 1
        event.queue = self
        if event.time < self._hand:
            self._hand = event.time
        head = self._head
        if head is not None and _event_key(event) < _event_key(head):
            self._head = event
        if self._count > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    def discard(self, event: Event) -> None:
        """Eagerly drop a cancelled event from its bucket.

        O(k) in the bucket size — acceptable because cancellation is rare
        (one pending-wake per engine), unlike push/pop which are hot.
        """
        bucket = self._buckets[self._index(event.time)]
        bucket[bucket.index(event)] = bucket[-1]
        bucket.pop()
        heapq.heapify(bucket)
        self._count -= 1
        if self._head is event:
            self._head = None
        if (self._nbuckets > self._MIN_BUCKETS
                and self._count < self._nbuckets // 2):
            self._resize(self._nbuckets // 2)

    def _resize(self, nbuckets: int) -> None:
        events = [event for bucket in self._buckets for event in bucket]
        self._width = self._estimate_width(events)
        self._nbuckets = max(int(nbuckets), self._MIN_BUCKETS)
        self._buckets = [[] for _ in range(self._nbuckets)]
        for event in events:
            self._buckets[self._index(event.time)].append(event)
        for bucket in self._buckets:
            heapq.heapify(bucket)

    def _estimate_width(self, events: List[Event]) -> float:
        """Slot width targeting ~1 live event per slot over the queue span."""
        if len(events) < 2:
            return max(self._width, 1e-9)
        lo = min(event.time for event in events)
        hi = max(event.time for event in events)
        if hi <= lo:
            return max(self._width, 1e-9)
        return max((hi - lo) / len(events), 1e-9)

    def _scan_min(self) -> Optional[Event]:
        """Locate (without removing) the ``(time, seq)``-minimal event.

        Each slot maps to exactly one bucket, and a bucket's heap head is
        its ``(time, seq)`` minimum, so the scan only ever inspects heads:
        the first head whose slot matches the scan slot is the global
        minimum.  Slot membership is decided exactly as placement decides
        it — ``int(time // width)`` — never by comparing against a
        recomputed slot boundary, which float rounding can disagree with
        (an event at ``t == 17 * width`` may divide down into slot 16 and
        would then sit just past slot 16's computed upper bound).  Since
        ``int(t // w)`` is monotone in ``t``, a head from a *later* slot
        proves its whole bucket holds nothing for the current one.  A full
        fruitless year means everything is ≥ one year out, and the scan
        falls back to the minimum over all heads (then caches it).
        """
        if self._count == 0:
            return None
        if self._head is not None:
            return self._head
        width = self._width
        nbuckets = self._nbuckets
        slot = int(self._hand // width)
        index = slot % nbuckets
        best: Optional[Event] = None
        for _ in range(nbuckets):
            bucket = self._buckets[index]
            if bucket and int(bucket[0].time // width) == slot:
                best = bucket[0]
                break
            slot += 1
            index += 1
            if index == nbuckets:
                index = 0
        if best is None:
            best = min(bucket[0] for bucket in self._buckets if bucket)
        self._head = best
        return best

    def pop(self) -> Optional[Event]:
        event = self._scan_min()
        if event is None:
            return None
        # _scan_min always returns a bucket head, so removal is a heappop.
        heapq.heappop(self._buckets[self._index(event.time)])
        self._count -= 1
        self._head = None
        self._hand = event.time
        event.queue = None
        if (self._nbuckets > self._MIN_BUCKETS
                and self._count < self._nbuckets // 2):
            self._resize(self._nbuckets // 2)
        return event

    def peek_key(self) -> Optional[Tuple[float, int]]:
        event = self._scan_min()
        return None if event is None else _event_key(event)


#: Anything quacking like the two queues above (push/pop/discard/peek_key).
EventQueue = Union[HeapEventQueue, CalendarEventQueue]


def make_event_queue(kind: str = "calendar") -> EventQueue:
    """Build an event queue by name (``"calendar"`` or ``"heap"``)."""
    if kind == "calendar":
        return CalendarEventQueue()
    if kind == "heap":
        return HeapEventQueue()
    raise ValueError(f"unknown event queue kind {kind!r}")


class Simulator:
    """An event loop with a virtual clock over a pluggable event queue.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print(sim.now))
        sim.run_until_idle()
    """

    def __init__(self, start_time: float = 0.0,
                 queue: Union[str, EventQueue] = "calendar",
                 seq: Optional[Any] = None):
        self._now = float(start_time)
        self._queue: EventQueue = (make_event_queue(queue)
                                   if isinstance(queue, str) else queue)
        #: ``seq`` is injectable so a :class:`~repro.simnet.domains.
        #: DomainScheduler` can stamp every domain's events from one global
        #: counter — the property that makes sharded runs byte-identical.
        self._seq = seq if seq is not None else itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        delay = resolve_delay(self._now, delay)
        event = Event(self._now + delay, next(self._seq), callback, args)
        self._queue.push(event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, *args)

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        key = self._queue.peek_key()
        return None if key is None else key[0]

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = event.time
        event.callback(*event.args)
        return True

    def run_until_idle(self, max_time: Optional[float] = None,
                       max_events: int = 10_000_000) -> float:
        """Run events until the queue drains (or a safety bound trips).

        ``max_time`` stops the loop *after* the last event at or before that
        time; the clock is then advanced to ``max_time`` so follow-on
        scheduling behaves intuitively.  Returns the final virtual time.
        """
        if self._running:
            raise SimulationError(
                "run_until_idle re-entered; simulator is not reentrant")
        self._running = True
        try:
            for _ in range(max_events):
                next_time = self.peek_next_time()
                if next_time is None:
                    return self._now
                if max_time is not None and next_time > max_time:
                    self._now = max(self._now, max_time)
                    return self._now
                self.step()
            raise SimulationError(
                f"exceeded {max_events} events; runaway simulation?")
        finally:
            self._running = False

    def run_until(self, time: float) -> float:
        """Run all events at or before ``time``; returns the final time."""
        self.run_until_idle(max_time=time)
        self._now = max(self._now, time)
        return self._now

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return len(self._queue)

"""Sharded event domains: independently schedulable clock-and-queue shards.

A :class:`DomainScheduler` partitions one logical simulation into ``D``
:class:`EventDomain` shards.  Each domain owns its own calendar queue (and,
at the fleet layer, its members' links/meters/folders); the scheduler's run
loop repeatedly dispatches the globally ``(time, epoch)``-minimal event
across domains.  Because every event — local or not — is stamped from one
shared monotone **epoch counter** at schedule time, and schedule calls
happen in the same order as they would against a single global queue, the
merged pop order is *identical* to the single-heap order at any domain
count: a sharded run is byte-identical to the global run by construction.
(Same playbook as the parallel-replay shards of PR 2: partition the work,
make the merge deterministic, prove equality instead of arguing it.)

Cross-domain effects are explicit: scheduling onto domain *B* while domain
*A*'s event is executing is a **domain message** — an epoch-stamped,
time-ordered handoff (commit fan-out and churn are the fleet's two
sources).  The scheduler accounts every crossing in a source×target matrix
and checks the protocol invariants (monotone epochs, no backwards
delivery), which :func:`verify_domain_protocol` exposes to the audit layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from .clock import (
    CalendarEventQueue,
    Event,
    EventQueue,
    SimulationError,
    make_event_queue,
    resolve_delay,
)


@dataclass(frozen=True)
class DomainMessage:
    """One epoch-stamped cross-domain handoff (kept only when tracing)."""

    epoch: int        # the event's global sequence stamp
    source: int       # domain whose event was executing at send time
    target: int       # domain whose queue received the event
    sent_at: float    # scheduler clock at the schedule call
    deliver_at: float  # virtual time the event fires in the target domain


class EventDomain:
    """One shard's scheduling handle: the ``Simulator`` surface a member
    (folder, link emulator, channel, engine) binds to.

    ``now`` reads the scheduler's global clock; ``schedule``/``schedule_at``
    stamp events from the scheduler's shared epoch counter and push onto
    this domain's own queue.  The handle is deliberately *only* the
    scheduling surface — running the clock is the scheduler's job.
    """

    __slots__ = ("scheduler", "index", "queue")

    def __init__(self, scheduler: "DomainScheduler", index: int,
                 queue: EventQueue):
        self.scheduler = scheduler
        self.index = index
        self.queue = queue

    @property
    def now(self) -> float:
        """Current virtual time (global across all domains)."""
        return self.scheduler.now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` on this domain ``delay`` from now."""
        scheduler = self.scheduler
        delay = resolve_delay(scheduler.now, delay)
        event = Event(scheduler.now + delay, next(scheduler._epochs),
                      callback, args)
        self.queue.push(event)
        scheduler._note_scheduled(self, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        return self.schedule(time - self.scheduler.now, callback, *args)

    def pending_count(self) -> int:
        """Not-yet-cancelled events queued on this domain alone."""
        return len(self.queue)


class DomainScheduler:
    """The conservative cross-domain run loop (drop-in ``Simulator``).

    Exposes the full :class:`~repro.simnet.Simulator` API so fleet-level
    code runs unchanged; scheduling directly on the scheduler routes to the
    currently executing domain (or domain 0 outside any event), while
    members schedule through their own :class:`EventDomain` handles.
    """

    def __init__(self, domains: int = 1, start_time: float = 0.0,
                 queue: str = "calendar", trace_messages: bool = False):
        if domains < 1:
            raise SimulationError(f"need at least one domain (got {domains})")
        self._now = float(start_time)
        self._epochs = itertools.count()
        self._running = False
        #: Index of the domain whose event is currently executing, or None.
        self._executing: Optional[int] = None
        self.domains: List[EventDomain] = [
            EventDomain(self, index, make_event_queue(queue))
            for index in range(domains)]
        #: ``cross_matrix[source][target]`` counts epoch-stamped handoffs.
        self.cross_matrix: List[List[int]] = [
            [0] * domains for _ in range(domains)]
        self.cross_messages = 0
        self._last_cross_epoch = -1
        self.trace_messages = trace_messages
        self.messages: List[DomainMessage] = []

    # -- domain access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.domains)

    def domain(self, index: int) -> EventDomain:
        return self.domains[index]

    def domain_for(self, key: int) -> EventDomain:
        """Algorithmic placement ``shard = f(UID)``: pure, stateless."""
        return self.domains[key % len(self.domains)]

    # -- bookkeeping --------------------------------------------------------

    def _note_scheduled(self, domain: EventDomain, event: Event) -> None:
        source = self._executing
        if source is None or source == domain.index:
            return
        self.cross_messages += 1
        self.cross_matrix[source][domain.index] += 1
        if event.seq <= self._last_cross_epoch:
            raise SimulationError(
                f"cross-domain epoch went backwards: {event.seq} after "
                f"{self._last_cross_epoch}")
        self._last_cross_epoch = event.seq
        if self.trace_messages:
            self.messages.append(DomainMessage(
                epoch=event.seq, source=source, target=domain.index,
                sent_at=self._now, deliver_at=event.time))

    # -- Simulator API ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule on the executing domain (domain 0 outside any event)."""
        target = self._executing if self._executing is not None else 0
        return self.domains[target].schedule(delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        return self.schedule(time - self._now, callback, *args)

    def _min_domain(self) -> Optional[EventDomain]:
        """The domain holding the globally ``(time, epoch)``-minimal event.

        Epoch stamps are globally unique, so there are no ties: the linear
        scan (domain order is fixed) is deterministic for free.
        """
        best = None
        best_key = None
        for domain in self.domains:
            key = domain.queue.peek_key()
            if key is not None and (best_key is None or key < best_key):
                best, best_key = domain, key
        return best

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending event across all domains, or None."""
        domain = self._min_domain()
        if domain is None:
            return None
        key = domain.queue.peek_key()
        return None if key is None else key[0]

    def step(self) -> bool:
        """Dispatch the single globally-next event.  False when drained."""
        domain = self._min_domain()
        if domain is None:
            return False
        event = domain.queue.pop()
        if event is None:  # pragma: no cover - _min_domain saw a key
            return False
        if event.time < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = event.time
        self._executing = domain.index
        try:
            event.callback(*event.args)
        finally:
            self._executing = None
        return True

    def run_until_idle(self, max_time: Optional[float] = None,
                       max_events: int = 10_000_000) -> float:
        """Run events across all domains; returns the final virtual time."""
        if self._running:
            raise SimulationError(
                "run_until_idle re-entered; scheduler is not reentrant")
        self._running = True
        try:
            for _ in range(max_events):
                next_time = self.peek_next_time()
                if next_time is None:
                    return self._now
                if max_time is not None and next_time > max_time:
                    self._now = max(self._now, max_time)
                    return self._now
                self.step()
            raise SimulationError(
                f"exceeded {max_events} events; runaway simulation?")
        finally:
            self._running = False

    def run_until(self, time: float) -> float:
        """Run all events at or before ``time``; returns the final time."""
        self.run_until_idle(max_time=time)
        self._now = max(self._now, time)
        return self._now

    def pending_count(self) -> int:
        """Not-yet-cancelled events queued across every domain."""
        return sum(domain.pending_count() for domain in self.domains)


def verify_domain_protocol(scheduler: DomainScheduler) -> List[str]:
    """Check the cross-domain message invariants; returns violations.

    * the accounting matrix and the total must agree (no lost crossings);
    * nothing travels to its own domain as a "cross" message;
    * with tracing on: epochs strictly increase in send order and no
      message is delivered before it was sent (conservative causality).
    """
    out: List[str] = []
    matrix_total = sum(sum(row) for row in scheduler.cross_matrix)
    if matrix_total != scheduler.cross_messages:
        out.append(f"cross-domain matrix sums to {matrix_total} but "
                   f"{scheduler.cross_messages} messages were counted")
    for index, row in enumerate(scheduler.cross_matrix):
        if row[index]:
            out.append(f"domain {index} recorded {row[index]} messages "
                       f"to itself")
    if scheduler.trace_messages:
        if len(scheduler.messages) != scheduler.cross_messages:
            out.append(f"traced {len(scheduler.messages)} messages but "
                       f"counted {scheduler.cross_messages}")
        last_epoch = -1
        for message in scheduler.messages:
            if message.epoch <= last_epoch:
                out.append(f"message epoch {message.epoch} not after "
                           f"{last_epoch}")
            last_epoch = message.epoch
            if message.deliver_at < message.sent_at:
                out.append(f"message epoch {message.epoch} delivered at "
                           f"{message.deliver_at} before send at "
                           f"{message.sent_at}")
    return out

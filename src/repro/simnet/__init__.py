"""Simulated network substrate: event loop, links, protocol costs, metering.

This package replaces the paper's physical measurement rig — real clients on
real networks captured with Wireshark, shaped by a Netfilter proxy — with a
deterministic discrete-event equivalent (see DESIGN.md, "Substitutions").
"""

from .analysis import (
    KindBreakdown,
    kind_breakdown,
    peak_throughput,
    sync_event_sizes,
    throughput_series,
)
from .clock import (
    CalendarEventQueue,
    Event,
    HeapEventQueue,
    SimulationError,
    Simulator,
    make_event_queue,
)
from .domains import (
    DomainMessage,
    DomainScheduler,
    EventDomain,
    verify_domain_protocol,
)
from .faults import (
    FaultEpisode,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultStats,
    TransferInterrupted,
)
from .link import (
    ACK_SIZE,
    MSS,
    PER_PACKET_HEADER,
    Link,
    LinkSpec,
    bj_link,
    lte_link,
    mn_link,
    packetize,
)
from .meter import Direction, MeterSnapshot, TrafficMeter, TrafficRecord, TrafficTotals
from .netem import NetworkEmulator
from .protocol import Channel, ProtocolCosts

__all__ = [
    "ACK_SIZE",
    "CalendarEventQueue",
    "Channel",
    "DomainMessage",
    "DomainScheduler",
    "EventDomain",
    "HeapEventQueue",
    "KindBreakdown",
    "kind_breakdown",
    "peak_throughput",
    "sync_event_sizes",
    "throughput_series",
    "Direction",
    "Event",
    "FaultEpisode",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultStats",
    "TransferInterrupted",
    "Link",
    "LinkSpec",
    "MSS",
    "MeterSnapshot",
    "NetworkEmulator",
    "PER_PACKET_HEADER",
    "ProtocolCosts",
    "SimulationError",
    "Simulator",
    "TrafficMeter",
    "TrafficRecord",
    "TrafficTotals",
    "bj_link",
    "lte_link",
    "make_event_queue",
    "mn_link",
    "packetize",
    "verify_domain_protocol",
]

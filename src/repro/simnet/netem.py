"""Network emulation — the paper's Netfilter/Iptables proxy, in simulation.

The paper interposes "a pair of packet filters in the communication channel
between the client and the cloud" to tune bandwidth (up to 20 Mbps) and
latency in either direction (§3.2).  :class:`NetworkEmulator` provides the
same control surface for a simulated :class:`~repro.simnet.link.Link`: set
bandwidth/latency immediately or schedule changes at future virtual times,
with bounds checking that mirrors the physical rig's limits.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..units import Mbps
from .clock import Simulator
from .link import Link


class NetworkEmulator:
    """Adjusts a link's bandwidth and RTT, now or at scheduled times."""

    def __init__(self, sim: Simulator, link: Link, max_bandwidth: float = 20 * Mbps):
        self.sim = sim
        self.link = link
        self.max_bandwidth = max_bandwidth
        #: (time, up_bw, down_bw, rtt) history of applied settings.
        self.history: List[Tuple[float, float, float, float]] = []
        self._snapshot()

    def _snapshot(self) -> None:
        spec = self.link.spec
        self.history.append((self.sim.now, spec.up_bw, spec.down_bw, spec.rtt))

    def set_bandwidth(self, up_bw: Optional[float] = None,
                      down_bw: Optional[float] = None) -> None:
        """Clamp and apply new bandwidth(s), like the proxy's rate limiter."""
        spec = self.link.spec
        new_up = spec.up_bw if up_bw is None else up_bw
        new_down = spec.down_bw if down_bw is None else down_bw
        if new_up <= 0 or new_down <= 0:
            raise ValueError("bandwidth must be positive")
        self.link.spec = spec.with_bandwidth(
            up_bw=min(new_up, self.max_bandwidth),
            down_bw=min(new_down, self.max_bandwidth),
        )
        self._snapshot()

    def set_latency(self, rtt: float) -> None:
        """Apply a new round-trip time."""
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        self.link.spec = self.link.spec.with_rtt(rtt)
        self._snapshot()

    def set_loss(self, loss_rate: float) -> None:
        """Apply a packet loss rate (expected-value retransmission model)."""
        self.link.spec = self.link.spec.with_loss(loss_rate)
        self._snapshot()

    def schedule_bandwidth(self, delay: float, up_bw: Optional[float] = None,
                           down_bw: Optional[float] = None) -> None:
        """Change bandwidth ``delay`` seconds from now (mid-experiment tuning)."""
        self.sim.schedule(delay, self.set_bandwidth, up_bw, down_bw)

    def schedule_latency(self, delay: float, rtt: float) -> None:
        self.sim.schedule(delay, self.set_latency, rtt)

"""Wireshark-equivalent traffic accounting.

The paper records every packet between client and cloud with Wireshark and
reports *total sync traffic* (both directions), sometimes split into payload
and overhead (``Overhead traffic = Total sync traffic - payload``,
Experiment 1).  :class:`TrafficMeter` performs the same accounting on the
simulated wire: every byte a connection puts on the link is recorded with a
direction (``UP`` = client→cloud, ``DOWN`` = cloud→client), a payload/overhead
split, and a free-form kind tag used by tests and reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class Direction(enum.Enum):
    """Direction of traffic relative to the client."""

    UP = "up"      # client → cloud (the ISP trace's "inbound to the cloud")
    DOWN = "down"  # cloud → client


@dataclass(frozen=True)
class TrafficRecord:
    """One metered wire event (a transfer, handshake, ack stream, ...).

    ``wasted`` marks the failure-induced portion of the record — bytes that
    crossed the wire but delivered no new data (retransmissions, aborted
    transfers, rejected requests).  It is a *decomposition* of
    ``payload + overhead``, never an addition to it.
    """

    time: float
    direction: Direction
    payload: int
    overhead: int
    kind: str = ""
    wasted: int = 0

    @property
    def total(self) -> int:
        return self.payload + self.overhead


@dataclass
class TrafficTotals:
    """Aggregated byte counters for one direction."""

    payload: int = 0
    overhead: int = 0
    wasted: int = 0

    @property
    def total(self) -> int:
        return self.payload + self.overhead

    @property
    def useful(self) -> int:
        return self.total - self.wasted

    def add(self, payload: int, overhead: int, wasted: int = 0) -> None:
        self.payload += payload
        self.overhead += overhead
        self.wasted += wasted


class TrafficMeter:
    """Accumulates :class:`TrafficRecord` entries and exposes totals.

    One meter is attached per client session; the cloud shares it so both
    directions of each exchange land in the same ledger, exactly like a
    capture taken at the client's NIC.
    """

    def __init__(self) -> None:
        self.records: List[TrafficRecord] = []
        self._totals: Dict[Direction, TrafficTotals] = {
            Direction.UP: TrafficTotals(),
            Direction.DOWN: TrafficTotals(),
        }

    def record(
        self,
        time: float,
        direction: Direction,
        payload: int,
        overhead: int = 0,
        kind: str = "",
        wasted: int = 0,
    ) -> TrafficRecord:
        """Meter one wire event; negative byte counts are programming errors.

        ``wasted`` tags how much of this record was failure-induced; it must
        not exceed ``payload + overhead`` (it is a split, not extra bytes).
        """
        if payload < 0 or overhead < 0 or wasted < 0:
            raise ValueError("traffic byte counts must be non-negative")
        if wasted > payload + overhead:
            raise ValueError("wasted bytes cannot exceed the record's total")
        entry = TrafficRecord(time, direction, int(payload), int(overhead),
                              kind, int(wasted))
        self.records.append(entry)
        self._totals[direction].add(entry.payload, entry.overhead, entry.wasted)
        return entry

    # -- totals ----------------------------------------------------------

    @property
    def up(self) -> TrafficTotals:
        return self._totals[Direction.UP]

    @property
    def down(self) -> TrafficTotals:
        return self._totals[Direction.DOWN]

    @property
    def total_bytes(self) -> int:
        """Total sync traffic, both directions — the paper's numerator."""
        return self.up.total + self.down.total

    @property
    def payload_bytes(self) -> int:
        return self.up.payload + self.down.payload

    @property
    def overhead_bytes(self) -> int:
        return self.up.overhead + self.down.overhead

    @property
    def wasted_bytes(self) -> int:
        """Failure-induced bytes (retransmissions, aborts, rejected requests)."""
        return self.up.wasted + self.down.wasted

    @property
    def useful_bytes(self) -> int:
        """Total sync traffic minus the failure-induced component."""
        return self.total_bytes - self.wasted_bytes

    def bytes_by_kind(self) -> Dict[str, int]:
        """Total bytes grouped by record kind (handshake, payload, ack, ...)."""
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + record.total
        return out

    def totals_by_kind(self) -> Dict[str, TrafficTotals]:
        """Payload/overhead/wasted totals per record kind, both directions.

        The wasted-aware companion of :meth:`bytes_by_kind`: summing any
        field across kinds reproduces the meter-wide counter, which lets a
        per-kind ``useful_tue`` be reported and lets the conservation audit
        cross-check the ledger kind by kind.
        """
        out: Dict[str, TrafficTotals] = {}
        for record in self.records:
            totals = out.setdefault(record.kind, TrafficTotals())
            totals.add(record.payload, record.overhead, record.wasted)
        return out

    def snapshot(self) -> "MeterSnapshot":
        """Capture current totals so a caller can diff across an interval."""
        return MeterSnapshot(
            up_payload=self.up.payload,
            up_overhead=self.up.overhead,
            down_payload=self.down.payload,
            down_overhead=self.down.overhead,
            record_count=len(self.records),
            up_wasted=self.up.wasted,
            down_wasted=self.down.wasted,
        )

    def since(self, snapshot: "MeterSnapshot") -> "MeterSnapshot":
        """Totals accumulated since ``snapshot`` was taken."""
        return MeterSnapshot(
            up_payload=self.up.payload - snapshot.up_payload,
            up_overhead=self.up.overhead - snapshot.up_overhead,
            down_payload=self.down.payload - snapshot.down_payload,
            down_overhead=self.down.overhead - snapshot.down_overhead,
            record_count=len(self.records) - snapshot.record_count,
            up_wasted=self.up.wasted - snapshot.up_wasted,
            down_wasted=self.down.wasted - snapshot.down_wasted,
        )

    def records_since(self, snapshot: "MeterSnapshot") -> Tuple[TrafficRecord, ...]:
        """Records appended after ``snapshot`` was taken, as an immutable
        copy — records metered later must not leak into a captured view."""
        return tuple(self.records[snapshot.record_count:])

    def reset(self) -> None:
        self.records.clear()
        for totals in self._totals.values():
            totals.payload = 0
            totals.overhead = 0
            totals.wasted = 0


@dataclass(frozen=True)
class MeterSnapshot:
    """Immutable view of meter totals, used both as snapshot and as delta."""

    up_payload: int = 0
    up_overhead: int = 0
    down_payload: int = 0
    down_overhead: int = 0
    record_count: int = 0
    up_wasted: int = 0
    down_wasted: int = 0

    @property
    def up_total(self) -> int:
        return self.up_payload + self.up_overhead

    @property
    def down_total(self) -> int:
        return self.down_payload + self.down_overhead

    @property
    def total(self) -> int:
        return self.up_total + self.down_total

    @property
    def payload(self) -> int:
        return self.up_payload + self.down_payload

    @property
    def overhead(self) -> int:
        return self.up_overhead + self.down_overhead

    @property
    def wasted(self) -> int:
        return self.up_wasted + self.down_wasted

    @property
    def useful(self) -> int:
        return self.total - self.wasted

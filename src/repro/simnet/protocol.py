"""Transport and application-protocol cost model (TCP + TLS + HTTP).

Every commercial client the paper measures speaks HTTPS to its cloud.  The
overhead traffic the paper isolates in Experiment 1 ("TCP/HTTP(S) connection
setup and maintenance, metadata delivery, etc.") is reproduced here as an
explicit cost model:

* TCP handshake — 3 segments, one RTT before first byte;
* TLS handshake — ~1.2 KB up / ~3.8 KB down, two more RTTs;
* HTTP request/response framing per exchange;
* per-packet TCP/IP headers and the reverse ACK stream (via
  :mod:`repro.simnet.link`);
* connection reuse with an idle timeout, so rapid syncs share a connection
  while widely spaced syncs pay the handshake again.

We deliberately do not model congestion control; the paper's TUE effects
depend on serialisation delay and RTT counts, not on slow-start dynamics
(documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .clock import Simulator
from .faults import FaultInjector, TransferInterrupted
from .link import Link
from .meter import Direction, TrafficMeter

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..obs.recorder import TraceRecorder


@dataclass
class ProtocolCosts:
    """Byte/RTT costs of the HTTPS stack, tunable per service profile."""

    tcp_handshake_up: int = 2 * 66      # SYN + final ACK
    tcp_handshake_down: int = 66        # SYN-ACK
    tls_handshake_up: int = 1_200       # ClientHello + key exchange
    tls_handshake_down: int = 3_800     # ServerHello + certificate chain
    handshake_rtts: float = 3.0         # TCP (1) + TLS (2)
    request_header: int = 450           # HTTP request line + headers + TLS framing
    response_header: int = 350
    exchange_rtts: float = 1.0          # request→response turnaround
    idle_timeout: float = 55.0          # keep-alive window before re-handshake
    use_tls: bool = True
    #: TCP initial congestion window, segments (slow start restarts after
    #: idle periods, which sync workloads hit constantly).
    initial_cwnd: int = 10
    #: Upload-queue RTT inflation ("bufferbloat"): every protocol round trip
    #: issued while the uplink queue drains waits behind it.  Real and large
    #: on low-bandwidth residential uplinks like the paper's BJ vantage point.
    queue_inflation: float = 6.0
    #: How long the client takes to notice a dead link (RTO-style timeout)
    #: when a fault-injection blackout swallows its traffic.
    fault_detect_timeout: float = 1.0


class Channel:
    """One client's HTTPS channel to the cloud, metered end to end.

    All sync traffic flows through :meth:`exchange`; the channel transparently
    (re-)establishes its connection, meters every byte on the shared
    :class:`TrafficMeter`, and returns the wall-clock duration of the exchange
    so the caller can schedule completion events.
    """

    def __init__(self, sim: Simulator, link: Link, meter: TrafficMeter,
                 costs: Optional[ProtocolCosts] = None,
                 faults: Optional[FaultInjector] = None,
                 recorder: Optional["TraceRecorder"] = None):
        self.sim = sim
        self.link = link
        self.meter = meter
        self.costs = costs or ProtocolCosts()
        self.faults = faults
        #: Optional trace recorder (duck-typed; see repro.obs).  Every wire
        #: event emits exactly one span so the conservation audit can match
        #: span deltas against meter totals byte for byte.
        self.recorder = recorder
        self._connected_until: float = -1.0
        #: End time of the latest exchange — lets fault lookups see time
        #: advance *within* a sync transaction, whose exchanges all run at
        #: one frozen ``sim.now``.
        self._busy_until: float = 0.0
        self.handshake_count = 0
        self.exchange_count = 0

    # -- intra-transaction time ------------------------------------------

    def effective_now(self) -> float:
        """Wire-level current time: the simulator clock, advanced past any
        exchanges already performed in the current sync transaction.

        Without a fault injector this is exactly ``sim.now``, preserving the
        historical (and calibrated) keep-alive behaviour byte for byte.
        """
        if self.faults is None:
            return self.sim.now
        return max(self.sim.now, self._busy_until)

    def wait(self, seconds: float) -> None:
        """Advance the wire clock without traffic (retry backoff sleeps)."""
        self._busy_until = self.effective_now() + max(seconds, 0.0)

    # -- connection management -------------------------------------------

    def _ensure_connection(self, now: float) -> float:
        """Meter a handshake if the keep-alive window lapsed; return its duration."""
        if now <= self._connected_until:
            return 0.0
        costs = self.costs
        up = costs.tcp_handshake_up
        down = costs.tcp_handshake_down
        if costs.use_tls:
            up += costs.tls_handshake_up
            down += costs.tls_handshake_down
        recorder = self.recorder
        before = self.meter.snapshot() if recorder is not None else None
        self.meter.record(now, Direction.UP, 0, up, kind="handshake")
        self.meter.record(now, Direction.DOWN, 0, down, kind="handshake")
        self.handshake_count += 1
        duration = (
            self.link.round_trip_time(costs.handshake_rtts)
            + self.link.transfer_time(up, upstream=True)
            + self.link.transfer_time(down, upstream=False)
        )
        if recorder is not None:
            recorder.record_span(
                "connect", "handshake", "channel", now, now + duration,
                delta=self.meter.since(before), op="handshake",
                up_bytes=up, down_bytes=down)
        return duration

    def _touch(self, end_time: float) -> None:
        self._connected_until = end_time + self.costs.idle_timeout

    # -- exchanges ---------------------------------------------------------

    def exchange(
        self,
        up_payload: int = 0,
        down_payload: int = 0,
        kind: str = "exchange",
        extra_rtts: float = 0.0,
        up_meta: int = 0,
        down_meta: int = 0,
    ) -> float:
        """Perform one HTTP exchange and return its duration in seconds.

        ``up_payload``/``down_payload`` are file-content bytes (metered as
        payload).  ``up_meta``/``down_meta`` are service metadata bytes
        (indexes, JSON envelopes) metered as overhead on top of the fixed
        HTTP framing.  ``extra_rtts`` models additional protocol round trips
        (e.g. chunked commit protocols).

        With a fault injector attached, loss bursts inflate the expected
        retransmissions and a blackout overlapping the transfer aborts it:
        the bytes already sent are metered as wasted traffic and
        :class:`TransferInterrupted` is raised for the client's retry policy.
        """
        start = self.effective_now()
        duration = self._ensure_connection(start)
        costs = self.costs
        recorder = self.recorder
        before = self.meter.snapshot() if recorder is not None else None

        up_overhead_app = costs.request_header + up_meta
        down_overhead_app = costs.response_header + down_meta

        up_wire = up_payload + up_overhead_app
        down_wire = down_payload + down_overhead_app
        up_hdr, up_acks = self.link.wire_cost(up_wire)
        down_hdr, down_acks = self.link.wire_cost(down_wire)

        # Loss: expected retransmissions add overhead bytes and recovery
        # RTTs.  An active loss burst raises the loss rate for this exchange.
        loss_rate: Optional[float] = None
        if self.faults is not None:
            boost = self.faults.loss_boost(start)
            if boost > 0.0:
                loss_rate = min(self.link.spec.loss_rate + boost, 0.95)
        up_retx = self.link.retransmit_overhead(up_wire + up_hdr, loss_rate)
        down_retx = self.link.retransmit_overhead(down_wire + down_hdr, loss_rate)

        up_transfer = self.link.transfer_time(up_wire + up_hdr + up_retx,
                                              upstream=True)
        down_transfer = self.link.transfer_time(down_wire + down_hdr + down_retx,
                                                upstream=False)
        rtts = (costs.exchange_rtts + extra_rtts + self._slow_start_rtts(up_wire)
                + self.link.recovery_rtts(up_wire + up_hdr, loss_rate=loss_rate))
        # Bufferbloat: round trips issued during the upload wait behind the
        # uplink queue, so each effective RTT stretches by the residual
        # serialisation delay.
        queue_delay = costs.queue_inflation * up_transfer
        duration += (
            up_transfer + down_transfer
            + self.link.round_trip_time(rtts) + queue_delay
        )

        if self.faults is not None:
            episode = self.faults.interrupting_blackout(start, start + duration)
            if episode is not None:
                raise self._interrupt(
                    start, duration, episode, kind,
                    gross_up=up_wire + up_hdr + up_retx,
                    gross_down=down_wire + down_hdr + down_retx)

        # Forward bytes (payload split out) + reverse ACK streams.  The
        # retransmitted portion is real wire traffic but delivers nothing
        # new, so it is tagged as the record's wasted component.
        self.meter.record(start, Direction.UP, up_payload,
                          up_overhead_app + up_hdr + down_acks + up_retx,
                          kind=kind, wasted=up_retx)
        self.meter.record(start, Direction.DOWN, down_payload,
                          down_overhead_app + down_hdr + up_acks + down_retx,
                          kind=kind, wasted=down_retx)

        self.exchange_count += 1
        end_time = start + duration
        if recorder is not None:
            recorder.record_span(
                "exchange", kind, "channel", start, end_time,
                delta=self.meter.since(before), op="exchange",
                up_payload=up_payload, down_payload=down_payload,
                up_wire=up_wire, down_wire=down_wire,
                up_retx=up_retx, down_retx=down_retx)
        self._busy_until = end_time
        self._touch(end_time)
        return duration

    def estimate_exchange(self, up_payload: int = 0, down_payload: int = 0,
                          up_meta: int = 0, down_meta: int = 0):
        """Exact ``(up_total, down_total)`` wire bytes :meth:`exchange`
        would meter for these inputs, without performing it.

        Replicates the packetisation arithmetic byte for byte — framing
        headers, per-packet costs, the reverse ACK streams, and the base
        link's expected retransmissions — assuming a warm connection and
        no active fault episode.  This is the planning primitive the
        adaptive sync-strategy selector scores candidates with; a test
        pins estimate == metered for executed exchanges.
        """
        costs = self.costs
        up_wire = up_payload + costs.request_header + up_meta
        down_wire = down_payload + costs.response_header + down_meta
        up_hdr, up_acks = self.link.wire_cost(up_wire)
        down_hdr, down_acks = self.link.wire_cost(down_wire)
        up_retx = self.link.retransmit_overhead(up_wire + up_hdr, None)
        down_retx = self.link.retransmit_overhead(down_wire + down_hdr, None)
        return (up_wire + up_hdr + down_acks + up_retx,
                down_wire + down_hdr + up_acks + down_retx)

    def _interrupt(self, start: float, duration: float, episode,
                   kind: str, gross_up: int, gross_down: int) -> TransferInterrupted:
        """Abort an exchange swallowed by a blackout; meter the waste."""
        costs = self.costs
        fail_at = max(episode.start, start)
        progress = (fail_at - start) / duration if duration > 0 else 0.0
        sent_up = int(gross_up * progress)
        sent_down = int(gross_down * progress)
        mid_transfer = sent_up > 0 or sent_down > 0
        if not mid_transfer:
            # The connection attempt ran straight into the outage: only the
            # unanswered SYN retries cross the wire.
            sent_up = costs.tcp_handshake_up
        detect = min(costs.fault_detect_timeout, max(episode.end - fail_at, 0.0))
        elapsed = (fail_at - start) + detect
        recorder = self.recorder
        before = self.meter.snapshot() if recorder is not None else None
        self.meter.record(fail_at, Direction.UP, 0, sent_up,
                          kind=kind + "-aborted", wasted=sent_up)
        if sent_down:
            self.meter.record(fail_at, Direction.DOWN, 0, sent_down,
                              kind=kind + "-aborted", wasted=sent_down)
        if recorder is not None:
            recorder.record_span(
                "exchange", kind + "-aborted", "channel", start,
                start + elapsed, delta=self.meter.since(before), op="aborted",
                sent_up=sent_up, sent_down=sent_down if sent_down else 0)
            recorder.record_span(
                "fault-episode", "blackout", "channel", fail_at, episode.end,
                wasted=sent_up + (sent_down if sent_down else 0),
                mid_transfer=mid_transfer)
        self.faults.note_abort(sent_up + sent_down, mid_transfer)
        self._busy_until = start + elapsed
        self._connected_until = -1.0  # the blackout killed the connection
        return TransferInterrupted(
            f"link blackout at t={fail_at:.3f}s aborted {kind!r}",
            elapsed=elapsed, retry_at=episode.end, wasted=sent_up + sent_down)

    def error_exchange(self, kind: str = "rejected") -> float:
        """A request the service refuses outright (503/429, no body).

        The request/response framing still crosses the wire; all of it is
        failure-induced, so the whole exchange is metered as wasted.
        """
        start = self.effective_now()
        duration = self._ensure_connection(start)
        costs = self.costs
        recorder = self.recorder
        before = self.meter.snapshot() if recorder is not None else None
        up_hdr, up_acks = self.link.wire_cost(costs.request_header)
        down_hdr, down_acks = self.link.wire_cost(costs.response_header)
        up_bytes = costs.request_header + up_hdr + down_acks
        down_bytes = costs.response_header + down_hdr + up_acks
        self.meter.record(start, Direction.UP, 0, up_bytes,
                          kind=kind, wasted=up_bytes)
        self.meter.record(start, Direction.DOWN, 0, down_bytes,
                          kind=kind, wasted=down_bytes)
        duration += (self.link.transfer_time(up_bytes, upstream=True)
                     + self.link.transfer_time(down_bytes, upstream=False)
                     + self.link.round_trip_time(costs.exchange_rtts))
        end_time = start + duration
        if recorder is not None:
            recorder.record_span(
                "exchange", kind, "channel", start, end_time,
                delta=self.meter.since(before), op="rejected",
                up_wire=costs.request_header, down_wire=costs.response_header)
        self._busy_until = end_time
        self._touch(end_time)
        return duration

    def resend_wasted(self, wire_bytes: int, kind: str = "restart") -> float:
        """Re-send ``wire_bytes`` that were already delivered once.

        Used by restart-from-zero clients: after a mid-file failure, every
        chunk delivered before the failure is pushed again.  The repeat
        delivers no new data, so it is metered entirely as wasted overhead.
        """
        if wire_bytes <= 0:
            return 0.0
        start = self.effective_now()
        duration = self._ensure_connection(start)
        recorder = self.recorder
        before = self.meter.snapshot() if recorder is not None else None
        hdr, acks = self.link.wire_cost(wire_bytes)
        gross_up = wire_bytes + hdr
        self.meter.record(start, Direction.UP, 0, gross_up,
                          kind=kind, wasted=gross_up)
        self.meter.record(start, Direction.DOWN, 0, acks,
                          kind=kind, wasted=acks)
        up_transfer = self.link.transfer_time(gross_up, upstream=True)
        duration += (up_transfer * (1.0 + self.costs.queue_inflation)
                     + self.link.round_trip_time(1.0))
        end_time = start + duration
        if recorder is not None:
            recorder.record_span(
                "exchange", kind, "channel", start, end_time,
                delta=self.meter.since(before), op="restart",
                wire_bytes=wire_bytes)
        self._busy_until = end_time
        self._touch(end_time)
        return duration

    def _slow_start_rtts(self, wire_bytes: int) -> float:
        """Extra round trips spent growing the congestion window from cold.

        Sync transactions are separated by idle periods long enough for the
        congestion window to reset, so every exchange restarts slow start.
        """
        from .link import MSS
        segments = -(-wire_bytes // MSS) if wire_bytes > 0 else 0
        cwnd = max(self.costs.initial_cwnd, 1)
        rounds = 0
        while segments > cwnd:
            segments -= cwnd
            cwnd *= 2
            rounds += 1
        return float(rounds)

    def notify(self, nbytes: int, kind: str = "notification") -> float:
        """Server→client push (sync notifications, status updates)."""
        hdr, acks = self.link.wire_cost(nbytes)
        start = self.effective_now()
        recorder = self.recorder
        before = self.meter.snapshot() if recorder is not None else None
        self.meter.record(start, Direction.DOWN, 0, nbytes + hdr, kind=kind)
        if acks:
            self.meter.record(start, Direction.UP, 0, acks, kind=kind)
        duration = self.link.transfer_time(nbytes + hdr, upstream=False) \
            + self.link.round_trip_time(0.5)
        if recorder is not None:
            recorder.record_span(
                "exchange", kind, "channel", start, start + duration,
                delta=self.meter.since(before), op="notification",
                nbytes=nbytes)
        self._busy_until = start + duration
        self._touch(start + duration)
        return duration

    def drop_connection(self) -> None:
        """Force the next exchange to pay a fresh handshake."""
        self._connected_until = -1.0

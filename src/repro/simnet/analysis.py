"""Capture analysis: the post-processing the paper does on its pcaps.

Given a :class:`~repro.simnet.meter.TrafficMeter`, these helpers compute
what the paper extracts from Wireshark captures: totals per traffic kind,
a time-bucketed throughput series, per-sync-event sizes, and the
overhead/payload decomposition of Experiment 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .meter import Direction, TrafficMeter, TrafficRecord


@dataclass(frozen=True)
class KindBreakdown:
    """Bytes and event count for one record kind."""

    kind: str
    total: int
    payload: int
    overhead: int
    events: int

    @property
    def overhead_fraction(self) -> float:
        return self.overhead / self.total if self.total else 0.0


def kind_breakdown(meter: TrafficMeter) -> List[KindBreakdown]:
    """Per-kind totals, sorted by descending bytes."""
    grouped: Dict[str, List[TrafficRecord]] = {}
    for record in meter.records:
        grouped.setdefault(record.kind, []).append(record)
    rows = [
        KindBreakdown(
            kind=kind,
            total=sum(r.total for r in records),
            payload=sum(r.payload for r in records),
            overhead=sum(r.overhead for r in records),
            events=len(records),
        )
        for kind, records in grouped.items()
    ]
    rows.sort(key=lambda row: row.total, reverse=True)
    return rows


def throughput_series(meter: TrafficMeter, bucket: float = 1.0,
                      direction: Optional[Direction] = None
                      ) -> List[Tuple[float, int]]:
    """(bucket_start_time, bytes) series — the Wireshark I/O graph.

    Empty buckets between active ones are included (zeros), so the series
    is uniform and plottable.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    if not meter.records:
        return []
    totals: Dict[int, int] = {}
    for record in meter.records:
        if direction is not None and record.direction is not direction:
            continue
        totals[int(record.time // bucket)] = \
            totals.get(int(record.time // bucket), 0) + record.total
    if not totals:
        return []
    first, last = min(totals), max(totals)
    return [(index * bucket, totals.get(index, 0))
            for index in range(first, last + 1)]


def sync_event_sizes(meter: TrafficMeter, gap: float = 0.5) -> List[int]:
    """Total bytes of each sync event, where records separated by more than
    ``gap`` seconds of silence belong to different events.

    This is how the paper attributes capture bytes to individual sync
    operations when measuring per-operation traffic.
    """
    if gap <= 0:
        raise ValueError("gap must be positive")
    events: List[int] = []
    current = 0
    last_time: Optional[float] = None
    for record in sorted(meter.records, key=lambda r: r.time):
        if last_time is not None and record.time - last_time > gap:
            events.append(current)
            current = 0
        current += record.total
        last_time = record.time
    if current:
        events.append(current)
    return events


def peak_throughput(meter: TrafficMeter, bucket: float = 1.0) -> float:
    """Peak bytes/second over any bucket — the paper's bandwidth probe."""
    series = throughput_series(meter, bucket)
    if not series:
        return 0.0
    return max(nbytes for _, nbytes in series) / bucket

"""Deterministic fault injection: loss bursts, blackouts, server brownouts.

The paper's BJ vantage point (1.6 Mbps, 200–480 ms RTT) shows how sync
traffic efficiency degrades on bad networks, but real bad networks do more
than stretch RTTs: links flap, packets are lost in bursts, and servers
answer 503/429 during brownouts.  Each such failure forces the client to
retransmit — traffic that inflates TUE without delivering any new data.

This module supplies the failure side of that story in a fully deterministic
way.  A :class:`FaultSchedule` is a seeded, pre-drawn list of
:class:`FaultEpisode` windows; :meth:`FaultSchedule.thin` scales the fault
*rate* by keeping the subset of episodes whose pre-drawn uniform coordinate
falls below the rate.  Thinning is monotone — ``thin(r1).episodes`` is a
subset of ``thin(r2).episodes`` whenever ``r1 <= r2`` — so sweeping the rate
can only ever add failures, which keeps TUE-vs-rate curves monotone by
construction.

A :class:`FaultInjector` binds a schedule to the live rig: the
:class:`~repro.simnet.protocol.Channel` consults it for loss bursts and
mid-transfer blackouts, and the :class:`~repro.cloud.CloudServer` consults
it for availability windows.  Recovery (backoff, retries, resume-or-restart)
lives on the client side, in :mod:`repro.client.retry`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


class FaultKind(enum.Enum):
    """What kind of failure an episode injects."""

    #: Elevated packet loss for the episode's duration (severity = loss rate).
    LOSS_BURST = "loss-burst"
    #: Total link outage: transfers in flight abort, new ones cannot start.
    BLACKOUT = "blackout"
    #: The service answers every request with 503 for the window.
    SERVER_UNAVAILABLE = "server-unavailable"
    #: The service answers every request with 429 for the window.
    RATE_LIMIT = "rate-limit"


#: Episode kinds the network layer (Channel) reacts to.
NETWORK_KINDS = (FaultKind.LOSS_BURST, FaultKind.BLACKOUT)
#: Episode kinds the cloud layer (CloudServer) reacts to.
SERVER_KINDS = (FaultKind.SERVER_UNAVAILABLE, FaultKind.RATE_LIMIT)


class TransferInterrupted(RuntimeError):
    """A wire transfer aborted mid-flight (link blackout).

    ``elapsed`` is the wall-clock time the client spent before noticing the
    failure; ``retry_at`` is the earliest virtual time a retry can succeed
    (the blackout's end); ``wasted`` is how many bytes crossed the wire for
    nothing and were metered as failure-induced traffic.
    """

    def __init__(self, message: str, elapsed: float = 0.0,
                 retry_at: Optional[float] = None, wasted: int = 0):
        super().__init__(message)
        self.elapsed = elapsed
        self.retry_at = retry_at
        self.wasted = wasted


@dataclass(frozen=True)
class FaultEpisode:
    """One failure window on the virtual timeline."""

    start: float
    duration: float
    kind: FaultKind
    #: Loss rate for LOSS_BURST episodes; unused (1.0) for hard outages.
    severity: float = 1.0
    #: Pre-drawn uniform coordinate used by rate thinning.
    draw: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("episodes need start >= 0 and duration > 0")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end

    def overlaps(self, start: float, end: float) -> bool:
        """Does this episode intersect the half-open interval [start, end)?"""
        return self.start < end and start < self.end


class FaultSchedule:
    """An immutable, time-sorted list of fault episodes."""

    def __init__(self, episodes: Iterable[FaultEpisode] = ()):
        self.episodes: Tuple[FaultEpisode, ...] = tuple(
            sorted(episodes, key=lambda e: (e.start, e.end)))

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float,
        mean_interval: float = 30.0,
        mean_duration: float = 3.0,
        kind_weights: Optional[Sequence[Tuple[FaultKind, float]]] = None,
        burst_loss: float = 0.3,
    ) -> "FaultSchedule":
        """Draw a reproducible episode schedule over ``[0, horizon)``.

        Episode starts follow a Poisson process of intensity
        ``1/mean_interval``; durations are exponential with ``mean_duration``;
        kinds are drawn from ``kind_weights``.  Every random draw comes from
        one ``random.Random(seed)``, so identical arguments always produce
        the identical schedule.  Each episode also records a ``draw``
        coordinate so :meth:`thin` can scale the rate monotonically.
        """
        if horizon <= 0 or mean_interval <= 0 or mean_duration <= 0:
            raise ValueError("horizon, mean_interval, mean_duration must be positive")
        weights = list(kind_weights or (
            (FaultKind.BLACKOUT, 0.45),
            (FaultKind.SERVER_UNAVAILABLE, 0.25),
            (FaultKind.RATE_LIMIT, 0.15),
            (FaultKind.LOSS_BURST, 0.15),
        ))
        kinds = [kind for kind, _ in weights]
        mass = [weight for _, weight in weights]
        rng = random.Random(seed)
        episodes: List[FaultEpisode] = []
        clock = rng.expovariate(1.0 / mean_interval)
        while clock < horizon:
            duration = max(rng.expovariate(1.0 / mean_duration), 1e-3)
            kind = rng.choices(kinds, weights=mass)[0]
            severity = burst_loss if kind is FaultKind.LOSS_BURST else 1.0
            episodes.append(FaultEpisode(
                start=clock, duration=duration, kind=kind,
                severity=severity, draw=rng.random()))
            clock += rng.expovariate(1.0 / mean_interval)
        return cls(episodes)

    def thin(self, rate: float) -> "FaultSchedule":
        """Keep episodes with ``draw < rate`` — the fault-rate dial.

        ``rate=0`` gives an empty schedule, ``rate=1`` the full one, and the
        kept sets are nested in ``rate`` (monotone thinning).
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        return FaultSchedule(e for e in self.episodes if e.draw < rate)

    def __len__(self) -> int:
        return len(self.episodes)

    def __iter__(self):
        return iter(self.episodes)

    # -- queries ----------------------------------------------------------

    def active_at(self, time: float,
                  kinds: Optional[Sequence[FaultKind]] = None) -> Optional[FaultEpisode]:
        """The first episode (of the given kinds) covering ``time``."""
        for episode in self.episodes:
            if episode.start > time:
                break
            if episode.active_at(time) and (kinds is None or episode.kind in kinds):
                return episode
        return None

    def first_overlapping(self, start: float, end: float,
                          kinds: Optional[Sequence[FaultKind]] = None) -> Optional[FaultEpisode]:
        """The earliest episode (of the given kinds) intersecting [start, end)."""
        for episode in self.episodes:
            if episode.start >= end:
                break
            if episode.overlaps(start, end) and (kinds is None or episode.kind in kinds):
                return episode
        return None


@dataclass
class FaultStats:
    """Counters describing what the injector actually did to a run."""

    blackout_aborts: int = 0
    connect_failures: int = 0
    loss_bursts_hit: int = 0
    server_unavailable: int = 0
    rate_limited: int = 0
    wasted_bytes_injected: int = 0

    @property
    def total_injected(self) -> int:
        return (self.blackout_aborts + self.connect_failures
                + self.server_unavailable + self.rate_limited)


class FaultInjector:
    """Binds a :class:`FaultSchedule` to the live measurement rig.

    The injector itself is passive — it only answers "is there a fault at
    time t?" and records statistics.  The channel and the cloud server call
    in at the appropriate points; the client's retry policy decides what
    happens next.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self.stats = FaultStats()

    # -- network-side queries (used by Channel) ---------------------------

    def loss_boost(self, time: float) -> float:
        """Extra packet-loss probability from a loss burst active at ``time``."""
        episode = self.schedule.active_at(time, kinds=(FaultKind.LOSS_BURST,))
        if episode is None:
            return 0.0
        self.stats.loss_bursts_hit += 1
        return episode.severity

    def interrupting_blackout(self, start: float, end: float) -> Optional[FaultEpisode]:
        """The blackout (if any) that aborts a transfer spanning [start, end)."""
        return self.schedule.first_overlapping(
            start, end, kinds=(FaultKind.BLACKOUT,))

    # -- server-side queries (used by CloudServer) ------------------------

    def server_episode(self, time: float) -> Optional[FaultEpisode]:
        """The brownout window (503/429) active at ``time``, if any."""
        return self.schedule.active_at(time, kinds=SERVER_KINDS)

    # -- bookkeeping ------------------------------------------------------

    def note_abort(self, wasted: int, mid_transfer: bool) -> None:
        if mid_transfer:
            self.stats.blackout_aborts += 1
        else:
            self.stats.connect_failures += 1
        self.stats.wasted_bytes_injected += wasted

    def note_server_fault(self, episode: FaultEpisode) -> None:
        if episode.kind is FaultKind.RATE_LIMIT:
            self.stats.rate_limited += 1
        else:
            self.stats.server_unavailable += 1

"""The paper's controlled benchmark experiments (Experiments 1–7').

Every function here reproduces one experiment from §4–§6 and returns plain
result dataclasses the benchmark harness renders into the paper's tables and
figure series.  All experiments are pure functions of their parameters —
each builds a fresh simulated rig via :class:`~repro.client.SyncSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..client import (
    AccessMethod,
    M1,
    MachineProfile,
    ServiceProfile,
    SERVICES,
    SyncSession,
    service_profile,
)
from ..content import random_content
from ..simnet import LinkSpec, mn_link
from ..units import KB, MB

DEFAULT_SIZES = (1, 1 * KB, 1 * MB, 10 * MB)
ALL_ACCESS = (AccessMethod.PC, AccessMethod.WEB, AccessMethod.MOBILE)


def _session(service: str, access: AccessMethod,
             machine: MachineProfile = M1,
             link_spec: Optional[LinkSpec] = None,
             profile: Optional[ServiceProfile] = None) -> SyncSession:
    return SyncSession(profile or service_profile(service, access),
                       machine=machine, link_spec=link_spec or mn_link())


# ---------------------------------------------------------------------------
# Experiment 1 — file creation (Table 6, Figure 3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CreationCell:
    """One (service, access, size) cell of Table 6."""

    service: str
    access: AccessMethod
    size: int
    traffic: int
    overhead: int

    @property
    def tue(self) -> float:
        """TUE (Eq. 1): sync traffic over data update size.

        A zero-byte creation has no data update to amortise against, so its
        TUE is infinite by convention — the old ``max(size, 1)`` guard
        silently reported TUE == traffic, as if one byte had been written.
        """
        if self.size == 0:
            return float("inf")
        return self.traffic / self.size


@dataclass
class CreationResult:
    cells: List[CreationCell] = field(default_factory=list)

    def get(self, service: str, access: AccessMethod, size: int) -> CreationCell:
        for cell in self.cells:
            if (cell.service, cell.access, cell.size) == (service, access, size):
                return cell
        raise KeyError((service, access, size))


def measure_creation(service: str, access: AccessMethod, size: int,
                     seed: int = 1,
                     machine: MachineProfile = M1,
                     link_spec: Optional[LinkSpec] = None) -> CreationCell:
    """Sync one freshly created "highly compressed" file of ``size`` bytes."""
    session = _session(service, access, machine, link_spec)
    session.create_random_file("exp1.bin", size, seed=seed)
    session.run_until_idle()
    return CreationCell(
        service=service, access=access, size=size,
        traffic=session.total_traffic,
        overhead=session.total_traffic - session.meter.payload_bytes,
    )


def experiment1_creation(
    services: Sequence[str] = SERVICES,
    access_methods: Sequence[AccessMethod] = ALL_ACCESS,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> CreationResult:
    """Reproduce Table 6: sync traffic of a compressed file creation."""
    result = CreationResult()
    for service in services:
        for access in access_methods:
            for size in sizes:
                result.cells.append(measure_creation(service, access, size))
    return result


def experiment1_tue_curve(
    services: Sequence[str] = SERVICES,
    sizes: Sequence[int] = (1, 10, 100, 1 * KB, 10 * KB, 100 * KB,
                            1 * MB, 10 * MB),
    access: AccessMethod = AccessMethod.PC,
) -> Dict[str, List[Tuple[int, float]]]:
    """Reproduce Figure 3: TUE vs. size of the created file (PC clients)."""
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for service in services:
        curves[service] = [
            (size, measure_creation(service, access, size).tue)
            for size in sizes
        ]
    return curves


# ---------------------------------------------------------------------------
# Experiment 1' — batched creation (Table 7)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchCreationRow:
    service: str
    access: AccessMethod
    traffic: int
    tue: float
    sync_transactions: int


def measure_batch_creation(service: str, access: AccessMethod,
                           count: int = 100, file_size: int = 1 * KB) -> BatchCreationRow:
    """Move ``count`` distinct compressed files into the folder in a batch."""
    session = _session(service, access)
    for index in range(count):
        session.create_random_file(f"batch/file{index:03d}.bin", file_size,
                                   seed=1000 + index)
    session.run_until_idle()
    update = count * file_size
    return BatchCreationRow(
        service=service, access=access,
        traffic=session.total_traffic,
        tue=session.total_traffic / update,
        sync_transactions=session.client.stats.sync_transactions,
    )


def experiment1_batch(
    services: Sequence[str] = SERVICES,
    access_methods: Sequence[AccessMethod] = ALL_ACCESS,
    count: int = 100,
    file_size: int = 1 * KB,
) -> List[BatchCreationRow]:
    """Reproduce Table 7: total traffic for 100 batched 1 KB creations."""
    return [
        measure_batch_creation(service, access, count, file_size)
        for service in services
        for access in access_methods
    ]


# ---------------------------------------------------------------------------
# Experiment 2 — file deletion
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeletionRow:
    service: str
    access: AccessMethod
    size: int
    deletion_traffic: int


def experiment2_deletion(
    services: Sequence[str] = SERVICES,
    access_methods: Sequence[AccessMethod] = (AccessMethod.PC,),
    sizes: Sequence[int] = (1 * KB, 1 * MB, 10 * MB),
) -> List[DeletionRow]:
    """Delete each created file once fully synced; meter only the deletion."""
    rows = []
    for service in services:
        for access in access_methods:
            for size in sizes:
                session = _session(service, access)
                session.create_random_file("doomed.bin", size, seed=2)
                session.run_until_idle()
                session.reset_meter()
                session.delete_file("doomed.bin")
                session.run_until_idle()
                rows.append(DeletionRow(service, access, size,
                                        session.total_traffic))
    return rows


# ---------------------------------------------------------------------------
# Experiment 3 — one-byte modification (Figure 4)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ModificationCell:
    service: str
    access: AccessMethod
    size: int
    traffic: int

    @property
    def tue(self) -> float:
        """TUE against the 1-byte data update; infinite for an (impossible
        to modify, but constructible) zero-size cell, matching
        :class:`CreationCell`."""
        if self.size == 0:
            return float("inf")
        # TUE against a 1-byte update *is* the byte count, as a ratio.
        return float(self.traffic)  # reprolint: disable=REP010 deliberate


def measure_modification(service: str, access: AccessMethod, size: int,
                         seed: int = 3) -> ModificationCell:
    """Sync a random one-byte modification of a Z-byte compressed file."""
    session = _session(service, access)
    session.create_random_file("exp3.bin", size, seed=seed)
    session.run_until_idle()
    session.reset_meter()
    session.modify_random_byte("exp3.bin", seed=seed)
    session.run_until_idle()
    return ModificationCell(service, access, size, session.total_traffic)


def experiment3_modification(
    services: Sequence[str] = SERVICES,
    access_methods: Sequence[AccessMethod] = ALL_ACCESS,
    sizes: Sequence[int] = (1 * KB, 10 * KB, 100 * KB, 1 * MB),
) -> List[ModificationCell]:
    """Reproduce Figure 4: sync traffic of a random byte modification."""
    return [
        measure_modification(service, access, size)
        for access in access_methods
        for service in services
        for size in sizes
    ]


# ---------------------------------------------------------------------------
# Experiment 4 — compression (Table 8)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompressionRow:
    service: str
    access: AccessMethod
    size: int
    upload_traffic: int
    download_traffic: int


def measure_compression(service: str, access: AccessMethod,
                        size: int = 10 * MB, seed: int = 4) -> CompressionRow:
    """Upload then download an X-byte text file of random English words."""
    session = _session(service, access)
    session.create_text_file("exp4.txt", size, seed=seed)
    session.run_until_idle()
    upload = session.total_traffic
    session.reset_meter()
    session.download("exp4.txt")
    session.run_until_idle()
    return CompressionRow(service, access, size, upload, session.total_traffic)


def experiment4_compression(
    services: Sequence[str] = SERVICES,
    access_methods: Sequence[AccessMethod] = ALL_ACCESS,
    size: int = 10 * MB,
) -> List[CompressionRow]:
    """Reproduce Table 8: sync traffic of a 10-MB text file, UP and DN."""
    return [
        measure_compression(service, access, size)
        for service in services
        for access in access_methods
    ]


# ---------------------------------------------------------------------------
# Experiment 6 — frequent modifications (Figure 6) and ASD
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AppendingRun:
    """Result of one "X KB / X sec" appending experiment."""

    service: str
    x: float
    total_appended: int
    traffic: int
    tue: float
    sync_transactions: int
    mean_batch_ops: float


def run_appending(
    service: str,
    x: float,
    total: int = 1 * MB,
    access: AccessMethod = AccessMethod.PC,
    machine: MachineProfile = M1,
    link_spec: Optional[LinkSpec] = None,
    profile: Optional[ServiceProfile] = None,
    append_kb: Optional[float] = None,
    seed: int = 6,
) -> AppendingRun:
    """Append ``x`` KB every ``x`` seconds until ``total`` bytes accumulate.

    ``append_kb`` decouples the appended size from the period for the
    fine-grained probes (e.g. the "1 KB/sec" runs of Experiment 7).
    """
    if x <= 0:
        raise ValueError("x must be positive")
    chunk = int((append_kb if append_kb is not None else x) * KB)
    if chunk <= 0:
        raise ValueError("append size must be at least 1 byte")
    session = _session(service, access, machine, link_spec, profile=profile)
    session.create_file("mods.bin", random_content(0))
    session.run_until_idle()
    session.reset_meter()

    appended = 0
    index = 0
    while appended < total:
        step = min(chunk, total - appended)
        session.append("mods.bin", random_content(step, seed=seed * 10_000 + index))
        appended += step
        index += 1
        session.advance(x)
    session.run_until_idle()

    stats = session.client.stats
    ops = stats.ops_per_sync or [0]
    return AppendingRun(
        service=service, x=x, total_appended=appended,
        traffic=session.total_traffic,
        tue=session.total_traffic / appended,
        sync_transactions=stats.sync_transactions,
        mean_batch_ops=sum(ops) / len(ops),
    )


def experiment6_frequent_mods(
    service: str,
    xs: Iterable[float] = tuple(range(1, 21)),
    total: int = 1 * MB,
    machine: MachineProfile = M1,
    link_spec: Optional[LinkSpec] = None,
) -> List[AppendingRun]:
    """Reproduce one subfigure of Figure 6."""
    return [run_appending(service, float(x), total=total, machine=machine,
                          link_spec=link_spec) for x in xs]


def asd_comparison(
    service: str,
    xs: Iterable[float],
    defer_factory: Callable,
    total: int = 1 * MB,
) -> List[Tuple[float, float, float]]:
    """(x, tue_original, tue_with_policy) — the §6.1 ASD what-if analysis."""
    rows = []
    base_profile = service_profile(service, AccessMethod.PC)
    modified = base_profile.with_defer(defer_factory)
    for x in xs:
        original = run_appending(service, float(x), total=total)
        with_policy = run_appending(service, float(x), total=total,
                                    profile=modified)
        rows.append((float(x), original.tue, with_policy.tue))
    return rows


# ---------------------------------------------------------------------------
# Experiment 7 — network environment and hardware (Figures 7 & 8)
# ---------------------------------------------------------------------------

def experiment7_locations(
    service: str,
    xs: Iterable[float],
    mn_spec: Optional[LinkSpec] = None,
    bj_spec: Optional[LinkSpec] = None,
    total: int = 1 * MB,
) -> List[Tuple[float, float, float]]:
    """Reproduce Figure 7: (x, tue@MN, tue@BJ) for one service."""
    from ..simnet import bj_link
    mn_spec = mn_spec or mn_link()
    bj_spec = bj_spec or bj_link()
    rows = []
    for x in xs:
        at_mn = run_appending(service, float(x), total=total, link_spec=mn_spec)
        at_bj = run_appending(service, float(x), total=total, link_spec=bj_spec)
        rows.append((float(x), at_mn.tue, at_bj.tue))
    return rows


def experiment7_bandwidth(
    service: str = "Dropbox",
    bandwidths_mbps: Sequence[float] = (1.6, 2, 4, 8, 12, 16, 20),
    rtt: float = 0.050,
    total: int = 256 * KB,
) -> List[Tuple[float, float]]:
    """Reproduce Figure 8(a): Dropbox "1 KB/sec" TUE vs. bandwidth."""
    rows = []
    for mbps in bandwidths_mbps:
        spec = LinkSpec(up_bw=mbps * 1e6, down_bw=mbps * 1e6, rtt=rtt)
        run = run_appending(service, 1.0, total=total, link_spec=spec)
        rows.append((mbps, run.tue))
    return rows


def experiment7_latency(
    service: str = "Dropbox",
    rtts: Sequence[float] = (0.040, 0.100, 0.200, 0.400, 0.600, 0.800, 1.000),
    bandwidth_mbps: float = 20.0,
    total: int = 256 * KB,
) -> List[Tuple[float, float]]:
    """Reproduce Figure 8(b): Dropbox "1 KB/sec" TUE vs. latency."""
    rows = []
    for rtt in rtts:
        spec = LinkSpec(up_bw=bandwidth_mbps * 1e6,
                        down_bw=bandwidth_mbps * 1e6, rtt=rtt)
        run = run_appending(service, 1.0, total=total, link_spec=spec)
        rows.append((rtt, run.tue))
    return rows


def experiment7_hardware(
    service: str = "Dropbox",
    machines: Optional[Sequence[MachineProfile]] = None,
    xs: Iterable[float] = (1, 2, 3, 4, 6, 8, 10),
    total: int = 512 * KB,
) -> Dict[str, List[Tuple[float, float]]]:
    """Reproduce Figure 8(c): TUE per machine for "X KB/X sec" appends."""
    from ..client import M2, M3
    machines = machines or (M1, M2, M3)
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for machine in machines:
        curves[machine.name] = [
            (float(x), run_appending(service, float(x), total=total,
                                     machine=machine).tue)
            for x in xs
        ]
    return curves


# ---------------------------------------------------------------------------
# Experiment 8 — sync under failure: TUE vs. fault rate
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultRun:
    """One (fault-rate, retry-policy) point of the Experiment 8 sweep."""

    service: str
    fault_rate: float
    resumable: bool
    traffic: int
    wasted: int
    useful: int
    tue: float
    transient_errors: int
    retries: int
    failed_syncs: int

    @property
    def wasted_fraction(self) -> float:
        return self.wasted / self.traffic if self.traffic else 0.0


def run_faulty_sync(
    service: str = "Dropbox",
    fault_rate: float = 1.0,
    resumable: bool = True,
    seed: int = 8,
    file_size: int = 1 * MB,
    file_count: int = 4,
    unit_size: int = 256 * KB,
    spacing: float = 60.0,
    link_spec: Optional[LinkSpec] = None,
    horizon: float = 600.0,
    mean_interval: float = 12.0,
    mean_duration: float = 2.5,
) -> FaultRun:
    """Upload ``file_count`` chunked files while faults hit the wire.

    The fault episodes are pre-drawn once from ``seed`` over ``horizon``
    seconds and then *thinned* to ``fault_rate`` — a higher rate keeps a
    strict superset of a lower rate's episodes, so sweeping the rate moves
    exactly one variable.  ``resumable`` selects the client's recovery
    design (resume at the failed unit vs. restart from byte zero).
    """
    from dataclasses import replace

    from ..client import RetryPolicy
    from ..simnet import FaultSchedule, bj_link

    profile = replace(service_profile(service, AccessMethod.PC),
                      storage_chunk_size=unit_size)
    schedule = FaultSchedule.generate(
        seed=seed, horizon=horizon,
        mean_interval=mean_interval, mean_duration=mean_duration)
    # A generous attempt/budget cap: the sweep measures the traffic *cost*
    # of recovery designs, so every upload must eventually complete — a
    # give-up would drop payload and confound the TUE comparison.
    retry = RetryPolicy(resumable=resumable, seed=seed,
                        max_attempts=20, backoff_budget=1200.0)
    session = SyncSession(
        profile,
        link_spec=link_spec or bj_link(),
        retry=retry,
        faults=schedule.thin(fault_rate),
    )
    for index in range(file_count):
        session.create_random_file(f"exp8/file{index:02d}.bin", file_size,
                                   seed=seed * 1000 + index)
        session.advance(spacing)
    session.run_until_idle()
    stats = session.client.stats
    update = file_count * file_size
    return FaultRun(
        service=service, fault_rate=fault_rate, resumable=resumable,
        traffic=session.total_traffic,
        wasted=session.wasted_traffic,
        useful=session.useful_traffic,
        tue=session.total_traffic / update,
        transient_errors=stats.transient_errors,
        retries=stats.retries,
        failed_syncs=stats.failed_syncs,
    )


def experiment8_faults(
    service: str = "Dropbox",
    fault_rates: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    **kwargs,
) -> Dict[bool, List[FaultRun]]:
    """TUE vs. fault rate for resumable and restart-from-zero clients.

    Returns ``{True: [...], False: [...]}`` keyed by ``resumable``; the two
    sweeps share seeds and schedules, so at rate 0 they are byte-identical
    and every gap at a nonzero rate is purely the recovery design.
    """
    return {
        resumable: [run_faulty_sync(service, rate, resumable=resumable,
                                    **kwargs)
                    for rate in fault_rates]
        for resumable in (True, False)
    }


# ---------------------------------------------------------------------------
# Experiment 9 — shared-folder collaboration (fleet fan-out amplification)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CollaborationCell:
    """One (service, writer-count) point of the collaboration sweep."""

    service: str
    writers: int
    clients: int
    update_bytes: int
    traffic_bytes: int
    conflicts: int
    tue: float
    amplification: float


def run_collaboration(
    service: str,
    access: AccessMethod = AccessMethod.PC,
    writers: int = 2,
    clients: Optional[int] = None,
    files_per_writer: int = 2,
    file_size: int = 64 * KB,
    spacing: float = 20.0,
    seed: int = 9,
    link_spec: Optional[LinkSpec] = None,
    notification_delay: float = 0.2,
):
    """One fleet run: ``writers`` active writers among ``clients`` members.

    ``clients`` defaults to ``writers`` (every member writes), the paper's
    symmetric-collaboration shape.  Returns the :class:`~repro.fleet.
    FleetReport`.
    """
    from ..fleet import Fleet, schedule_writer_workload

    fleet = Fleet(service, access=access, clients=clients or writers,
                  link_spec=link_spec or mn_link(), seed=seed,
                  notification_delay=notification_delay)
    schedule_writer_workload(fleet, writers=writers,
                             files_per_writer=files_per_writer,
                             file_size=file_size, spacing=spacing, seed=seed)
    fleet.run_until_idle()
    return fleet.report()


def experiment9_collaboration(
    services: Sequence[str] = ("GoogleDrive", "OneDrive", "SugarSync"),
    writer_counts: Sequence[int] = (1, 2, 4, 8, 16),
    **kwargs,
) -> Dict[str, List["CollaborationCell"]]:
    """TUE(N) vs. collaborator count N — the fan-out amplification sweep.

    Each commit is paid for roughly N times (one upload plus N-1 follower
    downloads) while the data-update denominator grows only with the writes
    themselves, so for the no-dedup, no-batching PC profiles TUE(N) is
    strictly increasing in N.  The ``amplification`` column normalises each
    point against the same service's N=1 run.
    """
    out: Dict[str, List[CollaborationCell]] = {}
    for service in services:
        baseline = None
        cells: List[CollaborationCell] = []
        for writers in writer_counts:
            report = run_collaboration(service, writers=writers, **kwargs)
            if baseline is None:
                baseline = report
            cells.append(CollaborationCell(
                service=report.service,
                writers=writers,
                clients=report.clients,
                update_bytes=report.update_bytes,
                traffic_bytes=report.traffic_bytes,
                conflicts=report.conflicts,
                tue=report.tue,
                amplification=report.amplification(baseline),
            ))
        out[service] = cells
    return out


# ---------------------------------------------------------------------------
# Experiment 10 — storage backends × file-size mixes (packed shards)
# ---------------------------------------------------------------------------

BACKENDS = ("object", "chunk", "packshard")
FILE_MIXES = ("paper", "uniform-large", "multimedia")

#: Default workload size per mix: roughly equal total update bytes, so the
#: three sweeps finish in comparable time.
_MIX_FILES = {"paper": 96, "uniform-large": 12, "multimedia": 6}
_MIX_SEEDS = {"paper": 11, "uniform-large": 13, "multimedia": 17}


def generate_mix(mix: str, files: int, seed: int = 0) -> List[int]:
    """Deterministic file-size list for one workload mix.

    ``paper`` follows the trace's skew (§5): 77% of files in the 1–8 KB
    band, 18% mid-sized, 5% large.  ``uniform-large`` and ``multimedia``
    are the counterfactuals: workloads where per-file payload, not request
    overhead, dominates.
    """
    if mix not in FILE_MIXES:
        raise ValueError(f"unknown mix {mix!r} (one of {FILE_MIXES})")
    import random
    rng = random.Random(100_003 * seed + _MIX_SEEDS[mix])
    sizes: List[int] = []
    for _ in range(files):
        if mix == "paper":
            roll = rng.random()
            if roll < 0.77:
                sizes.append(rng.randint(1 * KB, 8 * KB))
            elif roll < 0.95:
                sizes.append(rng.randint(32 * KB, 128 * KB))
            else:
                sizes.append(rng.randint(256 * KB, 1 * MB))
        elif mix == "uniform-large":
            sizes.append(rng.randint(256 * KB, 1 * MB))
        else:  # multimedia
            sizes.append(rng.randint(1 * MB, 3 * MB))
    return sizes


def backend_profile(backend: str) -> ServiceProfile:
    """Synthetic "RestLab" profile isolating the storage backend choice.

    No compression, no dedup, no IDS — every design choice that could
    confound the backend comparison is off.  The ``object`` backend stores
    whole files as single REST objects; ``chunk`` and ``packshard`` split
    files into 16 KB units (small enough that the paper-mix files produce
    multiple objects each); ``packshard`` additionally bundles small-file
    commits client-side.
    """
    from ..cloud import DedupConfig
    from ..compress import NO_COMPRESSION
    from ..client import BundleSupport, OverheadProfile
    from ..client.defer import FixedDefer

    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (one of {BACKENDS})")
    return ServiceProfile(
        service="RestLab",
        access=AccessMethod.PC,
        delta_block=None,
        upload_compression=NO_COMPRESSION,
        download_compression=NO_COMPRESSION,
        dedup=DedupConfig.none(),
        storage_chunk_size=None if backend == "object" else 16 * KB,
        overhead=OverheadProfile(meta_up=600, meta_down=300,
                                 notify_down=200),
        defer_factory=lambda: FixedDefer(2.0),
        bundle=BundleSupport(enabled=(backend == "packshard")),
        storage_backend="packshard" if backend == "packshard" else "chunk",
    )


@dataclass(frozen=True)
class BackendCell:
    """One (backend, mix) point of the Experiment 10 sweep."""

    backend: str
    mix: str
    files: int
    update_bytes: int
    traffic: int
    rest_ops: int
    put_ops: int
    get_ops: int
    delete_ops: int
    list_ops: int
    put_bytes: int
    stored_bytes: int
    shards_sealed: int
    shard_compactions: int
    bundle_commits: int

    @property
    def tue(self) -> float:
        """TUE (Eq. 1); infinite when no data was updated."""
        if self.update_bytes == 0:
            return float("inf")
        return self.traffic / self.update_bytes

    @property
    def rest_ops_per_file(self) -> float:
        """Provider-side REST request amplification per synced file."""
        if self.files == 0:
            return float("inf")
        return self.rest_ops / self.files


def run_backend_cell(backend: str, mix: str,
                     files: Optional[int] = None,
                     seed: int = 0,
                     link_spec: Optional[LinkSpec] = None,
                     delete_every: int = 4) -> BackendCell:
    """One audited workload run against one backend.

    Creates the mix's files, syncs to idle, deletes every
    ``delete_every``-th file and purges its history (exercising the
    delete/GC path where the backends' cost models diverge hardest), then
    reads the REST ledger — which must balance
    (:func:`repro.obs.audit.audit_rest_ledger`) before the cell is
    reported.
    """
    from ..obs import audit_rest_ledger

    file_count = files if files is not None else _MIX_FILES[mix]
    sizes = generate_mix(mix, file_count, seed=seed)
    session = _session("RestLab", AccessMethod.PC, link_spec=link_spec,
                       profile=backend_profile(backend))
    for index, size in enumerate(sizes):
        session.create_random_file(f"f{index:04d}.bin", size,
                                   seed=1000 * seed + index)
    session.run_until_idle()
    deleted = []
    for index in range(0, file_count, delete_every):
        path = f"f{index:04d}.bin"
        session.delete_file(path)
        deleted.append(path)
    session.run_until_idle()
    for path in deleted:
        session.server.purge_history("user1", path, keep_last=1)
    audit_rest_ledger(session.server.objects)
    ops = session.server.objects.ops
    stats = session.server.stats
    return BackendCell(
        backend=backend,
        mix=mix,
        files=file_count,
        update_bytes=session.data_update_bytes,
        traffic=session.total_traffic,
        rest_ops=ops.total_ops(),
        put_ops=ops.put,
        get_ops=ops.get,
        delete_ops=ops.delete,
        list_ops=ops.list,
        put_bytes=ops.put_bytes,
        stored_bytes=session.server.objects.stored_bytes,
        shards_sealed=stats.shards_sealed,
        shard_compactions=stats.shard_compactions,
        bundle_commits=session.client.stats.bundle_commits,
    )


def experiment10_backends(
    backends: Sequence[str] = BACKENDS,
    mixes: Sequence[str] = FILE_MIXES,
    files: Optional[int] = None,
    seed: int = 0,
    link_spec: Optional[LinkSpec] = None,
) -> List[BackendCell]:
    """Sweep TUE and REST ops/file across backends × file-size mixes.

    The headline claim: on the paper's 77%-small-file mix the packed-shard
    backend issues ≥10× fewer REST ops per file than the Cumulus-style
    chunk store, because bundling collapses wire transactions and packing
    collapses PUT/GC amplification.
    """
    cells: List[BackendCell] = []
    for mix in mixes:
        for backend in backends:
            cells.append(run_backend_cell(backend, mix, files=files,
                                          seed=seed, link_spec=link_spec))
    return cells


# ---------------------------------------------------------------------------
# Experiment 11 — sync strategies × workloads × links (this repo's extension)
# ---------------------------------------------------------------------------

#: Stable sweep axes (strategy names match client.strategies.STRATEGY_NAMES).
STRATEGIES = ("full-file", "fixed-delta", "cdc-delta", "set-reconcile",
              "adaptive")
STRATEGY_WORKLOADS = ("fresh", "scatter-edit", "clone")
STRATEGY_LINKS = ("mn", "bj", "lte")


def strategy_link(name: str) -> LinkSpec:
    """Resolve one of the Experiment 11 link profiles by name."""
    from ..simnet import bj_link, lte_link
    links = {"mn": mn_link, "bj": bj_link, "lte": lte_link}
    if name not in links:
        raise ValueError(
            f"unknown link {name!r} (one of {STRATEGY_LINKS})")
    return links[name]()


def strategy_profile() -> ServiceProfile:
    """Synthetic "StratLab" profile isolating the transfer strategy choice.

    Like RestLab (Experiment 10): no compression, no dedup, no profile
    IDS, whole-file REST objects — the only moving part is the
    :mod:`~repro.client.strategies` plug, so per-cell traffic differences
    are attributable to the strategy alone.
    """
    from ..cloud import DedupConfig
    from ..compress import NO_COMPRESSION
    from ..client import OverheadProfile
    from ..client.defer import FixedDefer

    return ServiceProfile(
        service="StratLab",
        access=AccessMethod.PC,
        delta_block=None,
        upload_compression=NO_COMPRESSION,
        download_compression=NO_COMPRESSION,
        dedup=DedupConfig.none(),
        storage_chunk_size=None,
        overhead=OverheadProfile(meta_up=600, meta_down=300,
                                 notify_down=200),
        defer_factory=lambda: FixedDefer(2.0),
    )


def _strategy_workload(session: SyncSession, workload: str, files: int,
                       seed: int) -> None:
    """Drive one deterministic workload, identical across strategies.

    Every operation is followed by a 30 s advance: long enough that each
    file syncs alone (no cross-strategy batching divergence), short
    enough that the connection stays warm — so per-cell traffic differs
    only by what the strategy put on the wire.
    """
    import random
    from ..content import Content

    if workload == "fresh":
        # Incompressible new content: nothing for any delta to match.
        for index in range(files):
            session.create_random_file(
                f"docs/fresh-{index}.bin", 48 * KB + 16 * KB * index,
                seed=7 * seed + index)
            session.advance(30.0)
        session.run_until_idle()
    elif workload == "scatter-edit":
        rng = random.Random(900_001 * seed + 17)
        paths = []
        for index in range(files):
            path = f"docs/doc-{index}.bin"
            session.create_random_file(
                path, 192 * KB + 32 * KB * index, seed=11 * seed + index)
            paths.append(path)
            session.advance(30.0)
        session.run_until_idle()
        for _ in range(2):
            for path in paths:
                data = bytearray(session.folder.get(path).data)
                for _ in range(3):
                    at = rng.randrange(0, len(data) - 120)
                    data[at:at + 120] = bytes(
                        rng.getrandbits(8) for _ in range(120))
                session.write_file(path, Content(bytes(data)))
                session.advance(30.0)
            session.run_until_idle()
    elif workload == "clone":
        bases = []
        for index in range(files):
            path = f"docs/base-{index}.bin"
            session.create_random_file(
                path, 128 * KB + 32 * KB * index, seed=13 * seed + index)
            bases.append(path)
            session.advance(30.0)
        session.run_until_idle()
        for index, base in enumerate(bases):
            prefix = random_content(1 * KB, seed=101 * seed + index).data
            clone = Content(prefix + session.folder.get(base).data)
            session.create_file(f"docs/copy-{index}.bin", clone)
            session.advance(30.0)
        session.run_until_idle()
    else:
        raise ValueError(
            f"unknown workload {workload!r} (one of {STRATEGY_WORKLOADS})")


@dataclass(frozen=True)
class StrategyCell:
    """One (strategy, workload, link) point of the Experiment 11 sweep."""

    strategy: str
    workload: str
    link: str
    files: int
    update_bytes: int
    traffic: int
    strategy_payload: int
    round_trips: int
    cpu_units: int

    @property
    def tue(self) -> float:
        """TUE (Eq. 1); nan for an empty cell, inf for pure overhead."""
        if self.update_bytes == 0:
            return float("nan") if self.traffic == 0 else float("inf")
        return self.traffic / self.update_bytes


def run_strategy_cell(strategy_name: str, workload: str, link_name: str,
                      files: int = 3, seed: int = 0,
                      audit: bool = True) -> StrategyCell:
    """One audited workload run under one explicit sync strategy.

    With ``audit=True`` (the default) and no ambient trace hub, the run
    is wrapped in a full conservation audit — including the
    strategy-conservation invariant over the ``delta-exchange`` cost
    ledger.  An ambient hub (``repro audit exp11``) is used as-is so its
    owner audits the whole sweep at once.
    """
    from ..obs import current_hub, recording

    if audit and current_hub() is None:
        with recording(audit=True):
            return _run_strategy_cell(
                strategy_name, workload, link_name, files, seed)
    return _run_strategy_cell(strategy_name, workload, link_name, files, seed)


def _run_strategy_cell(strategy_name: str, workload: str, link_name: str,
                       files: int, seed: int) -> StrategyCell:
    from ..client import make_strategy

    session = SyncSession(
        strategy_profile(), link_spec=strategy_link(link_name),
        strategy=make_strategy(strategy_name))
    _strategy_workload(session, workload, files, seed)
    ledger = session.client.strategy_ledger.values()
    return StrategyCell(
        strategy=strategy_name,
        workload=workload,
        link=link_name,
        files=session.client.stats.files_synced,
        update_bytes=session.data_update_bytes,
        traffic=session.total_traffic,
        strategy_payload=sum(t.payload for t in ledger),
        round_trips=sum(t.exchanges for t in ledger),
        cpu_units=sum(t.cpu_units for t in ledger),
    )


def experiment11_strategies(
    strategies: Sequence[str] = STRATEGIES,
    workloads: Sequence[str] = STRATEGY_WORKLOADS,
    links: Sequence[str] = STRATEGY_LINKS,
    files: int = 3,
    seed: int = 0,
    audit: bool = True,
) -> List[StrategyCell]:
    """Sweep TUE across strategies × workloads × links, every cell audited.

    The headline claim: the adaptive selector's per-file choice from
    exact cost estimates makes its TUE ≤ every static strategy's on every
    workload × link cell — no single static choice wins everywhere
    (full-file takes "fresh", the deltas take "scatter-edit",
    reconciliation takes "clone"), but the selector never loses.
    """
    cells: List[StrategyCell] = []
    for workload in workloads:
        for link in links:
            for strategy in strategies:
                cells.append(run_strategy_cell(
                    strategy, workload, link,
                    files=files, seed=seed, audit=audit))
    return cells

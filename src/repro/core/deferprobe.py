"""Black-box inference of a service's fixed sync deferment (§6.1).

The paper detects sync deferments by sweeping the "X KB / X sec" appending
experiment over integer X and watching where TUE jumps from ≈1 (batched) to
large (per-update sync), then refines X with fractional steps — finding
T ≈ 4.2 s for Google Drive, ≈ 10.5 s for OneDrive and ≈ 6 s for SugarSync.

:func:`infer_sync_deferment` reproduces that procedure: bracket the jump on
the integer grid, then bisect with float periods down to ``resolution``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..client import M1
from ..units import KB
from .experiments import run_appending


@dataclass
class DeferProbeResult:
    """Outcome of the deferment inference."""

    service: str
    deferment: Optional[float]   # None ⇒ no fixed deferment detected
    bracket: Optional[Tuple[float, float]]
    samples: List[Tuple[float, int]]  # (x, sync_transactions)


def _syncs_at(service: str, x: float, appends: int) -> int:
    """Sync-transaction count for an appending run with period ``x``."""
    run = run_appending(service, x, total=appends * KB, append_kb=1.0,
                        machine=M1)
    return run.sync_transactions


def infer_sync_deferment(
    service: str,
    max_period: int = 20,
    appends: int = 24,
    resolution: float = 0.1,
) -> DeferProbeResult:
    """Estimate a service's fixed sync deferment T, or None if there is none.

    A period is classified "deferred" when the whole run collapses into a
    couple of sync transactions, and "per-update" when most appends sync
    individually.
    """
    samples: List[Tuple[float, int]] = []

    def deferred(x: float) -> bool:
        syncs = _syncs_at(service, x, appends)
        samples.append((x, syncs))
        return syncs <= max(2, appends // 8)

    if not deferred(1.0):
        # Updates at 1 s period already sync individually: no deferment.
        return DeferProbeResult(service, None, None, samples)

    low = 1.0
    high = None
    for x in range(2, max_period + 1):
        if deferred(float(x)):
            low = float(x)
        else:
            high = float(x)
            break
    if high is None:
        # Deferred across the whole sweep: T exceeds the probe range.
        return DeferProbeResult(service, None, (low, float("inf")), samples)

    while high - low > resolution:
        mid = (low + high) / 2.0
        if deferred(mid):
            low = mid
        else:
            high = mid
    estimate = (low + high) / 2.0
    return DeferProbeResult(service, estimate, (low, high), samples)

"""Table 5 as executable claims: every major finding, verified live.

The paper's Table 5 summarises seven findings with implications.  This
module re-derives each one from the simulation and the trace, returning a
:class:`Finding` per row with the measured evidence and a boolean verdict —
so `pytest benchmarks/bench_table5_findings.py` *is* Table 5.

Checks run at reduced scale (small files, short appends) to stay fast; the
full-scale versions live in the individual table/figure benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..client import AccessMethod, AdaptiveSyncDefer, service_profile
from ..simnet import bj_link, mn_link
from ..trace import (
    Trace,
    batchable_small_fraction,
    compressible_fraction,
    compression_traffic_saving,
    dedup_ratio,
    duplicate_file_ratio,
    generate_trace,
    modified_fraction,
    small_file_fraction,
)
from ..units import KB, MB
from .experiments import (
    measure_batch_creation,
    measure_compression,
    measure_modification,
    run_appending,
)


@dataclass
class Finding:
    """One row of the verified Table 5."""

    section: str
    statement: str
    evidence: str
    holds: bool


def _trace(scale: float) -> Trace:
    return generate_trace(scale=scale, seed=42)


def verify_findings(trace_scale: float = 0.15) -> List[Finding]:
    """Run every Table 5 check; returns one Finding per claim."""
    trace = _trace(trace_scale)
    findings: List[Finding] = []

    # §4.1 — small files dominate and batch; BDS pays off.
    small = small_file_fraction(trace)
    batchable = batchable_small_fraction(trace)
    dropbox_batch = measure_batch_creation("Dropbox", AccessMethod.PC, count=40)
    box_batch = measure_batch_creation("Box", AccessMethod.PC, count=40)
    findings.append(Finding(
        "4.1", "majority of files are small (<100 KB) and most can batch",
        f"small={small:.0%} (paper 77%), batchable={batchable:.0%} (paper 66%)",
        0.70 < small < 0.85 and 0.55 < batchable < 0.80))
    findings.append(Finding(
        "4.1", "BDS cuts batched-creation traffic by an order of magnitude",
        f"Dropbox TUE {dropbox_batch.tue:.1f} vs Box {box_batch.tue:.1f}",
        dropbox_batch.tue * 4 < box_batch.tue))

    # §4.2 — deletion is negligible.
    from .experiments import experiment2_deletion
    deletions = experiment2_deletion(sizes=(1 * MB,))
    worst = max(row.deletion_traffic for row in deletions)
    findings.append(Finding(
        "4.2", "file deletion generates negligible (<100 KB) sync traffic",
        f"worst service: {worst / KB:.1f} KB", worst < 100 * KB))

    # §4.3 — modifications are common; IDS shrinks them dramatically.
    modified = modified_fraction(trace)
    ids_mod = measure_modification("Dropbox", AccessMethod.PC, 1 * MB)
    full_mod = measure_modification("GoogleDrive", AccessMethod.PC, 1 * MB)
    findings.append(Finding(
        "4.3", "majority of files are modified at least once",
        f"{modified:.0%} (paper 84%)", 0.80 < modified < 0.88))
    findings.append(Finding(
        "4.3", "IDS ships a fraction of full-file sync for a 1-byte edit",
        f"Dropbox {ids_mod.traffic / KB:.0f} KB vs "
        f"GoogleDrive {full_mod.traffic / KB:.0f} KB",
        ids_mod.traffic * 10 < full_mod.traffic))

    # §5.1 — compression helps; support is patchy.
    compressible = compressible_fraction(trace)
    saving = compression_traffic_saving(trace)
    dropbox_up = measure_compression("Dropbox", AccessMethod.PC, 2 * MB)
    google_up = measure_compression("GoogleDrive", AccessMethod.PC, 2 * MB)
    findings.append(Finding(
        "5.1", "about half of files compress; compression saves ~24% of bytes",
        f"compressible={compressible:.0%} (52%), saving={saving:.0%} (24%)",
        0.45 < compressible < 0.60 and 0.12 < saving < 0.33))
    findings.append(Finding(
        "5.1", "only some services compress (Dropbox yes, Google Drive no)",
        f"Dropbox UP {dropbox_up.upload_traffic / MB:.1f} MB vs "
        f"GoogleDrive {google_up.upload_traffic / MB:.1f} MB on 2 MB text",
        dropbox_up.upload_traffic < 0.8 * google_up.upload_traffic))

    # §5.2 — duplicates exist; block dedup only trivially beats full-file.
    duplicates = duplicate_file_ratio(trace)
    full_file = dedup_ratio(trace, None)
    block = dedup_ratio(trace, 128 * KB)
    findings.append(Finding(
        "5.2", "duplicate bytes ≈ 18%; full-file dedup is basically sufficient",
        f"dup={duplicates:.1%} (18.8%), block-over-full-file edge "
        f"{block - full_file:.3f}",
        0.10 < duplicates < 0.28 and block - full_file < 0.15))

    # §6.1 — fixed deferments fail past T; ASD fixes it.
    above_t = run_appending("GoogleDrive", 6.0, total=128 * KB)
    below_t = run_appending("GoogleDrive", 3.0, total=128 * KB)
    asd_profile = service_profile("GoogleDrive", AccessMethod.PC).with_defer(
        lambda: AdaptiveSyncDefer())
    with_asd = run_appending("GoogleDrive", 6.0, total=128 * KB,
                             profile=asd_profile)
    findings.append(Finding(
        "6.1", "fixed sync deferments fail once X > T; ASD keeps TUE ≈ 1",
        f"TUE below T {below_t.tue:.1f}, above T {above_t.tue:.1f}, "
        f"ASD {with_asd.tue:.1f}",
        below_t.tue < 2 and above_t.tue > 10 and with_asd.tue < 2.5))

    # §6.2 — poor network or hardware lowers TUE under frequent mods.
    at_mn = run_appending("Dropbox", 1.0, total=128 * KB, link_spec=mn_link())
    at_bj = run_appending("Dropbox", 1.0, total=128 * KB, link_spec=bj_link())
    from ..client import M1, M2
    fast = run_appending("Dropbox", 1.0, total=128 * KB, machine=M1)
    slow = run_appending("Dropbox", 1.0, total=128 * KB, machine=M2)
    findings.append(Finding(
        "6.2", "poor network or slow hardware batches updates and lowers TUE",
        f"MN {at_mn.tue:.1f} vs BJ {at_bj.tue:.1f}; "
        f"M1 {fast.tue:.1f} vs M2 {slow.tue:.1f}",
        at_bj.tue < at_mn.tue and slow.tue < fast.tue))

    return findings

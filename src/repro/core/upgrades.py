"""Provider guidance, quantified: retrofit each Table 5 implication.

The paper's implications column tells providers what to build: batched data
sync (§4.1), incremental data sync via a REST mid-layer (§4.3), compression
plus full-file dedup (§5.1/5.2), and an adaptive sync defer (§6.1).  This
module applies any of those upgrades to any service profile and measures
the saving on the workload class the mechanism targets — turning the
paper's advice into a costed engineering backlog per provider.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from ..client import (
    AccessMethod,
    AdaptiveSyncDefer,
    ServiceProfile,
    SyncSession,
    service_profile,
)
from ..client.profiles import BdsMode, BdsSupport
from ..cloud import DedupConfig
from ..compress import HIGH_COMPRESSION, MODERATE_COMPRESSION
from ..content import random_content, text_content
from ..units import KB, MB

#: Upgrade name → profile transformer (the paper's section it comes from).
UPGRADES: Dict[str, Callable[[ServiceProfile], ServiceProfile]] = {
    # §4.1: combine small files into batched transactions.
    "bds": lambda p: replace(
        p, bds=BdsSupport(BdsMode.FULL, per_file_bytes=150)),
    # §4.3: rsync mid-layer turning MODIFY into GET+PUT+DELETE.
    "ids": lambda p: replace(p, delta_block=10 * KB),
    # §5.1: moderate client compression, high on the cloud side.
    "compression": lambda p: replace(
        p, upload_compression=MODERATE_COMPRESSION,
        download_compression=HIGH_COMPRESSION),
    # §5.2: full-file dedup — sufficient, and compatible with compression.
    "full-file-dedup": lambda p: replace(
        p, dedup=DedupConfig.full_file(cross_user=True)),
    # §6.1: adaptive sync defer (Eq. 2) instead of any fixed deferment.
    "asd": lambda p: p.with_defer(lambda: AdaptiveSyncDefer()),
}


def apply_upgrade(profile: ServiceProfile, upgrade: str) -> ServiceProfile:
    """Return a copy of ``profile`` with one named upgrade applied."""
    try:
        transform = UPGRADES[upgrade]
    except KeyError:
        raise KeyError(f"unknown upgrade {upgrade!r}; "
                       f"choose from {sorted(UPGRADES)}") from None
    return transform(profile)


def apply_all_upgrades(profile: ServiceProfile) -> ServiceProfile:
    """All of the paper's recommendations stacked (the §7 end state)."""
    for upgrade in UPGRADES:
        profile = apply_upgrade(profile, upgrade)
    return profile


# ---------------------------------------------------------------------------
# Targeted workloads (each exercises exactly one mechanism)
# ---------------------------------------------------------------------------

def _workload_bds(session: SyncSession) -> int:
    for index in range(50):
        session.create_file(f"w/{index}.bin", random_content(1 * KB, seed=index))
    session.run_until_idle()
    return 50 * KB


def _workload_ids(session: SyncSession) -> int:
    session.create_file("doc.bin", random_content(1 * MB, seed=1))
    session.run_until_idle()
    session.reset_meter()
    for index in range(3):
        session.modify_random_byte("doc.bin", seed=index)
        session.run_until_idle()
    return 3


def _workload_compression(session: SyncSession) -> int:
    session.create_file("big.txt", text_content(2 * MB, seed=2))
    session.run_until_idle()
    return 2 * MB


def _workload_dedup(session: SyncSession) -> int:
    content = random_content(512 * KB, seed=3)
    session.create_file("a.bin", content)
    session.run_until_idle()
    session.create_file("b.bin", content)
    session.run_until_idle()
    return 1 * MB


def _workload_asd(session: SyncSession) -> int:
    session.create_file("log.bin", random_content(0))
    session.run_until_idle()
    session.reset_meter()
    for index in range(24):
        session.append("log.bin", random_content(6 * KB, seed=index))
        session.advance(12.0)    # past every fixed deferment (max: 10.5 s)
    session.run_until_idle()
    return 24 * 6 * KB


WORKLOADS: Dict[str, Callable[[SyncSession], int]] = {
    "bds": _workload_bds,
    "ids": _workload_ids,
    "compression": _workload_compression,
    "full-file-dedup": _workload_dedup,
    "asd": _workload_asd,
}


@dataclass(frozen=True)
class UpgradeResult:
    """Traffic before/after one upgrade on its target workload."""

    service: str
    upgrade: str
    traffic_before: int
    traffic_after: int

    @property
    def saving(self) -> float:
        if self.traffic_before <= 0:
            return 0.0
        return 1.0 - self.traffic_after / self.traffic_before


def _run(profile: ServiceProfile, workload) -> int:
    session = SyncSession(profile)
    workload(session)
    session.run_until_idle()
    return session.total_traffic


def quantify_upgrade(service: str, upgrade: str,
                     access: AccessMethod = AccessMethod.PC) -> UpgradeResult:
    """Measure one upgrade's saving for one service on its target workload."""
    base = service_profile(service, access)
    workload = WORKLOADS[upgrade]
    return UpgradeResult(
        service=service,
        upgrade=upgrade,
        traffic_before=_run(base, workload),
        traffic_after=_run(apply_upgrade(base, upgrade), workload),
    )


def quantify_all(services: Sequence[str],
                 access: AccessMethod = AccessMethod.PC) -> List[UpgradeResult]:
    """Full service × upgrade savings matrix."""
    return [
        quantify_upgrade(service, upgrade, access)
        for service in services
        for upgrade in UPGRADES
    ]

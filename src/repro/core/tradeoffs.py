"""§7 tradeoff analysis: traffic vs. computation vs. storage vs. REST costs.

The paper's discussion section argues that TUE cannot be optimised in
isolation: incremental sync "puts more computational burden on both service
providers and end users", compression trades CPU for bytes, chunked storage
multiplies REST operations, and dedup spends fingerprint computation to
save storage and traffic.  This module quantifies all four axes for any
(profile, workload) pair on the simulated substrate, so the design-choice
ablations can report a full cost vector instead of traffic alone.

CPU costs are modelled, not wall-clock-measured: hashing and compression
throughputs come from the machine profile and published DEFLATE rates, so
results are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..client import M1, MachineProfile, ServiceProfile, SyncSession
from ..compress import CompressionLevel
from ..units import MB

#: Modelled client CPU throughputs, bytes/second (order-of-magnitude DEFLATE
#: and MD5 rates on 2014-class hardware; scaled by the machine's cpu factor).
_COMPRESS_RATE = {
    CompressionLevel.NONE: float("inf"),
    CompressionLevel.LOW: 200 * MB,
    CompressionLevel.MODERATE: 80 * MB,
    CompressionLevel.HIGH: 30 * MB,
}
_HASH_RATE = 400 * MB
_SERVER_IO_RATE = 200 * MB


@dataclass
class CostReport:
    """The §7 cost vector for one workload run."""

    profile_name: str
    traffic_bytes: int = 0
    data_update_bytes: int = 0
    stored_bytes: int = 0          # physical bytes at the provider
    logical_bytes: int = 0         # bytes users believe they store
    rest_operations: int = 0       # mid-layer PUT/GET/DELETE/... count
    client_cpu_seconds: float = 0.0
    server_cpu_seconds: float = 0.0
    sync_transactions: int = 0

    @property
    def tue(self) -> float:
        if self.data_update_bytes <= 0:
            # Zero-size convention (PR 3): traffic with no data update is
            # infinitely inefficient; no traffic at all is undefined.
            return float("inf") if self.traffic_bytes > 0 else float("nan")
        return self.traffic_bytes / self.data_update_bytes

    @property
    def storage_efficiency(self) -> float:
        """logical / physical — >1 means dedup/compression is saving disk."""
        if self.stored_bytes <= 0:
            return float("nan")
        return self.logical_bytes / self.stored_bytes


def measure_costs(
    profile: ServiceProfile,
    workload: Callable[[SyncSession], int],
    machine: MachineProfile = M1,
) -> CostReport:
    """Run ``workload`` through a fresh session and collect the cost vector.

    ``workload`` receives the session and returns the data update size in
    bytes (the TUE denominator).
    """
    session = SyncSession(profile, machine=machine)
    update_bytes = workload(session)
    session.run_until_idle()

    server = session.server
    stats = session.client.stats

    # Client CPU: hashing every event's file state plus compressing every
    # uploaded payload byte at the profile's level.
    hashed_bytes = sum(record.up_payload for record in session.client.history)
    compress_rate = _COMPRESS_RATE[profile.upload_compression.level]
    cpu_factor = machine.cpu_factor
    client_cpu = cpu_factor * (
        hashed_bytes / _HASH_RATE
        + (session.meter.up.payload / compress_rate if compress_rate != float("inf") else 0.0)
        + stats.sync_transactions * 0.01
    )

    # Server CPU: chunk I/O plus delta application (GET + apply + PUT).
    server_cpu = (
        server.objects.ops.put_bytes / _SERVER_IO_RATE
        + server.objects.ops.get_bytes / _SERVER_IO_RATE
        + server.stats.delta_applications * 0.005
    )

    logical = sum(
        account.used_bytes
        for account in server.accounts._accounts.values()  # analysis access
    )
    return CostReport(
        profile_name=profile.name,
        traffic_bytes=session.total_traffic,
        data_update_bytes=update_bytes,
        stored_bytes=server.objects.stored_bytes,
        logical_bytes=logical,
        rest_operations=server.objects.ops.total_ops(),
        client_cpu_seconds=client_cpu,
        server_cpu_seconds=server_cpu,
        sync_transactions=stats.sync_transactions,
    )


def compare_designs(
    profiles: Sequence[ServiceProfile],
    workload: Callable[[SyncSession], int],
    machine: MachineProfile = M1,
) -> List[CostReport]:
    """Cost vectors for several designs on the same workload, traffic-sorted."""
    reports = [measure_costs(profile, workload, machine) for profile in profiles]
    reports.sort(key=lambda report: report.traffic_bytes)
    return reports

"""The TUE metric (Eq. 1) and traffic decomposition reports.

    TUE = total data sync traffic / data update size

When compression is in play, the paper defines the data update size as the
*compressed* size of the altered bits (footnote 2); :func:`tue` leaves the
choice of denominator to the caller, and :func:`compressed_update_size`
computes the footnote-2 variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compress import CompressionPolicy, HIGH_COMPRESSION
from ..content import Content
from ..simnet import MeterSnapshot, TrafficMeter


def tue(total_sync_traffic: int, data_update_size: int) -> float:
    """Traffic Usage Efficiency — Eq. 1 of the paper."""
    if data_update_size <= 0:
        raise ValueError("data update size must be positive")
    if total_sync_traffic < 0:
        raise ValueError("sync traffic cannot be negative")
    return total_sync_traffic / data_update_size


def compressed_update_size(update: Content,
                           policy: CompressionPolicy = HIGH_COMPRESSION) -> int:
    """Footnote 2: the compressed size of the altered bits."""
    return policy.wire_size(update)


def overhead_traffic(total_sync_traffic: int, payload_size: int) -> int:
    """Experiment 1's decomposition: overhead ≈ total − payload."""
    return max(total_sync_traffic - payload_size, 0)


@dataclass(frozen=True)
class TrafficReport:
    """A complete TUE readout for one experiment run.

    ``up_wasted`` / ``down_wasted`` decompose the totals above into the
    failure-induced component (retransmissions under loss bursts, aborted
    sends, restart-from-zero re-sends, rejected requests).  They are a
    *subset* of payload+overhead, never additive, so every pre-existing TUE
    number is unchanged when no faults are injected (both are then zero).
    """

    up_payload: int
    up_overhead: int
    down_payload: int
    down_overhead: int
    data_update_size: int
    up_wasted: int = 0
    down_wasted: int = 0

    @property
    def total(self) -> int:
        return (self.up_payload + self.up_overhead
                + self.down_payload + self.down_overhead)

    @property
    def overhead(self) -> int:
        return self.up_overhead + self.down_overhead

    @property
    def payload(self) -> int:
        return self.up_payload + self.down_payload

    @property
    def wasted(self) -> int:
        """Failure-induced bytes (already included in :attr:`total`)."""
        return self.up_wasted + self.down_wasted

    @property
    def useful(self) -> int:
        """Bytes the sync protocol would have moved on a healthy network."""
        return self.total - self.wasted

    @property
    def tue(self) -> float:
        return tue(self.total, self.data_update_size)

    @property
    def useful_tue(self) -> float:
        """TUE of the useful component alone — the healthy-network baseline."""
        return tue(self.useful, self.data_update_size)

    @property
    def overhead_fraction(self) -> float:
        return self.overhead / self.total if self.total else 0.0

    @property
    def wasted_fraction(self) -> float:
        return self.wasted / self.total if self.total else 0.0

    @staticmethod
    def from_meter(meter: TrafficMeter, data_update_size: int) -> "TrafficReport":
        return TrafficReport(
            up_payload=meter.up.payload,
            up_overhead=meter.up.overhead,
            down_payload=meter.down.payload,
            down_overhead=meter.down.overhead,
            data_update_size=data_update_size,
            up_wasted=meter.up.wasted,
            down_wasted=meter.down.wasted,
        )

    @staticmethod
    def from_snapshot(snapshot: MeterSnapshot, data_update_size: int) -> "TrafficReport":
        return TrafficReport(
            up_payload=snapshot.up_payload,
            up_overhead=snapshot.up_overhead,
            down_payload=snapshot.down_payload,
            down_overhead=snapshot.down_overhead,
            data_update_size=data_update_size,
            up_wasted=snapshot.up_wasted,
            down_wasted=snapshot.down_wasted,
        )

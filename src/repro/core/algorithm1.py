"""Algorithm 1: the Iterative Self-Duplication dedup-granularity probe.

Treats a cloud storage service as a black box (exactly as the paper does):
upload a fresh B₁-byte compressed file f₁, then f₂ = f₁ + f₁, and compare the
two traffic totals:

* Tr₂ ≪ Tr₁ and Tr₂ small        ⇒ B₁ is (a multiple of) the block size B;
* Tr₂ < 2·B₁ but not small       ⇒ B₁ > B — lower the guess;
* Tr₂ ≥ 2·B₁                     ⇒ B₁ < B — raise the guess.

The binary search finishes in O(log B) rounds.  We add one confirmation probe
the paper leaves implicit: when the "small" case fires, upload
f₃ = f₁ + f₁[:B₁/2]; if that is *also* nearly free, B₁ was a multiple of a
smaller true B and the search continues below B₁ (documented in DESIGN.md).

The same machinery answers Table 9's full-file and cross-user questions via
:func:`detect_full_file_dedup` and the two-session variants.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..client import AccessMethod, SyncSession, service_profile
from ..cloud import CloudServer
from ..content import Content, random_content
from ..simnet import Simulator, mn_link
from ..units import KB, MB

_PROBE_COUNTER = itertools.count()


@dataclass
class ProbeRound:
    """One iteration of Algorithm 1 (for inspection and tests)."""

    guess: int
    tr1: int
    tr2: int
    verdict: str


@dataclass
class DedupProbeResult:
    """Outcome of the granularity inference."""

    granularity: Optional[int]   # block size in bytes; None ⇒ no block dedup
    full_file: bool              # whole-file dedup observed
    rounds: List[ProbeRound] = field(default_factory=list)

    def label(self) -> str:
        """Table 9 style label."""
        if self.granularity is not None:
            return f"{self.granularity // MB} MB" if self.granularity >= MB \
                else f"{self.granularity // KB} KB"
        if self.full_file:
            return "Full file"
        return "No"


def _measure_upload(session: SyncSession, path: str, content: Content) -> int:
    """Upload one file and return the traffic it generated."""
    before = session.meter.snapshot()
    session.create_file(path, content)
    session.run_until_idle()
    return session.meter.since(before).total


def detect_full_file_dedup(uploader: SyncSession,
                           re_uploader: Optional[SyncSession] = None,
                           size: int = 1 * MB,
                           seed: int = 11,
                           small_threshold: int = 100 * KB) -> bool:
    """Upload a file, then the identical content again (same or other user).

    Returns True when the second upload's traffic is trivial — the paper's
    test for full-file deduplication (§5.2).
    """
    re_uploader = re_uploader or uploader
    probe = next(_PROBE_COUNTER)
    # Fresh content per probe: a repeated seed would dedup against an
    # earlier probe's upload and destroy the full-traffic baseline.
    content = random_content(size, seed=seed * 100_003 + probe)
    first = _measure_upload(uploader, f"ff-dedup/{probe}/a.bin", content)
    second = _measure_upload(re_uploader, f"ff-dedup/{probe}/b.bin", content)
    return second < min(small_threshold, max(first // 4, 1))


def iterative_self_duplication(
    uploader: SyncSession,
    second_uploader: Optional[SyncSession] = None,
    initial_guess: int = 512 * KB,
    max_block: int = 32 * MB,
    small_threshold: int = 150 * KB,
    resolution: int = 64 * KB,
    max_rounds: int = 48,
) -> DedupProbeResult:
    """Run Algorithm 1 against a live session (or a cross-user pair)."""
    second_uploader = second_uploader or uploader
    lower = 0
    upper = math.inf
    guess = int(initial_guess)
    rounds: List[ProbeRound] = []
    full_file = detect_full_file_dedup(uploader, second_uploader)

    for round_index in range(max_rounds):
        seed = 9_000 + round_index
        f1 = random_content(guess, seed=seed)
        probe = next(_PROBE_COUNTER)
        tr1 = _measure_upload(uploader, f"sd/{probe}/f1.bin", f1)
        f2 = f1.concat_self()
        tr2 = _measure_upload(second_uploader, f"sd/{probe}/f2.bin", f2)

        is_small = tr2 < small_threshold and tr2 < max(tr1 // 4, 1)
        if is_small:
            # Confirmation probe: rule out "guess is a multiple of B".
            f3 = f1.append(f1.slice(0, guess // 2))
            tr3 = _measure_upload(second_uploader,
                                  f"sd/{probe}/f3.bin", f3)
            if tr3 < small_threshold:
                rounds.append(ProbeRound(guess, tr1, tr2, "multiple-of-B"))
                upper = guess
                guess = (lower + guess) // 2
            else:
                rounds.append(ProbeRound(guess, tr1, tr2, "found"))
                return DedupProbeResult(granularity=guess, full_file=True,
                                        rounds=rounds)
        elif tr2 < 2 * guess:
            rounds.append(ProbeRound(guess, tr1, tr2, "guess-too-big"))
            upper = guess
            guess = (lower + int(upper)) // 2
        else:
            rounds.append(ProbeRound(guess, tr1, tr2, "guess-too-small"))
            lower = guess
            guess = guess * 2 if math.isinf(upper) else (lower + int(upper)) // 2

        if math.isinf(upper) and guess > max_block:
            return DedupProbeResult(granularity=None, full_file=full_file,
                                    rounds=rounds)
        if not math.isinf(upper) and int(upper) - lower <= resolution:
            # Bracketed without an exact hit: report the bracket midpoint.
            mid = (lower + int(upper)) // 2
            return DedupProbeResult(granularity=mid if mid > 0 else None,
                                    full_file=full_file, rounds=rounds)
        if guess <= 0:
            return DedupProbeResult(granularity=None, full_file=full_file,
                                    rounds=rounds)
    return DedupProbeResult(granularity=None, full_file=full_file, rounds=rounds)


# ---------------------------------------------------------------------------
# Experiment 5 / Table 9 driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DedupFinding:
    """One row of Table 9."""

    service: str
    same_user: str
    cross_user: str


def _paired_sessions(service: str, access: AccessMethod) -> Tuple[SyncSession, SyncSession]:
    """Two users of the same service sharing one cloud and one clock."""
    profile = service_profile(service, access)
    sim = Simulator()
    server = CloudServer(dedup=profile.dedup,
                         storage_chunk_size=profile.storage_chunk_size,
                         name=profile.name)
    alice = SyncSession(profile, sim=sim, server=server, user="alice",
                        link_spec=mn_link())
    bob = SyncSession(profile, sim=sim, server=server, user="bob",
                      link_spec=mn_link())
    return alice, bob


def experiment5_dedup(
    services=("GoogleDrive", "OneDrive", "Dropbox", "Box", "UbuntuOne", "SugarSync"),
    access: AccessMethod = AccessMethod.PC,
    max_block: int = 16 * MB,
) -> List[DedupFinding]:
    """Reproduce Table 9 by black-box probing each simulated service."""
    findings = []
    for service in services:
        same_alice, same_bob = _paired_sessions(service, access)
        same = iterative_self_duplication(same_alice, max_block=max_block)

        # The paper's cross-user procedure (§5.2): first confirm cross-user
        # *full-file* dedup by re-uploading an identical file from a second
        # account; only then is Algorithm 1 worth re-running across users.
        cross_alice, cross_bob = _paired_sessions(service, access)
        if detect_full_file_dedup(cross_alice, cross_bob):
            cross = iterative_self_duplication(cross_alice, cross_bob,
                                               max_block=max_block)
            cross_label = cross.label()
        else:
            cross_label = "No"
        findings.append(DedupFinding(
            service=service,
            same_user=same.label(),
            cross_user=cross_label,
        ))
    return findings

"""Workload generators: the usage patterns the paper's introduction motivates.

Each generator drives a :class:`~repro.client.SyncSession` through one
realistic scenario and returns the *data update size* (the TUE denominator),
so any workload composes with any profile, machine, or link:

    workload = photo_import(count=50)
    update_bytes = workload(session)
    session.run_until_idle()
    print(session.total_traffic / update_bytes)

All generators are deterministic given their arguments.
"""

from __future__ import annotations

from typing import Callable

from ..client import SyncSession
from ..content import random_content, text_content
from ..units import KB, MB

#: A workload drives a session and returns the data update size in bytes.
Workload = Callable[[SyncSession], int]


def photo_import(count: int = 30, photo_size: int = 2 * MB,
                 seed: int = 0) -> Workload:
    """Import a camera roll: incompressible media, uploaded once.

    The workload Google Drive's full-file sync is "more suitable for" per
    §4.3 — no modifications ever happen.
    """
    def run(session: SyncSession) -> int:
        for index in range(count):
            session.create_file(
                f"photos/IMG_{seed:02d}{index:04d}.jpg",
                random_content(photo_size, seed=seed * 10_000 + index))
        session.run_until_idle()
        return count * photo_size
    return run


def source_tree_checkout(files: int = 150, mean_size: int = 4 * KB,
                         seed: int = 0) -> Workload:
    """Drop a tree of small compressible text files in at once (§4.1's
    small-file batch, the BDS showcase)."""
    def run(session: SyncSession) -> int:
        total = 0
        for index in range(files):
            size = mean_size // 2 + (index * 977) % mean_size
            session.create_file(
                f"src/pkg{index % 12}/mod{index:04d}.py",
                text_content(size, seed=seed * 10_000 + index))
            total += size
        session.run_until_idle()
        return total
    return run


def collaborative_editing(saves: int = 60, save_period: float = 6.0,
                          save_bytes: int = 2 * KB, seed: int = 0) -> Workload:
    """An author saving a growing document every few seconds (§6)."""
    def run(session: SyncSession) -> int:
        session.create_file("draft.tex", random_content(0))
        session.run_until_idle()
        for index in range(saves):
            session.append("draft.tex",
                           random_content(save_bytes, seed=seed * 10_000 + index))
            session.advance(save_period)
        session.run_until_idle()
        return saves * save_bytes
    return run


def appending_stream(total: int = 1 * MB, chunk: int = 1 * KB,
                     period: float = 1.0, seed: int = 0) -> Workload:
    """The paper's raw "X KB / X sec" primitive as a workload."""
    def run(session: SyncSession) -> int:
        session.create_file("stream.bin", random_content(0))
        session.run_until_idle()
        appended = 0
        index = 0
        while appended < total:
            step = min(chunk, total - appended)
            session.append("stream.bin",
                           random_content(step, seed=seed * 10_000 + index))
            appended += step
            index += 1
            session.advance(period)
        session.run_until_idle()
        return appended
    return run


def log_rotation(rotations: int = 5, grow_to: int = 256 * KB,
                 step: int = 32 * KB, period: float = 10.0,
                 seed: int = 0) -> Workload:
    """A log that grows in bursts and is truncated at each rotation."""
    def run(session: SyncSession) -> int:
        session.create_file("app.log", random_content(0))
        session.run_until_idle()
        update = 0
        counter = 0
        for _ in range(rotations):
            grown = 0
            while grown < grow_to:
                session.append("app.log",
                               random_content(step, seed=seed * 10_000 + counter))
                grown += step
                update += step
                counter += 1
                session.advance(period)
            session.folder.truncate("app.log", 0)
            update += grow_to  # truncation alters the whole grown region
            session.advance(period)
        session.run_until_idle()
        return update
    return run


def mixed_office(seed: int = 0) -> Workload:
    """A day of office work: documents created, edited, renamed, duplicated,
    and a couple of large attachments — every §4/§5 mechanism touched."""
    def run(session: SyncSession) -> int:
        update = 0
        for index in range(20):
            size = 8 * KB + (index * 3677) % (32 * KB)
            session.create_file(f"docs/report{index:02d}.doc",
                                text_content(size, seed=seed * 10_000 + index))
            update += size
        session.run_until_idle()
        for index in range(0, 20, 2):
            session.modify_random_byte(f"docs/report{index:02d}.doc",
                                       seed=seed + index)
            update += 1
            session.advance(30.0)
        session.run_until_idle()
        attachment = random_content(3 * MB, seed=seed + 999)
        session.create_file("mail/specs.zip", attachment)
        update += attachment.size
        session.run_until_idle()
        session.create_file("archive/specs-copy.zip", attachment)  # duplicate
        update += attachment.size
        session.run_until_idle()
        session.folder.rename("docs/report00.doc", "docs/final.doc")
        session.run_until_idle()
        return update
    return run

"""Reusable workload generators for sessions and experiments."""

from .generators import (
    Workload,
    appending_stream,
    collaborative_editing,
    log_rotation,
    mixed_office,
    photo_import,
    source_tree_checkout,
)

__all__ = [
    "Workload",
    "appending_stream",
    "collaborative_editing",
    "log_rotation",
    "mixed_office",
    "photo_import",
    "source_tree_checkout",
]

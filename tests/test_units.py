"""Unit tests for size/rate parsing and formatting."""

import pytest

from repro.units import GB, KB, MB, Mbps, fmt_rate, fmt_size, parse_size


def test_constants_are_binary():
    assert KB == 1024
    assert MB == 1024 ** 2
    assert GB == 1024 ** 3


@pytest.mark.parametrize("text,expected", [
    ("1", 1),
    ("1B", 1),
    ("1 KB", KB),
    ("10M", 10 * MB),
    ("2 GB", 2 * GB),
    ("100k", 100 * KB),
])
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("bad", ["", "MB", "1.5M", "ten"])
def test_parse_size_rejects(bad):
    with pytest.raises(ValueError):
        parse_size(bad)


def test_fmt_size_matches_paper_style():
    assert fmt_size(1) == "1 B"
    assert fmt_size(10 * KB) == "10.00 K"
    assert fmt_size(int(1.28 * MB)) == "1.28 M"
    assert fmt_size(2 * GB) == "2.00 G"


def test_fmt_rate():
    assert fmt_rate(20 * Mbps) == "20.0 Mbps"
    assert fmt_rate(800_000) == "800 Kbps"

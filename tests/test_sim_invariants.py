"""System-wide invariants that must hold across any busy session."""

import pytest

from repro.client import AccessMethod, SyncSession
from repro.content import random_content
from repro.units import KB


@pytest.fixture(scope="module")
def busy_session():
    session = SyncSession("Dropbox", AccessMethod.PC)
    for index in range(8):
        session.create_file(f"f{index}.bin",
                            random_content(16 * KB, seed=index))
    session.run_until_idle()
    for index in range(0, 8, 2):
        session.modify_random_byte(f"f{index}.bin", seed=100 + index)
        session.advance(3.0)
    session.delete_file("f1.bin")
    session.run_until_idle()
    return session


def test_meter_times_non_decreasing(busy_session):
    times = [record.time for record in busy_session.meter.records]
    assert times == sorted(times)


def test_sync_transactions_never_overlap(busy_session):
    """Condition 1: a new sync starts only after the previous one ends."""
    history = busy_session.client.history
    assert len(history) >= 2
    for previous, current in zip(history, history[1:]):
        assert current.start >= previous.end - 1e-9


def test_sync_durations_positive(busy_session):
    for record in busy_session.client.history:
        assert record.end > record.start


def test_history_totals_cover_all_traffic(busy_session):
    total_from_history = sum(r.total_bytes for r in busy_session.client.history)
    assert total_from_history == busy_session.total_traffic


def test_clock_never_runs_backwards(busy_session):
    assert busy_session.sim.now >= 0
    assert busy_session.sim.pending_count() == 0


def test_batch_stats_consistent(busy_session):
    stats = busy_session.client.stats
    assert len(stats.batch_sizes) == stats.sync_transactions
    assert sum(stats.ops_per_sync) <= stats.events_seen
    assert stats.files_synced >= len(busy_session.folder.paths())


def test_overhead_fraction_bounded(busy_session):
    meter = busy_session.meter
    assert 0 < meter.overhead_bytes < meter.total_bytes
    assert meter.payload_bytes > 0

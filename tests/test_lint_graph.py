"""Symbol-table and call-graph tests for the whole-program lint layer."""

import textwrap

from repro.lint import KNOWN_IDS, ProjectContext


def _project(tree):
    """Build a ProjectContext from {relative_path: source} mappings."""
    entries = [(path, textwrap.dedent(source))
               for path, source in sorted(tree.items())]
    return ProjectContext(entries, KNOWN_IDS)


# -- import bindings --------------------------------------------------------

def test_import_bindings_absolute_aliased_and_from():
    project = _project({"src/repro/a.py": """\
        import multiprocessing
        import multiprocessing.shared_memory as shm
        from multiprocessing import resource_tracker
        from os import urandom as entropy
        """})
    info = project.modules["repro.a"]
    assert info.imports["multiprocessing"] == "multiprocessing"
    assert info.imports["shm"] == "multiprocessing.shared_memory"
    assert info.imports["resource_tracker"] \
        == "multiprocessing.resource_tracker"
    assert info.imports["entropy"] == "os.urandom"
    assert info.expand("shm.SharedMemory") \
        == "multiprocessing.shared_memory.SharedMemory"
    assert info.expand("unbound.name") == "unbound.name"


def test_relative_imports_resolve_against_the_package():
    project = _project({
        "src/repro/obs/recorder.py": 'SPAN_KINDS = ("connect",)\n',
        "src/repro/lint/rules/observability.py": """\
            from ...obs.recorder import SPAN_KINDS
            from ..engine import Rule
            from . import helpers
            """,
        "src/repro/sub/__init__.py": """\
            from .leaf import thing
            """,
    })
    rules_mod = project.modules["repro.lint.rules.observability"]
    assert rules_mod.imports["SPAN_KINDS"] == "repro.obs.recorder.SPAN_KINDS"
    assert rules_mod.imports["Rule"] == "repro.lint.engine.Rule"
    assert rules_mod.imports["helpers"] == "repro.lint.rules.helpers"
    # A package's __init__ resolves level-1 against itself, not its parent.
    init = project.modules["repro.sub"]
    assert init.imports["thing"] == "repro.sub.leaf.thing"


def test_over_deep_relative_import_is_ignored_not_fatal():
    project = _project({"src/repro/a.py": "from .....nowhere import x\n"})
    assert "x" not in project.modules["repro.a"].imports


# -- symbols ----------------------------------------------------------------

def test_functions_methods_classes_and_constants_are_collected():
    project = _project({"src/repro/mod.py": """\
        LIMIT = 4096
        NAME: str = "x"

        class Worker:
            def run(self):
                return LIMIT

        def helper():
            local = 1  # not a module constant
            return local
        """})
    info = project.modules["repro.mod"]
    assert set(info.functions) == {"Worker.run", "helper"}
    assert info.functions["Worker.run"].name == "run"
    assert info.functions["Worker.run"].node_id == "repro.mod:Worker.run"
    assert info.classes == {"Worker"}
    assert set(info.constants) == {"LIMIT", "NAME"}


# -- constant resolution ----------------------------------------------------

def test_resolve_constant_chases_across_modules_and_aliases():
    project = _project({
        "src/repro/kinds.py": 'BUNDLE = "bundle-commit"\nALIAS = BUNDLE\n',
        "src/repro/reexport.py": "from repro.kinds import ALIAS as KIND\n",
        "src/repro/user.py": "from repro.reexport import KIND\n",
    })
    user = project.modules["repro.user"]
    resolved = project.resolve_constant(user, "KIND")
    assert resolved is not None and resolved.value == "bundle-commit"


def test_resolve_constant_returns_none_outside_the_project():
    project = _project({"src/repro/a.py": "import os\nX = os.sep\n"})
    info = project.modules["repro.a"]
    assert project.resolve_constant(info, "os.sep") is None


# -- call graph -------------------------------------------------------------

def test_call_graph_resolves_cross_module_and_self_calls():
    project = _project({
        "src/repro/util.py": """\
            def leaf():
                return 1
            """,
        "src/repro/app.py": """\
            from repro.util import leaf

            class Driver:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return leaf()
            """,
    })
    graph = project.call_graph
    assert "repro.util:leaf" in set(
        graph.callees_of("repro.app:Driver.inner"))
    assert "repro.app:Driver.inner" in set(
        graph.callees_of("repro.app:Driver.outer"))
    # Transitive reachability: outer -> inner -> leaf.
    path = graph.reaches("repro.app:Driver.outer", {"repro.util:leaf"})
    assert path == ["repro.app:Driver.outer", "repro.app:Driver.inner",
                    "repro.util:leaf"]
    assert graph.reaches("repro.util:leaf", {"repro.app:Driver.outer"}) \
        is None


def test_constructor_calls_resolve_to_init():
    project = _project({
        "src/repro/a.py": """\
            class Pump:
                def __init__(self):
                    self.x = 1
            """,
        "src/repro/b.py": """\
            from repro.a import Pump

            def build():
                return Pump()
            """,
    })
    assert "repro.a:Pump.__init__" in set(
        project.call_graph.callees_of("repro.b:build"))


def test_module_level_calls_attribute_to_module_scope():
    project = _project({"src/repro/a.py": """\
        def setup():
            return 1

        VALUE = setup()
        """})
    assert "repro.a:setup" in set(
        project.call_graph.callees_of("repro.a:<module>"))

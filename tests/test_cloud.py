"""Unit tests for the cloud back-end substrate."""

import pytest

from repro.chunking import fingerprint
from repro.cloud import (
    AccountRegistry,
    AlreadyExists,
    ChunkStore,
    CloudServer,
    DedupConfig,
    DedupGranularity,
    DedupIndex,
    DedupScope,
    IntegrityError,
    MetadataServer,
    NotFound,
    ObjectStore,
    QuotaExceeded,
)
from repro.content import random_content
from repro.delta import compute_delta, compute_signature


# ---------------------------------------------------------------------------
# object store
# ---------------------------------------------------------------------------

def test_put_get_roundtrip():
    store = ObjectStore()
    store.put("a", b"hello")
    assert store.get("a") == b"hello"
    assert store.ops.put == 1 and store.ops.get == 1


def test_get_missing_raises():
    with pytest.raises(NotFound):
        ObjectStore().get("nope")


def test_put_overwrites_whole_object():
    store = ObjectStore()
    store.put("a", b"one")
    record = store.put("a", b"twotwo")
    assert store.get("a") == b"twotwo"
    assert record.put_count == 2


def test_delete_removes():
    store = ObjectStore()
    store.put("a", b"x")
    store.delete("a")
    assert "a" not in store
    with pytest.raises(NotFound):
        store.delete("a")


def test_list_keys_prefix():
    store = ObjectStore()
    store.put("chunks/1", b"x")
    store.put("chunks/2", b"y")
    store.put("meta/1", b"z")
    assert store.list_keys("chunks/") == ["chunks/1", "chunks/2"]


def test_stored_bytes_accounting():
    store = ObjectStore()
    store.put("a", b"12345")
    store.put("b", b"123")
    assert store.stored_bytes == 8


def test_byte_counters():
    store = ObjectStore()
    store.put("a", b"12345")
    store.get("a")
    assert store.ops.put_bytes == 5
    assert store.ops.get_bytes == 5


# ---------------------------------------------------------------------------
# dedup index
# ---------------------------------------------------------------------------

def test_dedup_disabled_always_misses():
    index = DedupIndex(DedupConfig.none())
    index.register("u", "d1", "k1")
    assert index.lookup("u", "d1") is None
    assert index.misses == 1


def test_same_user_scope_isolates_users():
    index = DedupIndex(DedupConfig.block(4096))
    index.register("alice", "d1", "k1")
    assert index.lookup("alice", "d1") == "k1"
    assert index.lookup("bob", "d1") is None


def test_cross_user_scope_shares():
    index = DedupIndex(DedupConfig.full_file(cross_user=True))
    index.register("alice", "d1", "k1")
    assert index.lookup("bob", "d1") == "k1"
    assert index.hits == 1


def test_forget_user_drops_private_entries():
    index = DedupIndex(DedupConfig.block(4096))
    index.register("alice", "d1", "k1")
    index.forget_user("alice")
    assert index.lookup("alice", "d1") is None


def test_block_config_validation():
    with pytest.raises(ValueError):
        DedupConfig(DedupGranularity.BLOCK, DedupScope.SAME_USER, block_size=0)


def test_config_unit_size():
    assert DedupConfig.block(4096).unit_size == 4096
    assert DedupConfig.full_file().unit_size is None
    assert not DedupConfig.none().enabled


# ---------------------------------------------------------------------------
# accounts
# ---------------------------------------------------------------------------

def test_register_and_duplicate():
    registry = AccountRegistry()
    registry.register("alice")
    with pytest.raises(AlreadyExists):
        registry.register("alice")


def test_quota_enforced():
    registry = AccountRegistry()
    account = registry.register("bob", quota_bytes=100)
    account.charge(80)
    with pytest.raises(QuotaExceeded):
        account.charge(30)
    account.refund(50)
    account.charge(30)
    assert account.used_bytes == 60


def test_refund_never_negative():
    registry = AccountRegistry()
    account = registry.register("c", quota_bytes=100)
    account.refund(10)
    assert account.used_bytes == 0


def test_ensure_is_idempotent():
    registry = AccountRegistry()
    a1 = registry.ensure("x")
    a2 = registry.ensure("x")
    assert a1 is a2


# ---------------------------------------------------------------------------
# metadata server
# ---------------------------------------------------------------------------

def _commit(meta, user="u", path="p", size=10, version_tag="v", now=0.0):
    return meta.commit(user, path, size, version_tag, ["d"], ["k"], [size], now)


def test_commit_and_head():
    meta = MetadataServer()
    _commit(meta, size=10)
    version = meta.head("u", "p")
    assert version.version == 1 and version.size == 10


def test_versions_accumulate():
    meta = MetadataServer()
    _commit(meta, size=10)
    _commit(meta, size=20)
    assert meta.head("u", "p").version == 2
    assert meta.version("u", "p", 1).size == 10


def test_fake_deletion_keeps_history():
    meta = MetadataServer()
    _commit(meta, size=10)
    meta.tombstone("u", "p", 1.0)
    with pytest.raises(NotFound):
        meta.head("u", "p")
    # History survives: version 1 is still addressable (rollback).
    assert meta.version("u", "p", 1).size == 10
    assert meta.list_paths("u") == []
    assert meta.list_paths("u", include_deleted=True) == ["p"]


def test_live_chunk_keys_include_old_versions():
    meta = MetadataServer()
    meta.commit("u", "p", 5, "m1", ["d1"], ["k1"], [5], 0.0)
    meta.commit("u", "p", 5, "m2", ["d2"], ["k2"], [5], 1.0)
    assert meta.live_chunk_keys() == {"k1", "k2"}


# ---------------------------------------------------------------------------
# cloud server end-to-end semantics
# ---------------------------------------------------------------------------

def upload(server, user, path, content, chunk_size=None):
    """Minimal client-side upload flow against the server API."""
    unit = chunk_size or max(content.size, 1)
    digests, keys, sizes = [], [], []
    for offset in range(0, max(content.size, 1), unit):
        piece = content.data[offset:offset + unit]
        digest = fingerprint(piece)
        key = server.resolve(user, digest)
        if key is None:
            key = server.upload_chunk(user, digest, piece)
        digests.append(digest)
        keys.append(key)
        sizes.append(len(piece))
    return server.commit(user, path, content.size, content.md5,
                         digests, keys, sizes)


def test_upload_download_roundtrip():
    server = CloudServer()
    content = random_content(5000, seed=1)
    upload(server, "u", "f.bin", content)
    assert server.download("u", "f.bin") == content.data


def test_chunked_upload_roundtrip():
    server = CloudServer(storage_chunk_size=1024)
    content = random_content(5000, seed=2)
    upload(server, "u", "f.bin", content, chunk_size=1024)
    assert server.download("u", "f.bin") == content.data


def test_upload_chunk_verifies_digest():
    server = CloudServer()
    with pytest.raises(IntegrityError):
        server.upload_chunk("u", "bogus", b"data")


def test_negotiate_respects_dedup_config():
    dedup = CloudServer(dedup=DedupConfig.full_file())
    content = random_content(1000, seed=3)
    digest = fingerprint(content.data)
    assert dedup.negotiate("u", [digest]) == [digest]
    dedup.upload_chunk("u", digest, content.data)
    assert dedup.negotiate("u", [digest]) == []
    # A no-dedup server keeps asking for everything.
    plain = CloudServer()
    plain.upload_chunk("u", digest, content.data)
    assert plain.negotiate("u", [digest]) == [digest]


def test_commit_missing_chunk_rejected():
    server = CloudServer()
    with pytest.raises(NotFound):
        server.commit("u", "p", 10, "m", ["d"], ["chunks/404"], [10])


def test_fake_deletion_and_restore():
    server = CloudServer()
    content = random_content(2000, seed=4)
    upload(server, "u", "f.bin", content)
    server.delete_file("u", "f.bin")
    with pytest.raises(NotFound):
        server.download("u", "f.bin")
    server.restore_version("u", "f.bin", 1)
    assert server.download("u", "f.bin") == content.data


def test_apply_delta_via_midlayer_counts_rest_ops():
    server = CloudServer()
    old = random_content(4000, seed=5)
    upload(server, "u", "f.bin", old)
    ops_before = server.objects.ops.total_ops()
    new = old.modify_byte(100)
    delta = compute_delta(compute_signature(old.data, 512), new.data)
    server.apply_delta("u", "f.bin", delta, new.md5)
    assert server.download("u", "f.bin") == new.data
    # The MODIFY became GET + PUT + DELETE against the REST store (§4.3).
    assert server.objects.ops.total_ops() > ops_before
    assert server.stats.delta_applications == 1


def test_quota_enforced_on_commit():
    server = CloudServer()
    server.accounts.register("tiny", quota_bytes=1000)
    content = random_content(2000, seed=6)
    with pytest.raises(QuotaExceeded):
        upload(server, "tiny", "big.bin", content)


def test_garbage_collection_spares_version_history():
    server = CloudServer()
    v1 = random_content(1000, seed=7)
    upload(server, "u", "f.bin", v1)
    v2 = random_content(1000, seed=8)
    upload(server, "u", "f.bin", v2)
    # Both versions' chunks are live (rollback support) — GC removes nothing.
    assert server.collect_garbage() == 0
    assert server.download("u", "f.bin") == v2.data


def test_duplicate_upload_not_stored_twice():
    server = CloudServer(dedup=DedupConfig.full_file())
    content = random_content(3000, seed=9)
    upload(server, "u", "a.bin", content)
    stored_before = server.objects.stored_bytes
    upload(server, "u", "b.bin", content)
    assert server.objects.stored_bytes == stored_before


def test_chunkstore_keys_are_unique():
    store = ChunkStore(ObjectStore())
    k1 = store.store(b"a")
    k2 = store.store(b"a")
    assert k1 != k2
    assert store.fetch_many([k1, k2]) == b"aa"


def test_purge_history_reclaims_storage():
    server = CloudServer()
    versions = [random_content(100_000, seed=s) for s in range(4)]
    upload(server, "u", "f.bin", versions[0])
    for content in versions[1:]:
        # Full overwrite commits (new chunks each time).
        upload(server, "u", "f.bin", content)
    stored_before = server.objects.stored_bytes
    assert stored_before >= 4 * 100_000
    removed = server.purge_history("u", "f.bin", keep_last=1)
    assert removed == 3
    assert server.objects.stored_bytes <= stored_before - 3 * 100_000
    # The head still downloads; old versions are gone.
    assert server.download("u", "f.bin") == versions[-1].data
    with pytest.raises(NotFound):
        server.metadata.version("u", "f.bin", 1)


def test_purge_history_validation_and_noop():
    server = CloudServer()
    content = random_content(1000, seed=9)
    upload(server, "u", "f.bin", content)
    with pytest.raises(ValueError):
        server.purge_history("u", "f.bin", keep_last=0)
    assert server.purge_history("u", "f.bin", keep_last=5) == 0

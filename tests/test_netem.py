"""Unit tests for the network emulator (Netfilter-proxy equivalent)."""

import pytest

from repro.simnet import Link, NetworkEmulator, Simulator, mn_link
from repro.units import Mbps


def make_emulator():
    sim = Simulator()
    link = Link(mn_link())
    return sim, link, NetworkEmulator(sim, link)


def test_set_bandwidth_applies_and_clamps():
    _, link, emulator = make_emulator()
    emulator.set_bandwidth(up_bw=5 * Mbps)
    assert link.spec.up_bw == 5 * Mbps
    emulator.set_bandwidth(up_bw=100 * Mbps)  # above the rig's 20 Mbps max
    assert link.spec.up_bw == 20 * Mbps


def test_set_bandwidth_partial():
    _, link, emulator = make_emulator()
    original_down = link.spec.down_bw
    emulator.set_bandwidth(up_bw=2 * Mbps)
    assert link.spec.down_bw == original_down


def test_set_latency():
    _, link, emulator = make_emulator()
    emulator.set_latency(0.4)
    assert link.spec.rtt == 0.4


def test_validation():
    _, _, emulator = make_emulator()
    with pytest.raises(ValueError):
        emulator.set_bandwidth(up_bw=0)
    with pytest.raises(ValueError):
        emulator.set_latency(-1)


def test_scheduled_changes_fire_at_sim_time():
    sim, link, emulator = make_emulator()
    emulator.schedule_latency(10.0, 0.8)
    sim.run_until(5.0)
    assert link.spec.rtt != 0.8
    sim.run_until(10.0)
    assert link.spec.rtt == 0.8


def test_history_records_every_change():
    sim, _, emulator = make_emulator()
    emulator.set_latency(0.2)
    emulator.set_bandwidth(up_bw=2 * Mbps)
    assert len(emulator.history) == 3  # initial + two changes

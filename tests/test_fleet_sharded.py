"""Sharded event domains: byte-identity with the global queue, protocol audit.

The determinism contract of `repro.simnet.domains`: a fleet sharded into D
event domains must be **byte-identical** to the same fleet on the single
global queue — same traffic totals, same wire-level span streams, same
rendered report — at any domain count, because every event is stamped from
one global epoch counter and dispatched in global ``(time, epoch)`` order.
These tests pin that contract across service profiles × domain counts
{1, 2, 4}, through churn and fault composition, and check the
cross-domain message protocol's own invariants.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import AccessMethod, all_profiles
from repro.fleet import Fleet, schedule_writer_workload
from repro.obs import AuditViolation, TraceHub, audit_domain_protocol, recording
from repro.reporting import render_fleet_members
from repro.simnet import (
    DomainScheduler,
    FaultSchedule,
    SimulationError,
    verify_domain_protocol,
)
from repro.units import KB

PROFILE_NAMES = sorted(
    {profile.service for profile in all_profiles(AccessMethod.PC)})


def run_fleet(profile_name, domains, seed=7, clients=6, churn=False,
              faults=None):
    """One recorded fleet run; returns everything byte-identity compares."""
    hub = TraceHub()
    with recording(hub=hub):
        fleet = Fleet(profile_name, clients=clients, seed=seed,
                      domains=domains, faults=faults)
        schedule_writer_workload(fleet, writers=min(3, clients),
                                 file_size=16 * KB, seed=seed)
        if churn:
            fleet.sim.schedule_at(45.0, fleet.join)
            fleet.sim.schedule_at(55.0, fleet.members[-1].leave)
        end = fleet.run_until_idle()
        fleet.audit()
    report = fleet.report()
    spans = tuple(
        (span.kind, span.name, span.source, span.start, span.end,
         tuple(sorted(span.attrs.items())))
        for recorder in hub.recorders for span in recorder.spans)
    return {
        "end": end,
        "report": report,
        "rendered": render_fleet_members(report, title=profile_name),
        "spans": spans,
        "converged": fleet.converged(),
        "fleet": fleet,
    }


def assert_byte_identical(base, sharded):
    assert sharded["end"] == base["end"]
    assert sharded["report"] == base["report"]
    assert sharded["rendered"] == base["rendered"]
    assert sharded["spans"] == base["spans"]
    # Fault windows may legitimately block convergence — but then they
    # block it identically in both runs.
    assert sharded["converged"] == base["converged"]


# -- exhaustive profile sweep ------------------------------------------------

@pytest.mark.parametrize("profile_name", PROFILE_NAMES)
@pytest.mark.parametrize("domains", [2, 4])
def test_sharded_run_is_byte_identical_across_profiles(profile_name, domains):
    base = run_fleet(profile_name, domains=1)
    sharded = run_fleet(profile_name, domains=domains)
    assert_byte_identical(base, sharded)
    assert sharded["converged"]
    # The shards genuinely talked to each other: fan-out crosses domains.
    assert sharded["fleet"].sim.cross_messages > 0


# -- property: random profile/seed/churn/faults combinations ----------------

@given(
    profile_name=st.sampled_from(PROFILE_NAMES),
    domains=st.sampled_from([2, 4]),
    seed=st.integers(min_value=0, max_value=2**16),
    churn=st.booleans(),
    with_faults=st.booleans(),
)
@settings(deadline=None, max_examples=25)
def test_sharded_run_is_byte_identical_property(profile_name, domains, seed,
                                                churn, with_faults):
    faults = (FaultSchedule.generate(seed=seed, horizon=300.0,
                                     mean_interval=40.0, mean_duration=4.0)
              if with_faults else None)
    base = run_fleet(profile_name, domains=1, seed=seed, churn=churn,
                     faults=faults)
    sharded = run_fleet(profile_name, domains=domains, seed=seed,
                        churn=churn, faults=faults)
    assert_byte_identical(base, sharded)


def test_sharded_rerun_is_deterministic():
    first = run_fleet("GoogleDrive", domains=4, seed=3)
    second = run_fleet("GoogleDrive", domains=4, seed=3)
    assert_byte_identical(first, second)


# -- domain scheduler unit behaviour ----------------------------------------

def test_members_place_algorithmically_across_domains():
    fleet = Fleet("GoogleDrive", clients=6, seed=0, domains=4)
    for member in fleet.members:
        assert member.sim is fleet.sim.domain(member.index % 4)


def test_late_joiner_placement_is_join_order_pure():
    fleet = Fleet("GoogleDrive", clients=5, seed=0, domains=4)
    joiner = fleet.join()
    assert joiner.index == 5
    assert joiner.sim is fleet.sim.domain(5 % 4)


def test_fleet_rejects_nonpositive_domains():
    with pytest.raises(ValueError):
        Fleet("GoogleDrive", clients=2, domains=0)


def test_scheduler_rejects_nonpositive_domains():
    with pytest.raises(SimulationError):
        DomainScheduler(0)


def test_scheduler_routes_external_schedules_to_domain_zero():
    scheduler = DomainScheduler(3)
    scheduler.schedule(1.0, lambda: None)
    assert scheduler.domain(0).pending_count() == 1
    assert scheduler.pending_count() == 1


def test_scheduler_runs_events_in_global_time_order():
    scheduler = DomainScheduler(3)
    order = []
    scheduler.domain(2).schedule(3.0, order.append, "c")
    scheduler.domain(0).schedule(1.0, order.append, "a")
    scheduler.domain(1).schedule(2.0, order.append, "b")
    end = scheduler.run_until_idle()
    assert order == ["a", "b", "c"]
    assert end == 3.0
    assert scheduler.now == 3.0


def test_scheduler_breaks_time_ties_by_epoch():
    scheduler = DomainScheduler(2)
    order = []
    # Same time, scheduled in a known order across different domains.
    scheduler.domain(1).schedule(1.0, order.append, "first-scheduled")
    scheduler.domain(0).schedule(1.0, order.append, "second-scheduled")
    scheduler.run_until_idle()
    assert order == ["first-scheduled", "second-scheduled"]


def test_scheduler_run_until_advances_clock():
    scheduler = DomainScheduler(2)
    fired = []
    scheduler.domain(1).schedule(10.0, fired.append, "late")
    assert scheduler.run_until(5.0) == 5.0
    assert fired == []
    assert scheduler.run_until_idle() == 10.0
    assert fired == ["late"]


def test_scheduler_counts_cross_domain_messages():
    scheduler = DomainScheduler(2, trace_messages=True)

    def send_across():
        scheduler.domain(1).schedule(0.5, lambda: None)

    scheduler.domain(0).schedule(1.0, send_across)
    scheduler.run_until_idle()
    assert scheduler.cross_messages == 1
    assert scheduler.cross_matrix[0][1] == 1
    assert scheduler.cross_matrix[1][0] == 0
    message = scheduler.messages[0]
    assert message.source == 0 and message.target == 1
    assert message.sent_at == 1.0 and message.deliver_at == 1.5
    assert verify_domain_protocol(scheduler) == []


def test_scheduler_same_domain_schedule_is_not_a_crossing():
    scheduler = DomainScheduler(2)

    def stay_local():
        scheduler.domain(0).schedule(0.5, lambda: None)

    scheduler.domain(0).schedule(1.0, stay_local)
    scheduler.run_until_idle()
    assert scheduler.cross_messages == 0


def test_scheduler_rejects_backwards_cross_epoch():
    scheduler = DomainScheduler(2)
    scheduler._executing = 0
    scheduler._last_cross_epoch = 10**9
    with pytest.raises(SimulationError):
        scheduler.domain(1).schedule(1.0, lambda: None)


def test_scheduler_is_not_reentrant():
    scheduler = DomainScheduler(2)

    def reenter():
        scheduler.run_until_idle()

    scheduler.domain(0).schedule(1.0, reenter)
    with pytest.raises(SimulationError):
        scheduler.run_until_idle()


def test_scheduler_empty_queue_behaviour():
    scheduler = DomainScheduler(2)
    assert scheduler.peek_next_time() is None
    assert scheduler.step() is False
    assert scheduler.run_until_idle() == 0.0
    assert len(scheduler) == 2


# -- scale (slow tier) ------------------------------------------------------

@pytest.mark.slow
def test_large_sharded_fleet_matches_global_queue():
    """200 clients split over 4 domains, byte-identical to the one queue."""
    base = run_fleet("GoogleDrive", domains=1, seed=17, clients=200)
    sharded = run_fleet("GoogleDrive", domains=4, seed=17, clients=200)
    assert_byte_identical(base, sharded)
    assert sharded["converged"]
    assert sharded["fleet"].sim.cross_messages > 0


# -- protocol audit ----------------------------------------------------------

def test_domain_protocol_audit_passes_on_clean_run():
    run = run_fleet("Dropbox", domains=4)
    audit_domain_protocol(run["fleet"].sim)


def test_domain_protocol_audit_catches_matrix_drift():
    run = run_fleet("Dropbox", domains=4)
    scheduler = run["fleet"].sim
    scheduler.cross_matrix[0][1] += 1
    with pytest.raises(AuditViolation) as excinfo:
        audit_domain_protocol(scheduler)
    assert excinfo.value.invariant == "domain-protocol"


def test_domain_protocol_audit_catches_self_crossing():
    scheduler = DomainScheduler(2)
    scheduler.cross_matrix[1][1] = 3
    scheduler.cross_messages = 3
    violations = verify_domain_protocol(scheduler)
    assert any("to itself" in violation for violation in violations)


def test_domain_protocol_audit_catches_lost_trace():
    run = run_fleet("Dropbox", domains=4)
    scheduler = run["fleet"].sim
    assert scheduler.trace_messages
    dropped = scheduler.messages.pop()
    violations = verify_domain_protocol(scheduler)
    assert any("traced" in violation for violation in violations)
    scheduler.messages.append(dropped)


def test_domain_protocol_audit_catches_acausal_delivery():
    run = run_fleet("Dropbox", domains=4)
    scheduler = run["fleet"].sim
    message = scheduler.messages[0]
    scheduler.messages[0] = type(message)(
        epoch=message.epoch, source=message.source, target=message.target,
        sent_at=message.deliver_at + 1.0, deliver_at=message.deliver_at)
    violations = verify_domain_protocol(scheduler)
    assert any("before send" in violation for violation in violations)

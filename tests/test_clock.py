"""Unit tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run_until_idle()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, order.append, label)
    sim.run_until_idle()
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, 1)
    event.cancel()
    sim.run_until_idle()
    assert fired == []


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(2.0, second)

    def second():
        seen.append(sim.now)

    sim.schedule(1.0, first)
    sim.run_until_idle()
    assert seen == [1.0, 3.0]


def test_run_until_stops_at_time_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run_until(5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run_until_idle()
    assert fired == ["early", "late"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule_at(4.0, lambda: times.append(sim.now))
    sim.run_until_idle()
    assert times == [4.0]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_next_time() == 2.0


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    keep.cancel()
    assert sim.pending_count() == 0


def test_runaway_simulation_detected():
    sim = Simulator()

    def rescheduler():
        sim.schedule(0.001, rescheduler)

    sim.schedule(0.0, rescheduler)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


# -- run loop return values -------------------------------------------------

def test_run_until_idle_returns_final_time():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    assert sim.run_until_idle() == 3.0
    assert sim.run_until_idle() == 3.0  # idle run returns current time


def test_run_until_idle_with_max_time_returns_max_time():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    assert sim.run_until_idle(max_time=4.0) == 4.0


def test_run_until_returns_final_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    assert sim.run_until(5.0) == 5.0
    assert sim.now == 5.0


# -- sub-epsilon past scheduling --------------------------------------------

def test_schedule_at_clamps_float_noise_to_now():
    # Chains like schedule_at(committed_at + k * delay) accumulate ulp
    # noise; an infinitesimally-past absolute time must not blow up.
    sim = Simulator()
    sim.run_until(1e6)
    now = sim.now
    fired = []
    sim.schedule_at(now - now * 1e-15, fired.append, "ok")
    sim.run_until_idle()
    assert fired == ["ok"]
    assert sim.now == now  # clamped to "now", not rewound


def test_schedule_at_still_rejects_genuinely_past_times():
    sim = Simulator()
    sim.run_until(100.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(99.0, lambda: None)


def test_schedule_rejects_genuinely_negative_delay():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.5, lambda: None)


# -- calendar queue vs. heapq equivalence -----------------------------------

def run_script(queue_kind, script):
    """Drive one simulator through a schedule/cancel script; return firings.

    ``script`` is a list of (delay, cancel_index) pairs: each step schedules
    an event ``delay`` after the previous step's absolute time, then (if
    ``cancel_index`` is not None) cancels the event scheduled at that index.
    Half the events self-schedule a follow-up to exercise scheduling from
    inside callbacks.
    """
    sim = Simulator(queue=queue_kind)
    fired = []
    events = []

    def fire(label):
        fired.append((sim.now, label))
        if label % 2 == 0 and label < 1000:
            # One follow-up only — labels ≥ 1000 never re-schedule.
            sim.schedule(0.25, fire, label + 1000)

    for label, (delay, cancel_index) in enumerate(script):
        events.append(sim.schedule(delay, fire, label))
        if cancel_index is not None:
            events[cancel_index % len(events)].cancel()
    sim.run_until_idle()
    return fired


@pytest.mark.parametrize("queue_kind", ["calendar", "heap"])
def test_queue_kinds_run_identical_scripts(queue_kind):
    script = [(2.5, None), (2.5, None), (0.0, 0), (7.25, None), (2.5, 1)]
    assert run_script(queue_kind, script) == [
        (0.0, 2), (0.25, 1002), (2.5, 4), (2.75, 1004), (7.25, 3)]


@given(st.lists(
    st.tuples(
        st.one_of(
            st.sampled_from([0.0, 0.5, 1.0, 2.5, 1e-6, 3600.0, 1e6]),
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
        st.one_of(st.none(), st.integers(min_value=0, max_value=63))),
    min_size=1, max_size=64))
@settings(deadline=None, max_examples=200)
def test_calendar_queue_matches_heap_pop_order(script):
    """The determinism contract: both queues fire the same events at the
    same times in the same order, for any schedule including cancellations
    and exact time ties."""
    assert run_script("calendar", script) == run_script("heap", script)


def test_calendar_queue_slot_boundary_regression():
    """An event whose time divides *down* into the previous slot
    (``t == 17 * width`` floats to slot 16) must still pop in order."""
    from repro.simnet import CalendarEventQueue, Event

    width = 0.005662377450980393
    queue = CalendarEventQueue(width=width)
    boundary = 17 * width
    assert int(boundary // width) == 16  # the float quirk this test pins
    later = Event(boundary + width, 1, lambda: None, ())
    exact = Event(boundary, 2, lambda: None, ())
    queue.push(later)
    queue.push(exact)
    assert queue.pop() is exact
    assert queue.pop() is later
    assert queue.pop() is None


def test_calendar_queue_eager_cancellation_empties_buckets():
    from repro.simnet import CalendarEventQueue, Event

    queue = CalendarEventQueue()
    events = [Event(float(i), i, lambda: None, ()) for i in range(64)]
    for event in events:
        queue.push(event)
    for event in events:
        event.cancel()
    assert len(queue) == 0
    assert queue.pop() is None
    # Cancelled events left their buckets immediately (no lazy tombstones).
    assert all(not bucket for bucket in queue._buckets)


def test_event_cancel_after_fire_is_noop():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    event.cancel()  # must not raise or corrupt the queue
    event.cancel()
    assert sim.pending_count() == 0


def test_make_event_queue_rejects_unknown_kind():
    from repro.simnet import make_event_queue

    with pytest.raises(ValueError):
        make_event_queue("fibonacci")

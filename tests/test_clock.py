"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.simnet import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run_until_idle()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, order.append, label)
    sim.run_until_idle()
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, 1)
    event.cancel()
    sim.run_until_idle()
    assert fired == []


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(2.0, second)

    def second():
        seen.append(sim.now)

    sim.schedule(1.0, first)
    sim.run_until_idle()
    assert seen == [1.0, 3.0]


def test_run_until_stops_at_time_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run_until(5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run_until_idle()
    assert fired == ["early", "late"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule_at(4.0, lambda: times.append(sim.now))
    sim.run_until_idle()
    assert times == [4.0]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_next_time() == 2.0


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    keep.cancel()
    assert sim.pending_count() == 0


def test_runaway_simulation_detected():
    sim = Simulator()

    def rescheduler():
        sim.schedule(0.001, rescheduler)

    sim.schedule(0.0, rescheduler)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False

"""Parallel sharded replay: byte-identity with the sequential estimator,
exact merge semantics, the two-phase CROSS_USER dedup protocol, and the
streaming shard generator."""

import json
from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.client import AccessMethod, SERVICES, service_profile
from repro.cloud.dedup import DedupConfig, DedupGranularity, DedupScope
from repro.trace import (
    FileRecord,
    ReplayReport,
    Trace,
    generate_trace,
    iter_trace_shards,
    replay_trace,
    replay_trace_parallel,
)
from repro.trace.replay import _shard_by_user
from repro.trace.schema import UNIT_SIZE
from repro.units import KB


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.02, seed=9)


def canonical(report):
    """Byte-exact serialisation including per-user dict insertion order."""
    return json.dumps(asdict(report))


# ---------------------------------------------------------------------------
# byte-identity property: every profile × both scopes × worker counts
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("service", SERVICES)
@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_parallel_matches_sequential_byte_for_byte(trace, service, workers):
    profile = service_profile(service, AccessMethod.PC)
    sequential = replay_trace(trace, profile, seed=7)
    parallel = replay_trace_parallel(trace, profile, workers=workers, seed=7)
    assert canonical(parallel) == canonical(sequential)
    assert repr(parallel) == repr(sequential)


def test_parallel_respects_seed(trace):
    profile = service_profile("Dropbox", AccessMethod.PC)
    a = replay_trace_parallel(trace, profile, workers=4, seed=1)
    b = replay_trace_parallel(trace, profile, workers=4, seed=2)
    assert a.traffic_bytes != b.traffic_bytes


def test_parallel_empty_trace():
    profile = service_profile("Box", AccessMethod.PC)
    report = replay_trace_parallel(Trace(), profile, workers=4)
    assert report.file_count == 0
    assert report.traffic_bytes == 0


def test_parallel_rejects_bad_worker_count(trace):
    profile = service_profile("Box", AccessMethod.PC)
    with pytest.raises(ValueError):
        replay_trace_parallel(trace, profile, workers=0)


def test_more_workers_than_users():
    """A tiny trace with a single user still replays at high worker counts."""
    trace = generate_trace(scale=0.001, seed=3)
    profile = service_profile("UbuntuOne", AccessMethod.PC)
    sequential = replay_trace(trace, profile, seed=0)
    parallel = replay_trace_parallel(trace, profile, workers=8, seed=0)
    assert canonical(parallel) == canonical(sequential)


# ---------------------------------------------------------------------------
# adversarial CROSS_USER two-phase protocol
# ---------------------------------------------------------------------------

def _record(user, index, segments, size, created_at):
    return FileRecord(
        user=user, service="X", path=f"{user}/f{index:04d}.bin",
        size=size, compressed_size=size,
        created_at=created_at, modified_at=created_at, modify_count=0,
        segments=np.asarray(segments, dtype=np.int64), content_id=index,
    )


def _cross_user_duplicate_trace():
    """Duplicates interleaved so first occurrences alternate across users:

    every user shares content A and B with every other user, ordered so a
    per-user shard always sees some units first that another shard saw
    earlier — the worst case for first-occurrence resolution.
    """
    size = 3 * UNIT_SIZE + 5 * KB     # 3 full units + a short tail block
    a = [1, 2, 3, 4]
    b = [9, 2, 3, 4]                  # shares a suffix of A's units
    records = []
    index = 0
    for round_number in range(6):
        for user in ("u0", "u1", "u2", "u3"):
            content = a if (round_number + int(user[1])) % 2 == 0 else b
            records.append(_record(user, index, content, size,
                                   created_at=float(index)))
            index += 1
    return Trace(records=records)


@pytest.mark.parametrize("granularity", [DedupGranularity.FULL_FILE,
                                         DedupGranularity.BLOCK])
@pytest.mark.parametrize("workers", [2, 3, 4, 8])
def test_two_phase_cross_user_dedup_is_exact(granularity, workers):
    trace = _cross_user_duplicate_trace()
    base = service_profile("UbuntuOne", AccessMethod.PC)
    profile = replace(base, dedup=DedupConfig(
        granularity=granularity, scope=DedupScope.CROSS_USER,
        block_size=2 * UNIT_SIZE))
    sequential = replay_trace(trace, profile, seed=0)
    parallel = replay_trace_parallel(trace, profile, workers=workers, seed=0)
    assert canonical(parallel) == canonical(sequential)
    # Sanity: the trace genuinely exercises cross-user dedup.
    assert sequential.saved_by_dedup > 0


def test_same_user_scope_sees_no_cross_user_savings():
    """Control for the previous test: with SAME_USER scope each user pays
    for its own first copy, so dedup savings shrink — and parity holds."""
    trace = _cross_user_duplicate_trace()
    base = service_profile("UbuntuOne", AccessMethod.PC)
    cross = replace(base, dedup=DedupConfig(
        granularity=DedupGranularity.FULL_FILE, scope=DedupScope.CROSS_USER))
    same = replace(base, dedup=DedupConfig(
        granularity=DedupGranularity.FULL_FILE, scope=DedupScope.SAME_USER))
    cross_report = replay_trace(trace, cross, seed=0)
    same_report = replay_trace(trace, same, seed=0)
    assert cross_report.saved_by_dedup > same_report.saved_by_dedup
    for profile, sequential in ((cross, cross_report), (same, same_report)):
        parallel = replay_trace_parallel(trace, profile, workers=4, seed=0)
        assert canonical(parallel) == canonical(sequential)


# ---------------------------------------------------------------------------
# ReplayReport.merge
# ---------------------------------------------------------------------------

def test_merge_adds_counters_and_dicts():
    a = ReplayReport(service="X", access="pc", file_count=2,
                     traffic_bytes=100, data_update_bytes=50,
                     per_user_traffic={"u0": 60, "u1": 40},
                     per_user_modification_traffic={"u0": 10})
    b = ReplayReport(service="X", access="pc", file_count=3,
                     traffic_bytes=30, data_update_bytes=20,
                     per_user_traffic={"u1": 20, "u2": 10},
                     per_user_modification_traffic={"u2": 5})
    merged = ReplayReport.merge([a, b])
    assert merged.file_count == 5
    assert merged.traffic_bytes == 130
    assert merged.data_update_bytes == 70
    assert merged.per_user_traffic == {"u0": 60, "u1": 60, "u2": 10}
    assert merged.per_user_modification_traffic == {"u0": 10, "u2": 5}


def test_merge_rejects_empty_and_mixed_profiles():
    with pytest.raises(ValueError):
        ReplayReport.merge([])
    with pytest.raises(ValueError):
        ReplayReport.merge([ReplayReport(service="X", access="pc"),
                            ReplayReport(service="Y", access="pc")])


def test_merge_of_user_shards_equals_whole(trace):
    """For a user-disjoint partition without cross-shard dedup coupling,
    merging shard reports reproduces the whole-trace report exactly."""
    profile = service_profile("GoogleDrive", AccessMethod.PC)  # no dedup
    shards = _shard_by_user(trace, 4)
    assert len(shards) == 4
    from repro.trace.replay import _replay_records
    parts = [_replay_records(shard, profile, seed=7, collect_candidates=False)[0]
             for shard in shards]
    merged = ReplayReport.merge(parts)
    whole = replay_trace(trace, profile, seed=7)
    assert merged.traffic_bytes == whole.traffic_bytes
    assert merged.data_update_bytes == whole.data_update_bytes
    assert merged.per_user_traffic == whole.per_user_traffic


def test_shard_by_user_is_a_partition(trace):
    shards = _shard_by_user(trace, 5)
    users_per_shard = [set(record.user for _, record in shard)
                       for shard in shards]
    for i, left in enumerate(users_per_shard):
        for right in users_per_shard[i + 1:]:
            assert not (left & right)
    total = sum(len(shard) for shard in shards)
    assert total == len(trace)
    indices = sorted(index for shard in shards for index, _ in shard)
    assert indices == list(range(len(trace)))


# ---------------------------------------------------------------------------
# streaming shard generation
# ---------------------------------------------------------------------------

def _record_key(record):
    return record.path


def _records_equal(a, b):
    return (a.user == b.user and a.service == b.service
            and a.size == b.size and a.compressed_size == b.compressed_size
            and a.created_at == b.created_at and a.modified_at == b.modified_at
            and a.modify_count == b.modify_count
            and a.content_id == b.content_id
            and np.array_equal(a.segments, b.segments))


@pytest.mark.parametrize("shard_users", [1, 3, 8])
def test_iter_trace_shards_matches_generate_trace(shard_users):
    whole = generate_trace(scale=0.015, seed=21)
    shards = list(iter_trace_shards(scale=0.015, seed=21,
                                    shard_users=shard_users))
    merged = [record for shard in shards for record in shard]
    assert len(merged) == len(whole)
    for a, b in zip(sorted(whole, key=_record_key),
                    sorted(merged, key=_record_key)):
        assert _records_equal(a, b), a.path


def test_iter_trace_shards_user_groups_are_disjoint():
    shards = list(iter_trace_shards(scale=0.015, seed=21, shard_users=4))
    seen = set()
    for shard in shards:
        users = set(record.user for record in shard)
        assert len(users) <= 4
        assert not (users & seen)
        seen |= users
        services = set(record.service for record in shard)
        assert len(services) == 1  # groups never straddle services


def test_iter_trace_shards_rejects_bad_group_size():
    with pytest.raises(ValueError):
        next(iter_trace_shards(scale=0.01, seed=1, shard_users=0))


def test_sharded_generation_feeds_parallel_replay():
    """End-to-end at-scale workflow: generate shard-by-shard, replay the
    concatenation in parallel, match the monolithic sequential result."""
    whole = generate_trace(scale=0.015, seed=33)
    assembled = Trace(records=[record
                               for shard in iter_trace_shards(
                                   scale=0.015, seed=33, shard_users=6)
                               for record in shard])
    profile = service_profile("UbuntuOne", AccessMethod.PC)
    a = replay_trace(whole, profile, seed=0)
    b = replay_trace_parallel(assembled, profile, workers=4, seed=0)
    # Parallel parity holds on the shard-assembled ordering too.
    assert canonical(b) == canonical(replay_trace(assembled, profile, seed=0))
    # Full-file dedup totals are order-invariant (every duplicate is an
    # exact copy, so *which* occurrence ships doesn't change the sum) even
    # though per-record modification draws are index-keyed.
    assert b.file_count == a.file_count
    assert b.saved_by_dedup == a.saved_by_dedup


# ---------------------------------------------------------------------------
# persistent ReplayPool: reuse, reentrancy, streaming construction
# ---------------------------------------------------------------------------

def test_replay_pool_is_reused_across_profiles(trace):
    """One fork, many profiles — the replay_all shape.  Every profile's
    result through the shared pool must match its own sequential run."""
    from repro.trace import ReplayPool
    with ReplayPool(trace, workers=4) as pool:
        assert pool.record_count == len(trace)
        for service in SERVICES:
            profile = service_profile(service, AccessMethod.PC)
            assert canonical(pool.replay(profile, seed=7)) \
                == canonical(replay_trace(trace, profile, seed=7))


def test_replay_all_pool_reuse_matches_sequential(trace):
    from repro.trace import replay_all
    parallel = replay_all(trace, seed=7, workers=4)
    sequential = replay_all(trace, seed=7, workers=1)
    assert [canonical(r) for r in parallel] \
        == [canonical(r) for r in sequential]


def test_replay_all_accepts_external_pool(trace):
    from repro.trace import ReplayPool, replay_all
    with ReplayPool(trace, workers=2) as pool:
        via_pool = replay_all(seed=7, pool=pool)
        # The caller keeps ownership: the pool must still be usable.
        profile = service_profile("Dropbox", AccessMethod.PC)
        assert canonical(pool.replay(profile, seed=7)) \
            == canonical(replay_trace(trace, profile, seed=7))
    assert [canonical(r) for r in via_pool] \
        == [canonical(r) for r in replay_all(trace, seed=7, workers=1)]


def test_closed_pool_refuses_to_replay(trace):
    from repro.trace import ReplayPool
    pool = ReplayPool(trace, workers=2)
    pool.close()
    pool.close()      # idempotent
    with pytest.raises(RuntimeError):
        pool.replay(service_profile("Dropbox", AccessMethod.PC))


def test_two_pools_coexist_without_clobbering(trace):
    """Regression for the _FORK_STATE module global: two live pools used
    to share (and clobber) one fork-state slot.  Interleaved replays
    through two pools must both stay byte-identical to sequential."""
    from repro.trace import ReplayPool
    cross = service_profile("UbuntuOne", AccessMethod.PC)
    plain = service_profile("Dropbox", AccessMethod.PC)
    with ReplayPool(trace, workers=2) as a, ReplayPool(trace, workers=4) as b:
        for _ in range(2):
            assert canonical(a.replay(cross, seed=3)) \
                == canonical(replay_trace(trace, cross, seed=3))
            assert canonical(b.replay(plain, seed=3)) \
                == canonical(replay_trace(trace, plain, seed=3))
            assert canonical(b.replay(cross, seed=3)) \
                == canonical(replay_trace(trace, cross, seed=3))


def test_parallel_replay_is_reentrant_across_threads(trace):
    """Concurrent replay_trace_parallel calls from different threads (each
    forking its own one-shot pool) must not interfere — the second
    _FORK_STATE regression shape."""
    from concurrent.futures import ThreadPoolExecutor
    profiles = [service_profile("UbuntuOne", AccessMethod.PC),
                service_profile("Dropbox", AccessMethod.PC)]
    expected = {p.name: canonical(replay_trace(trace, p, seed=5))
                for p in profiles}
    jobs = profiles * 3
    with ThreadPoolExecutor(max_workers=4) as executor:
        results = list(executor.map(
            lambda p: (p.name,
                       canonical(replay_trace_parallel(trace, p, workers=2,
                                                       seed=5))),
            jobs))
    assert len(results) == len(jobs)
    for name, result in results:
        assert result == expected[name]


def test_from_records_streams_byte_identical(trace):
    """ReplayPool.from_records over a record stream equals replay of the
    materialised trace: the parent never needs the full record list."""
    from repro.trace import ReplayPool
    for workers in (1, 3):
        with ReplayPool.from_records(iter(trace.records),
                                     workers=workers) as pool:
            assert pool.record_count == len(trace)
            for service in ("UbuntuOne", "GoogleDrive"):
                profile = service_profile(service, AccessMethod.PC)
                assert canonical(pool.replay(profile, seed=7)) \
                    == canonical(replay_trace(trace, profile, seed=7))


def test_from_records_generator_stream_parity():
    """End-to-end streaming: iter_trace_records feeds the pool directly
    and matches the materialised generate_trace replay byte for byte."""
    from repro.trace import ReplayPool, iter_trace_records
    whole = generate_trace(scale=0.01, seed=11)
    profile = service_profile("UbuntuOne", AccessMethod.PC)
    with ReplayPool.from_records(iter_trace_records(scale=0.01, seed=11),
                                 workers=4) as pool:
        assert canonical(pool.replay(profile, seed=2)) \
            == canonical(replay_trace(whole, profile, seed=2))


def test_from_shards_matches_assembled_order():
    from repro.trace import ReplayPool
    assembled = Trace(records=[record
                               for shard in iter_trace_shards(
                                   scale=0.01, seed=11, shard_users=3)
                               for record in shard])
    profile = service_profile("UbuntuOne", AccessMethod.PC)
    with ReplayPool.from_shards(iter_trace_shards(scale=0.01, seed=11,
                                                  shard_users=3),
                                workers=4) as pool:
        assert canonical(pool.replay(profile, seed=2)) \
            == canonical(replay_trace(assembled, profile, seed=2))


# ---------------------------------------------------------------------------
# integer-exact dedup accounting (the >2**53 regression)
# ---------------------------------------------------------------------------

def test_dedup_accounting_is_integer_exact_above_2_53():
    """Partial block dedup on a file whose wire exceeds 2**53: the ledger
    must hold the exact integer quotient, not a float-rounded one.

    The retired expression ``int(wire * shipped / total_len)`` computed
    the quotient as a float, which above 2**53 cannot represent every
    integer — this pins the exact value and proves the float form would
    have differed (i.e. the test actually guards the regression).
    """
    from repro.trace.replay import _wire_payload
    size = (1 << 54) + 12_345     # wire > 2**53 by construction
    base = service_profile("UbuntuOne", AccessMethod.PC)
    profile = replace(base, dedup=DedupConfig(
        granularity=DedupGranularity.BLOCK, scope=DedupScope.CROSS_USER,
        block_size=UNIT_SIZE))
    # u0 ships blocks {1,2,3}; u1's first aligned block duplicates u0's,
    # so u1 ships 2 of its 3 equal-length blocks.
    trace = Trace(records=[
        _record("u0", 0, [1, 2, 3], size, created_at=0.0),
        _record("u1", 1, [1, 4, 5], size, created_at=1.0),
    ])
    wire = _wire_payload(profile, size, size)
    assert wire > 2 ** 53
    shipped, total_len = 2 * UNIT_SIZE, 3 * UNIT_SIZE
    expected_saved = wire - wire * shipped // total_len
    # The float quotient is already wrong at this magnitude — the exact
    # check below would not have held under the old expression.
    assert int(wire * shipped / total_len) != wire * shipped // total_len
    sequential = replay_trace(trace, profile, seed=0)
    assert sequential.saved_by_dedup == expected_saved
    # Phase 2 settles u1's lost block with the same integer expression.
    for workers in (1, 2):
        parallel = replay_trace_parallel(trace, profile, workers=workers,
                                         seed=0)
        assert canonical(parallel) == canonical(sequential)


def test_zero_size_records_under_cross_user_dedup_parallel():
    """Size-0 records have no dedup units (total_len == 0): the explicit
    empty-units branch ships the wire unchanged, emits no candidates, and
    the parallel protocol agrees at every worker count."""
    base = service_profile("UbuntuOne", AccessMethod.PC)
    for granularity in (DedupGranularity.FULL_FILE, DedupGranularity.BLOCK):
        profile = replace(base, dedup=DedupConfig(
            granularity=granularity, scope=DedupScope.CROSS_USER,
            block_size=UNIT_SIZE))
        trace = Trace(records=[
            _record("u0", 0, [], 0, created_at=0.0),
            _record("u1", 1, [], 0, created_at=1.0),   # identical empty key
            _record("u0", 2, [7, 8], 2 * UNIT_SIZE, created_at=2.0),
            _record("u1", 3, [7, 8], 2 * UNIT_SIZE, created_at=3.0),
        ])
        sequential = replay_trace(trace, profile, seed=0)
        # Zero-size records save nothing; the real duplicate still does.
        assert sequential.saved_by_dedup > 0
        assert sequential.traffic_bytes > 0
        for workers in (2, 4):
            parallel = replay_trace_parallel(trace, profile,
                                             workers=workers, seed=0)
            assert canonical(parallel) == canonical(sequential)


# ---------------------------------------------------------------------------
# shard assignment determinism
# ---------------------------------------------------------------------------

def test_shard_by_user_ties_by_first_appearance():
    """Equal-count users must be placed in first-appearance order (the
    documented tie-break), so shard contents are a pure function of the
    trace and the shard count."""
    records = []
    index = 0
    for user in ("alice", "bob", "carol"):
        for _ in range(2):
            records.append(_record(user, index, [index], UNIT_SIZE,
                                   created_at=float(index)))
            index += 1
    shards = _shard_by_user(Trace(records=records), 2)
    # Greedy heaviest-first with a stable sort: alice -> shard 0,
    # bob -> shard 1, carol ties at load 2/2 -> lowest index, shard 0.
    assert [sorted({r.user for _, r in shard}) for shard in shards] \
        == [["alice", "carol"], ["bob"]]


# ---------------------------------------------------------------------------
# phase-2 short-circuit and the winner-table transports
# ---------------------------------------------------------------------------

def _single_shard_unit_trace():
    """Plenty of dedup, zero contention: every duplicate is within one
    user, so no unit has candidates in more than one shard and phase 2
    must short-circuit entirely."""
    records = []
    index = 0
    for user in ("u0", "u1", "u2"):
        base_id = 100 * (int(user[1]) + 1)
        for _ in range(4):
            records.append(_record(user, index, [base_id, base_id + 1],
                                   2 * UNIT_SIZE, created_at=float(index)))
            index += 1
    return Trace(records=records)


def test_phase2_short_circuit_parity_across_cross_user_profiles():
    from repro.client import all_profiles
    trace = _single_shard_unit_trace()
    cross_profiles = [
        profile
        for access in (AccessMethod.PC, AccessMethod.MOBILE)
        for profile in all_profiles(access)
        if profile.dedup.enabled
        and profile.dedup.scope is DedupScope.CROSS_USER]
    assert cross_profiles, "registry lost its CROSS_USER profiles"
    for profile in cross_profiles:
        sequential = replay_trace(trace, profile, seed=0)
        assert sequential.saved_by_dedup > 0   # dedup genuinely fired
        for workers in (2, 3, 8):
            parallel = replay_trace_parallel(trace, profile,
                                             workers=workers, seed=0)
            assert canonical(parallel) == canonical(sequential), \
                (profile.name, workers)


def test_contested_winners_skips_single_shard_units():
    from repro.trace.replay import _contested_winners, _unit_digest
    from array import array
    d = [_unit_digest(bytes([n]) * 4) for n in range(4)]

    def summary(pairs):
        return (b"".join(digest for digest, _ in pairs),
                array("q", [idx for _, idx in pairs]).tobytes())

    # Disjoint digests across shards: nothing contested, nobody settles.
    winners, losers = _contested_winners(
        [summary([(d[0], 0)]), summary([(d[1], 5)]), None])
    assert winners == {} and losers == []
    # d[2] contested across shards 0 and 2: smallest index wins, only the
    # losing shard is listed.
    winners, losers = _contested_winners(
        [summary([(d[2], 3), (d[0], 0)]), None, summary([(d[2], 9)])])
    assert winners == {d[2]: 3}
    assert losers == [2]


def test_winner_table_round_trips_via_both_transports():
    from repro.trace.replay import (_load_winner_table, _pack_winner_table,
                                    _publish_winner_table, _unit_digest)
    winners = {_unit_digest(bytes([n]) * 8): n * 17 for n in range(5)}
    descriptor, cleanup = _publish_winner_table(winners)
    try:
        assert _load_winner_table(descriptor) == winners
    finally:
        cleanup()
    blob, indices = _pack_winner_table(winners)
    assert _load_winner_table(("inline", blob, indices)) == winners


def test_settle_credits_conserve_bytes_under_audit():
    """replay_audited proves the two-phase settlement conserves bytes:
    traffic lost == dedup saving gained, user by user."""
    from repro.trace import ReplayPool
    trace = _cross_user_duplicate_trace()
    base = service_profile("UbuntuOne", AccessMethod.PC)
    profile = replace(base, dedup=DedupConfig(
        granularity=DedupGranularity.BLOCK, scope=DedupScope.CROSS_USER,
        block_size=2 * UNIT_SIZE))
    with ReplayPool(trace, workers=4) as pool:
        report = pool.replay_audited(profile, seed=0)
    assert canonical(report) == canonical(replay_trace(trace, profile,
                                                       seed=0))

"""Parallel sharded replay: byte-identity with the sequential estimator,
exact merge semantics, the two-phase CROSS_USER dedup protocol, and the
streaming shard generator."""

import json
from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.client import AccessMethod, SERVICES, service_profile
from repro.cloud.dedup import DedupConfig, DedupGranularity, DedupScope
from repro.trace import (
    FileRecord,
    ReplayReport,
    Trace,
    generate_trace,
    iter_trace_shards,
    replay_trace,
    replay_trace_parallel,
)
from repro.trace.replay import _shard_by_user
from repro.trace.schema import UNIT_SIZE
from repro.units import KB


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.02, seed=9)


def canonical(report):
    """Byte-exact serialisation including per-user dict insertion order."""
    return json.dumps(asdict(report))


# ---------------------------------------------------------------------------
# byte-identity property: every profile × both scopes × worker counts
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("service", SERVICES)
@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_parallel_matches_sequential_byte_for_byte(trace, service, workers):
    profile = service_profile(service, AccessMethod.PC)
    sequential = replay_trace(trace, profile, seed=7)
    parallel = replay_trace_parallel(trace, profile, workers=workers, seed=7)
    assert canonical(parallel) == canonical(sequential)
    assert repr(parallel) == repr(sequential)


def test_parallel_respects_seed(trace):
    profile = service_profile("Dropbox", AccessMethod.PC)
    a = replay_trace_parallel(trace, profile, workers=4, seed=1)
    b = replay_trace_parallel(trace, profile, workers=4, seed=2)
    assert a.traffic_bytes != b.traffic_bytes


def test_parallel_empty_trace():
    profile = service_profile("Box", AccessMethod.PC)
    report = replay_trace_parallel(Trace(), profile, workers=4)
    assert report.file_count == 0
    assert report.traffic_bytes == 0


def test_parallel_rejects_bad_worker_count(trace):
    profile = service_profile("Box", AccessMethod.PC)
    with pytest.raises(ValueError):
        replay_trace_parallel(trace, profile, workers=0)


def test_more_workers_than_users():
    """A tiny trace with a single user still replays at high worker counts."""
    trace = generate_trace(scale=0.001, seed=3)
    profile = service_profile("UbuntuOne", AccessMethod.PC)
    sequential = replay_trace(trace, profile, seed=0)
    parallel = replay_trace_parallel(trace, profile, workers=8, seed=0)
    assert canonical(parallel) == canonical(sequential)


# ---------------------------------------------------------------------------
# adversarial CROSS_USER two-phase protocol
# ---------------------------------------------------------------------------

def _record(user, index, segments, size, created_at):
    return FileRecord(
        user=user, service="X", path=f"{user}/f{index:04d}.bin",
        size=size, compressed_size=size,
        created_at=created_at, modified_at=created_at, modify_count=0,
        segments=np.asarray(segments, dtype=np.int64), content_id=index,
    )


def _cross_user_duplicate_trace():
    """Duplicates interleaved so first occurrences alternate across users:

    every user shares content A and B with every other user, ordered so a
    per-user shard always sees some units first that another shard saw
    earlier — the worst case for first-occurrence resolution.
    """
    size = 3 * UNIT_SIZE + 5 * KB     # 3 full units + a short tail block
    a = [1, 2, 3, 4]
    b = [9, 2, 3, 4]                  # shares a suffix of A's units
    records = []
    index = 0
    for round_number in range(6):
        for user in ("u0", "u1", "u2", "u3"):
            content = a if (round_number + int(user[1])) % 2 == 0 else b
            records.append(_record(user, index, content, size,
                                   created_at=float(index)))
            index += 1
    return Trace(records=records)


@pytest.mark.parametrize("granularity", [DedupGranularity.FULL_FILE,
                                         DedupGranularity.BLOCK])
@pytest.mark.parametrize("workers", [2, 3, 4, 8])
def test_two_phase_cross_user_dedup_is_exact(granularity, workers):
    trace = _cross_user_duplicate_trace()
    base = service_profile("UbuntuOne", AccessMethod.PC)
    profile = replace(base, dedup=DedupConfig(
        granularity=granularity, scope=DedupScope.CROSS_USER,
        block_size=2 * UNIT_SIZE))
    sequential = replay_trace(trace, profile, seed=0)
    parallel = replay_trace_parallel(trace, profile, workers=workers, seed=0)
    assert canonical(parallel) == canonical(sequential)
    # Sanity: the trace genuinely exercises cross-user dedup.
    assert sequential.saved_by_dedup > 0


def test_same_user_scope_sees_no_cross_user_savings():
    """Control for the previous test: with SAME_USER scope each user pays
    for its own first copy, so dedup savings shrink — and parity holds."""
    trace = _cross_user_duplicate_trace()
    base = service_profile("UbuntuOne", AccessMethod.PC)
    cross = replace(base, dedup=DedupConfig(
        granularity=DedupGranularity.FULL_FILE, scope=DedupScope.CROSS_USER))
    same = replace(base, dedup=DedupConfig(
        granularity=DedupGranularity.FULL_FILE, scope=DedupScope.SAME_USER))
    cross_report = replay_trace(trace, cross, seed=0)
    same_report = replay_trace(trace, same, seed=0)
    assert cross_report.saved_by_dedup > same_report.saved_by_dedup
    for profile, sequential in ((cross, cross_report), (same, same_report)):
        parallel = replay_trace_parallel(trace, profile, workers=4, seed=0)
        assert canonical(parallel) == canonical(sequential)


# ---------------------------------------------------------------------------
# ReplayReport.merge
# ---------------------------------------------------------------------------

def test_merge_adds_counters_and_dicts():
    a = ReplayReport(service="X", access="pc", file_count=2,
                     traffic_bytes=100, data_update_bytes=50,
                     per_user_traffic={"u0": 60, "u1": 40},
                     per_user_modification_traffic={"u0": 10})
    b = ReplayReport(service="X", access="pc", file_count=3,
                     traffic_bytes=30, data_update_bytes=20,
                     per_user_traffic={"u1": 20, "u2": 10},
                     per_user_modification_traffic={"u2": 5})
    merged = ReplayReport.merge([a, b])
    assert merged.file_count == 5
    assert merged.traffic_bytes == 130
    assert merged.data_update_bytes == 70
    assert merged.per_user_traffic == {"u0": 60, "u1": 60, "u2": 10}
    assert merged.per_user_modification_traffic == {"u0": 10, "u2": 5}


def test_merge_rejects_empty_and_mixed_profiles():
    with pytest.raises(ValueError):
        ReplayReport.merge([])
    with pytest.raises(ValueError):
        ReplayReport.merge([ReplayReport(service="X", access="pc"),
                            ReplayReport(service="Y", access="pc")])


def test_merge_of_user_shards_equals_whole(trace):
    """For a user-disjoint partition without cross-shard dedup coupling,
    merging shard reports reproduces the whole-trace report exactly."""
    profile = service_profile("GoogleDrive", AccessMethod.PC)  # no dedup
    shards = _shard_by_user(trace, 4)
    assert len(shards) == 4
    from repro.trace.replay import _replay_records
    parts = [_replay_records(shard, profile, seed=7, collect_candidates=False)[0]
             for shard in shards]
    merged = ReplayReport.merge(parts)
    whole = replay_trace(trace, profile, seed=7)
    assert merged.traffic_bytes == whole.traffic_bytes
    assert merged.data_update_bytes == whole.data_update_bytes
    assert merged.per_user_traffic == whole.per_user_traffic


def test_shard_by_user_is_a_partition(trace):
    shards = _shard_by_user(trace, 5)
    users_per_shard = [set(record.user for _, record in shard)
                       for shard in shards]
    for i, left in enumerate(users_per_shard):
        for right in users_per_shard[i + 1:]:
            assert not (left & right)
    total = sum(len(shard) for shard in shards)
    assert total == len(trace)
    indices = sorted(index for shard in shards for index, _ in shard)
    assert indices == list(range(len(trace)))


# ---------------------------------------------------------------------------
# streaming shard generation
# ---------------------------------------------------------------------------

def _record_key(record):
    return record.path


def _records_equal(a, b):
    return (a.user == b.user and a.service == b.service
            and a.size == b.size and a.compressed_size == b.compressed_size
            and a.created_at == b.created_at and a.modified_at == b.modified_at
            and a.modify_count == b.modify_count
            and a.content_id == b.content_id
            and np.array_equal(a.segments, b.segments))


@pytest.mark.parametrize("shard_users", [1, 3, 8])
def test_iter_trace_shards_matches_generate_trace(shard_users):
    whole = generate_trace(scale=0.015, seed=21)
    shards = list(iter_trace_shards(scale=0.015, seed=21,
                                    shard_users=shard_users))
    merged = [record for shard in shards for record in shard]
    assert len(merged) == len(whole)
    for a, b in zip(sorted(whole, key=_record_key),
                    sorted(merged, key=_record_key)):
        assert _records_equal(a, b), a.path


def test_iter_trace_shards_user_groups_are_disjoint():
    shards = list(iter_trace_shards(scale=0.015, seed=21, shard_users=4))
    seen = set()
    for shard in shards:
        users = set(record.user for record in shard)
        assert len(users) <= 4
        assert not (users & seen)
        seen |= users
        services = set(record.service for record in shard)
        assert len(services) == 1  # groups never straddle services


def test_iter_trace_shards_rejects_bad_group_size():
    with pytest.raises(ValueError):
        next(iter_trace_shards(scale=0.01, seed=1, shard_users=0))


def test_sharded_generation_feeds_parallel_replay():
    """End-to-end at-scale workflow: generate shard-by-shard, replay the
    concatenation in parallel, match the monolithic sequential result."""
    whole = generate_trace(scale=0.015, seed=33)
    assembled = Trace(records=[record
                               for shard in iter_trace_shards(
                                   scale=0.015, seed=33, shard_users=6)
                               for record in shard])
    profile = service_profile("UbuntuOne", AccessMethod.PC)
    a = replay_trace(whole, profile, seed=0)
    b = replay_trace_parallel(assembled, profile, workers=4, seed=0)
    # Parallel parity holds on the shard-assembled ordering too.
    assert canonical(b) == canonical(replay_trace(assembled, profile, seed=0))
    # Full-file dedup totals are order-invariant (every duplicate is an
    # exact copy, so *which* occurrence ships doesn't change the sum) even
    # though per-record modification draws are index-keyed.
    assert b.file_count == a.file_count
    assert b.saved_by_dedup == a.saved_by_dedup

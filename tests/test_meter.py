"""Unit tests for the traffic meter (the simulated Wireshark)."""

import pytest

from repro.simnet import Direction, TrafficMeter


def test_empty_meter_is_zero():
    meter = TrafficMeter()
    assert meter.total_bytes == 0
    assert meter.payload_bytes == 0
    assert meter.overhead_bytes == 0


def test_record_accumulates_by_direction():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, payload=100, overhead=20)
    meter.record(1.0, Direction.DOWN, payload=50, overhead=5)
    assert meter.up.payload == 100
    assert meter.up.overhead == 20
    assert meter.down.payload == 50
    assert meter.down.overhead == 5
    assert meter.total_bytes == 175


def test_negative_bytes_rejected():
    meter = TrafficMeter()
    with pytest.raises(ValueError):
        meter.record(0.0, Direction.UP, payload=-1)
    with pytest.raises(ValueError):
        meter.record(0.0, Direction.UP, payload=0, overhead=-1)


def test_snapshot_diff_isolates_interval():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, payload=10, overhead=1)
    snap = meter.snapshot()
    meter.record(1.0, Direction.UP, payload=7, overhead=2)
    meter.record(1.0, Direction.DOWN, payload=3, overhead=4)
    delta = meter.since(snap)
    assert delta.up_payload == 7
    assert delta.up_overhead == 2
    assert delta.down_total == 7
    assert delta.total == 16
    assert delta.record_count == 2


def test_records_since_returns_new_records_only():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, 1, 0, kind="old")
    snap = meter.snapshot()
    meter.record(1.0, Direction.UP, 2, 0, kind="new")
    kinds = [r.kind for r in meter.records_since(snap)]
    assert kinds == ["new"]


def test_records_since_is_an_immutable_copy():
    """Regression: records_since used to return a live list slice, so
    records metered *after* the snapshot leaked into a previously captured
    view (and callers could mutate the meter's ledger through it)."""
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, 1, 0, kind="old")
    snap = meter.snapshot()
    meter.record(1.0, Direction.UP, 2, 0, kind="new")
    view = meter.records_since(snap)
    meter.record(2.0, Direction.UP, 3, 0, kind="late")
    assert [r.kind for r in view] == ["new"]          # no leak
    assert [r.kind for r in view] == ["new"]          # re-iterable
    assert isinstance(view, tuple)


def test_bytes_by_kind_groups_totals():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, 10, 2, kind="upload")
    meter.record(0.0, Direction.DOWN, 0, 5, kind="upload")
    meter.record(0.0, Direction.DOWN, 0, 7, kind="notify")
    groups = meter.bytes_by_kind()
    assert groups == {"upload": 17, "notify": 7}


def test_totals_by_kind_decomposes_payload_overhead_wasted():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, 10, 2, kind="upload")
    meter.record(0.0, Direction.DOWN, 0, 5, kind="upload", wasted=3)
    meter.record(0.0, Direction.DOWN, 0, 7, kind="notify")
    meter.record(1.0, Direction.UP, 0, 40, kind="restart", wasted=40)
    kinds = meter.totals_by_kind()
    assert set(kinds) == {"upload", "notify", "restart"}
    assert kinds["upload"].payload == 10
    assert kinds["upload"].overhead == 7
    assert kinds["upload"].wasted == 3
    assert kinds["restart"].wasted == kinds["restart"].total == 40
    # totals by kind must match bytes_by_kind and the meter-wide counters
    assert {k: t.total for k, t in kinds.items()} == meter.bytes_by_kind()
    assert sum(t.payload for t in kinds.values()) == meter.payload_bytes
    assert sum(t.overhead for t in kinds.values()) == meter.overhead_bytes


def test_totals_by_kind_wasted_sums_to_wasted_bytes():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, 100, 20, kind="upload", wasted=30)
    meter.record(1.0, Direction.DOWN, 0, 50, kind="rejected", wasted=50)
    meter.record(2.0, Direction.UP, 5, 5, kind="poll")
    kinds = meter.totals_by_kind()
    assert sum(t.wasted for t in kinds.values()) == meter.wasted_bytes == 80
    for totals in kinds.values():
        assert totals.wasted <= totals.total


def test_reset_clears_everything():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, 10, 2)
    meter.reset()
    assert meter.total_bytes == 0
    assert meter.records == []


def test_record_total_property():
    meter = TrafficMeter()
    record = meter.record(0.0, Direction.UP, payload=3, overhead=4)
    assert record.total == 7


def test_wasted_bytes_are_a_decomposition():
    """Wasted bytes label a subset of payload+overhead, never add to it."""
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, payload=100, overhead=20, wasted=30)
    meter.record(1.0, Direction.DOWN, payload=0, overhead=50, wasted=50)
    assert meter.total_bytes == 170          # wasted does not inflate totals
    assert meter.wasted_bytes == 80
    assert meter.useful_bytes == 90
    assert meter.up.wasted == 30
    assert meter.down.useful == 0


def test_wasted_cannot_exceed_record_total():
    meter = TrafficMeter()
    with pytest.raises(ValueError):
        meter.record(0.0, Direction.UP, payload=10, overhead=5, wasted=16)
    with pytest.raises(ValueError):
        meter.record(0.0, Direction.UP, payload=10, wasted=-1)


def test_snapshot_diff_carries_wasted():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, payload=10, overhead=2, wasted=4)
    snap = meter.snapshot()
    meter.record(1.0, Direction.UP, payload=7, overhead=3, wasted=10)
    meter.record(1.0, Direction.DOWN, payload=0, overhead=6, wasted=6)
    delta = meter.since(snap)
    assert delta.up_wasted == 10
    assert delta.down_wasted == 6
    assert delta.wasted == 16
    assert delta.useful == delta.total - delta.wasted


def test_reset_clears_wasted():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, payload=10, overhead=2, wasted=4)
    meter.reset()
    assert meter.wasted_bytes == 0

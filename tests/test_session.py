"""Tests for the SyncSession facade and its measurement surface."""

import pytest

from repro.client import AccessMethod, M2, SyncSession, service_profile
from repro.content import random_content, text_content
from repro.simnet import LinkSpec, bj_link, mn_link
from repro.units import KB, MB, Mbps


def test_accepts_service_name_or_profile():
    by_name = SyncSession("Dropbox", AccessMethod.PC)
    by_profile = SyncSession(service_profile("Dropbox", AccessMethod.PC))
    assert by_name.profile is by_profile.profile


def test_string_access_method():
    session = SyncSession("Box", "mobile")
    assert session.profile.access is AccessMethod.MOBILE


def test_default_link_is_mn():
    session = SyncSession("Box")
    assert session.link.spec.up_bw == 20 * Mbps


def test_server_configured_from_profile():
    dropbox = SyncSession("Dropbox")
    assert dropbox.server.dedup_config.enabled
    assert dropbox.server.storage_chunk_size == 4 * MB
    box = SyncSession("Box")
    assert not box.server.dedup_config.enabled
    assert box.server.storage_chunk_size is None


def test_convenience_creators():
    session = SyncSession("Box")
    session.create_random_file("r.bin", 10 * KB, seed=1)
    session.create_text_file("t.txt", 10 * KB, seed=2)
    assert session.folder.get("r.bin").size == 10 * KB
    assert session.folder.get("t.txt").size == 10 * KB


def test_reset_meter_clears_traffic_and_updates():
    session = SyncSession("Box")
    session.create_random_file("f.bin", 10 * KB)
    session.run_until_idle()
    assert session.total_traffic > 0
    session.reset_meter()
    assert session.total_traffic == 0
    assert session.data_update_bytes == 0


def test_advance_moves_virtual_time_without_requiring_events():
    session = SyncSession("Box")
    session.advance(100.0)
    assert session.sim.now == 100.0


def test_netem_attached_to_session_link():
    session = SyncSession("Box", link_spec=mn_link())
    session.netem.set_bandwidth(up_bw=2 * Mbps)
    assert session.link.spec.up_bw == 2 * Mbps


def test_tue_with_explicit_denominator():
    session = SyncSession("Box")
    session.create_random_file("f.bin", 100 * KB)
    session.run_until_idle()
    assert session.tue(100 * KB) == session.total_traffic / (100 * KB)


def test_machine_affects_timing_not_bytes():
    fast = SyncSession("Box")
    slow = SyncSession("Box", machine=M2)
    for session in (fast, slow):
        session.create_random_file("f.bin", 1 * MB, seed=1)
        session.run_until_idle()
    assert fast.total_traffic == slow.total_traffic
    assert slow.sim.now > fast.sim.now


def test_bj_session_takes_longer_same_bytes():
    near = SyncSession("Box", link_spec=mn_link())
    far = SyncSession("Box", link_spec=bj_link())
    for session in (near, far):
        session.create_random_file("f.bin", 1 * MB, seed=1)
        session.run_until_idle()
    assert near.total_traffic == far.total_traffic
    assert far.sim.now > near.sim.now

"""Tests for the extended file operations: truncate, insert, rename."""

import pytest

from repro.client import AccessMethod, SyncSession
from repro.content import Content, random_content
from repro.fsim import FileOp, MissingFileError, SyncFolder
from repro.simnet import Simulator
from repro.units import KB, MB


def make_folder():
    return SyncFolder(Simulator())


# ---------------------------------------------------------------------------
# folder-level semantics
# ---------------------------------------------------------------------------

def test_truncate_semantics():
    folder = make_folder()
    folder.create("a", random_content(1000, seed=1))
    event = folder.truncate("a", 400)
    assert folder.get("a").size == 400
    assert event.update_bytes == 600
    with pytest.raises(ValueError):
        folder.truncate("a", 401)
    with pytest.raises(ValueError):
        folder.truncate("a", -1)


def test_insert_semantics():
    folder = make_folder()
    folder.create("a", Content(b"helloworld"))
    event = folder.insert("a", 5, Content(b"-X-"))
    assert folder.get("a").data == b"hello-X-world"
    assert event.update_bytes == 3
    with pytest.raises(ValueError):
        folder.insert("a", 99, Content(b"y"))


def test_rename_semantics():
    folder = make_folder()
    content = random_content(100, seed=2)
    folder.create("old", content)
    event = folder.rename("old", "new")
    assert event.op is FileOp.RENAME
    assert event.old_path == "old"
    assert event.update_bytes == 0
    assert not folder.exists("old")
    assert folder.get("new") == content
    with pytest.raises(MissingFileError):
        folder.rename("old", "older")
    folder.create("other", random_content(1))
    with pytest.raises(FileExistsError):
        folder.rename("other", "new")


# ---------------------------------------------------------------------------
# end-to-end sync behaviour
# ---------------------------------------------------------------------------

def test_rename_is_metadata_only_on_the_wire():
    session = SyncSession("Box", AccessMethod.PC)
    session.create_file("a.bin", random_content(1 * MB, seed=1))
    session.run_until_idle()
    session.reset_meter()
    session.folder.rename("a.bin", "b.bin")
    session.run_until_idle()
    assert session.total_traffic < 20 * KB
    assert session.client.stats.renames_synced == 1
    assert session.server.download("user1", "b.bin") == \
        session.folder.get("b.bin").data
    # The old path is tombstoned, not duplicated.
    from repro.cloud import NotFound
    with pytest.raises(NotFound):
        session.server.download("user1", "a.bin")


def test_rename_then_modify_syncs_both():
    session = SyncSession("Dropbox", AccessMethod.PC)
    session.create_file("a.bin", random_content(256 * KB, seed=1))
    session.run_until_idle()
    session.reset_meter()
    session.folder.rename("a.bin", "b.bin")
    session.modify_random_byte("b.bin", seed=2)
    session.run_until_idle()
    assert session.server.download("user1", "b.bin") == \
        session.folder.get("b.bin").data
    # Rename stayed cheap and the modification went as a delta.
    assert session.client.stats.delta_syncs == 1
    assert session.total_traffic < 100 * KB


def test_rename_before_first_sync_uploads_under_new_name():
    session = SyncSession("GoogleDrive", AccessMethod.PC)  # 4.2 s defer
    session.create_file("tmp.bin", random_content(64 * KB, seed=1))
    session.folder.rename("tmp.bin", "final.bin")
    session.run_until_idle()
    assert session.server.download("user1", "final.bin") == \
        session.folder.get("final.bin").data
    from repro.cloud import NotFound
    with pytest.raises(NotFound):
        session.server.metadata.head("user1", "tmp.bin")


def test_insert_ships_delta_for_ids_client():
    session = SyncSession("Dropbox", AccessMethod.PC)
    session.create_file("a.bin", random_content(512 * KB, seed=1))
    session.run_until_idle()
    session.reset_meter()
    session.folder.insert("a.bin", 100 * KB, random_content(2 * KB, seed=2))
    session.run_until_idle()
    # rsync's rolling match re-finds the shifted suffix: only ~the insert
    # region (plus boundary blocks) crosses the wire.
    assert session.total_traffic < 120 * KB
    assert session.server.download("user1", "a.bin") == \
        session.folder.get("a.bin").data


def test_truncate_syncs_correctly():
    session = SyncSession("Dropbox", AccessMethod.PC)
    session.create_file("log.bin", random_content(512 * KB, seed=1))
    session.run_until_idle()
    session.folder.truncate("log.bin", 100 * KB)
    session.run_until_idle()
    assert session.server.download("user1", "log.bin") == \
        session.folder.get("log.bin").data
    assert session.server.metadata.head("user1", "log.bin").size == 100 * KB

"""Good/bad pairs for the whole-program rule families (REP030–REP053)."""

import textwrap

from repro.lint import KNOWN_IDS, PROJECT_RULES, lint_project


def _rules_fired(tmp_path, tree):
    for relative, source in tree.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    result = lint_project([str(tmp_path)], [], PROJECT_RULES,
                          known_ids=KNOWN_IDS)
    return sorted({f.rule for f in result.findings})


# -- REP030 fork discipline -------------------------------------------------

def test_rep030_fork_primitives_require_the_fork_lock(tmp_path):
    assert "REP030" in _rules_fired(tmp_path, {"repro/a.py": """\
        import multiprocessing

        def start(target):
            context = multiprocessing.get_context("fork")
            process = context.Process(target=target, daemon=True)
            process.start()
            return process
        """})


def test_rep030_quiet_under_fork_lock_and_for_attach_only_shm(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        import threading
        import multiprocessing
        from multiprocessing import shared_memory

        _fork_lock = threading.Lock()

        def start(target):
            context = multiprocessing.get_context("fork")
            with _fork_lock:
                process = context.Process(target=target, daemon=True)
                process.start()
            return process

        def attach(name):
            return shared_memory.SharedMemory(name=name)
        """}) == []


# -- REP031 shared-memory lifecycle -----------------------------------------

def test_rep031_created_segment_must_close_and_unlink(tmp_path):
    fired = _rules_fired(tmp_path, {"repro/a.py": """\
        import threading
        from multiprocessing import shared_memory

        _fork_lock = threading.Lock()

        def publish(blob):
            with _fork_lock:
                segment = shared_memory.SharedMemory(create=True,
                                                     size=len(blob))
            segment.close()
            return segment.name
        """})
    assert "REP031" in fired  # close() present, unlink() missing


def test_rep031_quiet_when_cleanup_closure_handles_both(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        import threading
        from multiprocessing import shared_memory

        _fork_lock = threading.Lock()

        def publish(blob):
            with _fork_lock:
                segment = shared_memory.SharedMemory(create=True,
                                                     size=len(blob))

            def cleanup():
                segment.close()
                with _fork_lock:
                    segment.unlink()

            return segment.name, cleanup
        """}) == []


# -- REP032 non-daemon spawns -----------------------------------------------

def test_rep032_non_daemon_thread_in_library_code(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        import threading

        def watch(fn):
            worker = threading.Thread(target=fn)
            worker.start()
        """}) == ["REP032"]


def test_rep032_quiet_for_daemon_kwarg_or_late_daemon_assignment(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        import threading

        def watch(fn):
            worker = threading.Thread(target=fn, daemon=True)
            worker.start()

        def watch_late(fn):
            worker = threading.Thread(target=fn)
            worker.daemon = True
            worker.start()
        """}) == []


# -- REP033 lock held across a forking call chain ---------------------------

def test_rep033_lock_across_transitive_fork(tmp_path):
    fired = _rules_fired(tmp_path, {
        "repro/pool.py": """\
            import os

            def spawn_worker():
                return os.fork()  # reprolint: disable=REP030 fixture fork
            """,
        "repro/driver.py": """\
            import threading
            from repro.pool import spawn_worker

            _lock = threading.Lock()

            def restart():
                with _lock:
                    pid = spawn_worker()
                return pid
            """,
    })
    assert "REP033" in fired


def test_rep033_quiet_when_the_lock_is_the_fork_lock(tmp_path):
    assert _rules_fired(tmp_path, {
        "repro/pool.py": """\
            import threading
            import os

            _fork_lock = threading.Lock()

            def spawn_worker():
                with _fork_lock:
                    return os.fork()
            """,
    }) == []


# -- REP034 global multiprocessing configuration ----------------------------

def test_rep034_set_start_method_and_bare_pool(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        import multiprocessing

        def configure():
            multiprocessing.set_start_method("fork")
            return multiprocessing.Pool(2)  # reprolint: disable=REP030 fixture
        """}) == ["REP034"]


# -- REP040/REP042/REP043 determinism taint ---------------------------------

def test_rep040_local_clock_taint_reaching_a_byte_counter(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        import time

        def leak(report):
            stamp = time.time()
            scaled = stamp * 2
            report.total_bytes = scaled
        """}) == ["REP040"]


def test_rep042_import_time_entropy_constant(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        import time

        _START = time.time()
        """}) == ["REP042"]


def test_rep043_tainted_span_stamp_and_rng_seed(tmp_path):
    fired = _rules_fired(tmp_path, {"repro/a.py": """\
        import random
        import time

        def emit(recorder, source):
            begin = time.time()
            recorder.record_span("connect", "c", source, begin, begin + 1)

        def draw():
            rng = random.Random(time.time_ns())
            return rng.random()
        """})
    assert "REP043" in fired


def test_taint_rules_quiet_on_deterministic_flows(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        SHARD_SIZE = 1 << 20

        def charge(report, payload):
            total_bytes = len(payload) * 2
            report.total_bytes = total_bytes
            return total_bytes
        """}) == []


# -- REP050 orphan invariants ------------------------------------------------

def test_rep050_quiet_when_the_invariant_is_called(tmp_path):
    assert _rules_fired(tmp_path, {
        "repro/audit.py": """\
            def verify_books(report):
                assert report.total >= 0
            """,
        "repro/driver.py": """\
            from repro.audit import verify_books

            def run(report):
                verify_books(report)
            """,
    }) == []


# -- REP051 span-kind resolution --------------------------------------------

def test_rep051_quiet_when_the_constant_resolves_into_span_kinds(tmp_path):
    assert _rules_fired(tmp_path, {
        "repro/kinds.py": 'connect_kind = "connect"\n',
        "repro/emit.py": """\
            from repro.kinds import connect_kind

            def emit(recorder, source):
                recorder.record_span(connect_kind, "c", source, 0, 1)
            """,
    }) == []


# -- REP052 CLI parity ------------------------------------------------------

def test_rep052_list_table_and_parser_must_agree(tmp_path):
    fired = _rules_fired(tmp_path, {"repro/cli.py": """\
        def cmd_list(_args):
            rows = [
                ["alpha", "does alpha"],
                ["ghost", "no such command"],
            ]
            return rows

        def cmd_alpha(args):
            return 0

        def cmd_beta(args):
            return 0

        def build_parser(sub):
            def add(name, fn):
                return sub.add_parser(name), fn
            add("list", cmd_list)
            add("alpha", cmd_alpha)
            add("beta", cmd_beta)
        """})
    assert fired == ["REP052"]


def test_rep052_quiet_when_in_sync(tmp_path):
    assert _rules_fired(tmp_path, {"repro/cli.py": """\
        def cmd_list(_args):
            rows = [
                ["alpha", "does alpha"],
            ]
            return rows

        def cmd_alpha(args):
            return 0

        def build_parser(sub):
            def add(name, fn):
                return sub.add_parser(name), fn
            add("list", cmd_list)
            add("alpha", cmd_alpha)
        """}) == []


# -- REP053 stats completeness ----------------------------------------------

def test_rep053_unwritten_stats_field(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        from dataclasses import dataclass

        @dataclass
        class ServerStats:
            commits: int = 0
            orphans: int = 0

        def bump(stats):
            stats.commits += 1
        """}) == ["REP053"]


def test_rep053_counts_kwarg_and_container_mutation_as_writes(tmp_path):
    assert _rules_fired(tmp_path, {"repro/a.py": """\
        from dataclasses import dataclass, field
        from typing import List

        @dataclass
        class ClientStats:
            commits: int = 0
            batch_sizes: List[int] = field(default_factory=list)

        def build():
            return ClientStats(commits=1)

        def observe(stats, batch):
            stats.batch_sizes.append(len(batch))
        """}) == []

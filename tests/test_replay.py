"""Tests for the macro trace replay, including validation against the
micro (packet-level) engine on a small trace."""

import numpy as np
import pytest

from repro.client import AccessMethod, SyncSession, service_profile
from repro.content import compressible_content, random_content
from repro.trace import FileRecord, Trace, generate_trace, replay_all, replay_trace
from repro.trace.schema import UNIT_SIZE
from repro.units import KB, MB


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scale=0.02, seed=9)


def test_replay_totals_positive_and_consistent(trace):
    report = replay_trace(trace, service_profile("Dropbox", AccessMethod.PC))
    assert report.file_count == len(trace)
    assert report.traffic_bytes > 0
    assert report.overhead_bytes < report.traffic_bytes
    assert report.upload_events >= report.file_count


def test_replay_is_deterministic(trace):
    a = replay_trace(trace, service_profile("Box", AccessMethod.PC), seed=3)
    b = replay_trace(trace, service_profile("Box", AccessMethod.PC), seed=3)
    assert a.traffic_bytes == b.traffic_bytes


def test_mechanism_attribution_matches_design_choices(trace):
    reports = {r.service: r for r in replay_all(trace)}
    # Services without a mechanism save nothing through it.
    for service in ("GoogleDrive", "OneDrive", "Box"):
        report = reports[service]
        assert report.saved_by_compression == 0
        assert report.saved_by_dedup == 0
        assert report.saved_by_bds == 0
        assert report.saved_by_ids == 0
    assert reports["Dropbox"].saved_by_compression > 0
    assert reports["Dropbox"].saved_by_dedup > 0
    assert reports["Dropbox"].saved_by_bds > 0
    assert reports["Dropbox"].saved_by_ids > 0
    assert reports["SugarSync"].saved_by_ids > 0
    assert reports["SugarSync"].saved_by_compression == 0
    assert reports["UbuntuOne"].saved_by_dedup > 0
    assert reports["UbuntuOne"].saved_by_ids == 0


def test_ids_services_win_the_trace(trace):
    """Modifications dominate trace traffic (84 % of files are modified),
    so the incremental-sync services must come out cheapest."""
    ordering = [r.service for r in replay_all(trace)]
    assert set(ordering[:2]) == {"Dropbox", "SugarSync"}


def test_replay_agrees_with_micro_engine_on_small_trace():
    """Cross-validation: build a tiny trace, replay it analytically, and
    run the identical workload through the packet-level engine; totals
    must agree within 40 % and orderings must match."""
    files = [
        ("a.bin", random_content(64 * KB, seed=1)),
        ("b.bin", compressible_content(128 * KB, 0.5, seed=2)),
        ("c.bin", random_content(16 * KB, seed=3)),
    ]

    records = []
    for index, (path, content) in enumerate(files):
        from repro.compress import winzip_reference_size
        units = max(1, -(-content.size // UNIT_SIZE))
        records.append(FileRecord(
            user="u", service="X", path=path, size=content.size,
            compressed_size=winzip_reference_size(content),
            created_at=index * 100.0, modified_at=index * 100.0,
            modify_count=0,
            segments=np.arange(index * 100, index * 100 + units,
                               dtype=np.int64),
            content_id=index,
        ))
    tiny = Trace(records=records)

    for service in ("GoogleDrive", "Box"):
        profile = service_profile(service, AccessMethod.PC)
        estimate = replay_trace(tiny, profile)

        session = SyncSession(profile)
        for index, (path, content) in enumerate(files):
            session.create_file(path, content)
            session.run_until_idle()
        measured = session.total_traffic

        assert estimate.traffic_bytes == pytest.approx(measured, rel=0.4), \
            service


def test_empty_trace():
    report = replay_trace(Trace(), service_profile("Box", AccessMethod.PC))
    assert report.traffic_bytes == 0
    assert report.file_count == 0


def _zero_size_record(user, index, segment_base=None):
    base = index * 10 if segment_base is None else segment_base
    return FileRecord(
        user=user, service="X", path=f"{user}/empty{index}.txt",
        size=0, compressed_size=0, created_at=float(index * 1000),
        modified_at=float(index * 1000), modify_count=0,
        segments=np.arange(base, base + 1, dtype=np.int64),
        content_id=index,
    )


@pytest.mark.parametrize("service", ["Dropbox", "UbuntuOne"])
def test_zero_size_files_under_both_dedup_granularities(service):
    """Zero-byte files take the explicit empty-units branch (total_len ==
    0, formerly a silent `or 1` guard): no division by zero, no wire
    bytes, and — crucially — no phantom dedup savings (Dropbox is
    block-granularity, UbuntuOne full-file, so both code paths run).
    Records 0 and 1 share content identity, so the duplicate-hit path runs
    too — a duplicate of nothing must still save nothing."""
    trace = Trace(records=[_zero_size_record("u", 0, segment_base=0),
                           _zero_size_record("u", 1, segment_base=0),
                           _zero_size_record("v", 2)])
    profile = service_profile(service, AccessMethod.PC)
    assert profile.dedup.enabled
    report = replay_trace(trace, profile)
    assert report.file_count == 3
    assert report.saved_by_dedup == 0
    assert report.saved_by_compression == 0
    # Traffic is pure per-sync overhead; every upload still happened.
    assert report.traffic_bytes == report.overhead_bytes > 0
    assert report.upload_events == 3


def test_single_record_trace_is_never_batchable():
    """With one record there is no creation neighbour, so the BDS batch
    test must return False and the file pays the full fixed overhead."""
    from repro.trace.replay import _in_creation_batch, _fixed_overhead
    record = FileRecord(
        user="solo", service="X", path="solo/one.txt",
        size=4 * KB, compressed_size=2 * KB, created_at=100.0,
        modified_at=100.0, modify_count=0,
        segments=np.arange(1, dtype=np.int64), content_id=0,
    )
    windows = {("X", "solo"): [record.created_at]}
    assert _in_creation_batch(record, windows) is False

    profile = service_profile("Dropbox", AccessMethod.PC)  # BDS: FULL
    report = replay_trace(Trace(records=[record]), profile)
    assert report.saved_by_bds == 0
    assert report.overhead_bytes == _fixed_overhead(profile)

"""Shape tests for the experiment harness (the paper's headline findings).

These assert the *qualitative* results — who wins, orderings, crossovers —
rather than absolute bytes, which is the reproduction contract.
"""

import math

import pytest

from repro.client import AccessMethod
from repro.core import (
    CreationCell,
    ModificationCell,
    experiment2_deletion,
    experiment6_frequent_mods,
    measure_batch_creation,
    measure_compression,
    measure_creation,
    measure_modification,
    run_appending,
)
from repro.units import KB, MB


# ---------------------------------------------------------------------------
# Experiment 1 (Table 6 / Figure 3)
# ---------------------------------------------------------------------------

def test_zero_size_creation_tue_is_infinite():
    """Regression: the old ``max(size, 1)`` denominator made a 0-byte
    creation report TUE == traffic, as if one byte had been written."""
    cell = measure_creation("Dropbox", AccessMethod.PC, 0)
    assert cell.traffic > 0            # the sync itself still costs bytes
    assert math.isinf(cell.tue)
    assert CreationCell("Dropbox", AccessMethod.PC, 0, traffic=1234,
                        overhead=1234).tue == float("inf")


def test_one_byte_creation_tue_is_traffic():
    """Size 1 must keep its exact historical meaning: traffic / 1."""
    cell = measure_creation("Dropbox", AccessMethod.PC, 1)
    assert cell.tue == cell.traffic
    assert not math.isinf(cell.tue)


def test_zero_size_modification_cell_tue_is_infinite():
    """A 0-size ModificationCell cannot come out of measure_modification
    (you cannot modify a byte of an empty file) but is constructible; its
    sentinel must match CreationCell's instead of silently reporting
    TUE == traffic."""
    assert math.isinf(
        ModificationCell("Dropbox", AccessMethod.PC, 0, traffic=999).tue)
    one = ModificationCell("Dropbox", AccessMethod.PC, 1, traffic=999)
    assert one.tue == 999.0


def test_creation_tue_decreases_with_size():
    """Figure 3: small files → huge TUE; ≥1 MB → TUE under ~1.5."""
    tues = [measure_creation("GoogleDrive", AccessMethod.PC, size).tue
            for size in (1, 1 * KB, 100 * KB, 1 * MB, 10 * MB)]
    assert tues == sorted(tues, reverse=True)
    assert tues[0] > 1000          # 1-byte file: thousands
    assert tues[-1] < 1.5          # 10 MB file: near 1


def test_creation_traffic_close_to_table6_anchors():
    """Spot-check two calibration anchors from Table 6."""
    gd = measure_creation("GoogleDrive", AccessMethod.PC, 1)
    assert gd.traffic == pytest.approx(9 * KB, rel=0.35)
    db = measure_creation("Dropbox", AccessMethod.PC, 10 * MB)
    assert db.traffic == pytest.approx(12.5 * MB, rel=0.15)


def test_overhead_dominates_small_files():
    cell = measure_creation("Box", AccessMethod.PC, 1 * KB)
    assert cell.overhead > 10 * cell.size


# ---------------------------------------------------------------------------
# Experiment 1' (Table 7)
# ---------------------------------------------------------------------------

def test_bds_services_beat_non_bds_by_an_order_of_magnitude():
    rows = {
        service: measure_batch_creation(service, AccessMethod.PC, count=50)
        for service in ("Dropbox", "UbuntuOne", "GoogleDrive", "Box")
    }
    assert rows["Dropbox"].tue < 3
    assert rows["UbuntuOne"].tue < 3
    assert rows["GoogleDrive"].tue > 4 * rows["Dropbox"].tue
    assert rows["Box"].tue > 4 * rows["UbuntuOne"].tue


# ---------------------------------------------------------------------------
# Experiment 2 (deletion)
# ---------------------------------------------------------------------------

def test_deletion_negligible_for_all_services():
    """The paper: deletions generate < 100 KB regardless of anything."""
    rows = experiment2_deletion(sizes=(1 * MB,))
    for row in rows:
        assert row.deletion_traffic < 100 * KB, row


# ---------------------------------------------------------------------------
# Experiment 3 (Figure 4)
# ---------------------------------------------------------------------------

def test_ids_flat_full_file_linear():
    """Figure 4(a): Dropbox's curve is flat in file size; Google Drive's
    grows linearly (full-file sync)."""
    sizes = (100 * KB, 1 * MB)
    db = [measure_modification("Dropbox", AccessMethod.PC, size).traffic
          for size in sizes]
    gd = [measure_modification("GoogleDrive", AccessMethod.PC, size).traffic
          for size in sizes]
    assert db[1] < db[0] * 2          # flat-ish
    assert gd[1] > gd[0] * 5          # ~linear in size
    assert db[1] < gd[1] / 10


def test_dropbox_modification_near_50kb():
    """§4.3: one-byte mod via Dropbox PC ≈ 50 KB (overhead + one chunk)."""
    cell = measure_modification("Dropbox", AccessMethod.PC, 1 * MB)
    assert 20 * KB < cell.traffic < 120 * KB


def test_mobile_and_web_always_full_file():
    """Figure 4(b)/(c): no IDS off the PC client."""
    for access in (AccessMethod.WEB, AccessMethod.MOBILE):
        traffic = measure_modification("Dropbox", access, 1 * MB).traffic
        assert traffic > 0.9 * MB


# ---------------------------------------------------------------------------
# Experiment 4 (Table 8)
# ---------------------------------------------------------------------------

def test_compression_matrix_shapes():
    size = 2 * MB
    db_pc = measure_compression("Dropbox", AccessMethod.PC, size)
    gd_pc = measure_compression("GoogleDrive", AccessMethod.PC, size)
    # Dropbox compresses up and down; Google Drive neither.
    assert db_pc.upload_traffic < 0.75 * size
    assert db_pc.download_traffic < 0.65 * size
    assert gd_pc.upload_traffic > size
    assert gd_pc.download_traffic > size
    # Nobody compresses web uploads.
    db_web = measure_compression("Dropbox", AccessMethod.WEB, size)
    assert db_web.upload_traffic > size
    assert db_web.download_traffic < 0.65 * size  # but the cloud still does
    # Mobile upload compression is low-level: worse than PC, better than raw.
    db_mobile = measure_compression("Dropbox", AccessMethod.MOBILE, size)
    assert db_pc.upload_traffic < db_mobile.upload_traffic < size
    # Ubuntu One mobile downloads are uncompressed (Table 8's one asymmetry).
    u1_mobile = measure_compression("UbuntuOne", AccessMethod.MOBILE, size)
    assert u1_mobile.download_traffic > size


# ---------------------------------------------------------------------------
# Experiment 6 (Figure 6)
# ---------------------------------------------------------------------------

def test_fixed_defer_plateau_then_spike():
    """Google Drive: TUE ≈ 1 for X < T ≈ 4.2, huge for X just above."""
    below = run_appending("GoogleDrive", 3.0, total=128 * KB)
    above = run_appending("GoogleDrive", 5.0, total=128 * KB)
    assert below.tue < 2.0
    assert above.tue > 10 * below.tue


def test_tue_decreases_with_modification_period():
    """§6.1: lower update frequency ⇒ fewer sync events ⇒ smaller TUE."""
    runs = [run_appending("Dropbox", x, total=256 * KB) for x in (1, 5, 10)]
    tues = [run.tue for run in runs]
    assert tues == sorted(tues, reverse=True)


def test_ids_beats_full_file_under_frequent_mods():
    """Why Dropbox/SugarSync max TUE ≪ Google Drive/Box in Figure 6."""
    dropbox = run_appending("Dropbox", 5.0, total=256 * KB)
    google = run_appending("GoogleDrive", 5.0, total=256 * KB)
    assert dropbox.tue < google.tue / 3


def test_experiment6_returns_full_sweep():
    runs = experiment6_frequent_mods("Dropbox", xs=(1, 2), total=64 * KB)
    assert [run.x for run in runs] == [1.0, 2.0]
    assert all(run.total_appended == 64 * KB for run in runs)


def test_appending_validation():
    with pytest.raises(ValueError):
        run_appending("Dropbox", 0)
    with pytest.raises(ValueError):
        run_appending("Dropbox", 1.0, append_kb=0.0)

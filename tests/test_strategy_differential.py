"""Differential battery pinning the sync-strategy refactor.

The strategy refactor (PR 10) replaces the hard-coded full-file/delta
dispatch inside ``SyncClient._sync_one`` with pluggable
:class:`~repro.client.strategies.SyncStrategy` objects.  The refactor is
only safe if it is *byte-identical*: same wire spans, same meter fields,
for every stock profile over both link presets.

Because the pre-refactor client no longer exists once the refactor lands,
its behaviour is pinned by a committed fixture
(``tests/golden/strategy_baseline.json``) captured against the original
engine.  Three batteries compare against it:

1. the profile-driven **default** path (no explicit strategy) must match
   the fixture for all 18 stock profiles x both links;
2. the **explicit strategy** path (``FullFileStrategy``, or
   ``FixedBlockDeltaStrategy`` on IDS profiles) must reproduce the same
   bytes and the same wire spans — extraction changed nothing;
3. strategy cells must be byte-identical **traced vs. untraced** (the
   ``--trace``/audit machinery cannot perturb the bytes it observes).

Regenerate the fixture only against a known-good engine::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_strategy_differential.py -k default
"""

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.client import SyncSession, all_profiles
from repro.content import random_content
from repro.obs import recording
from repro.simnet import bj_link, mn_link
from repro.units import KB

GOLDEN = Path(__file__).parent / "golden" / "strategy_baseline.json"
ALL = all_profiles()
LINKS = [("mn", mn_link), ("bj", bj_link)]

#: Logical span kinds introduced by the strategy refactor.  They are
#: zero-cost markers (no meter delta), so byte-identity is defined over
#: everything else: all wire spans plus the pre-existing logical kinds.
STRATEGY_SPAN_KINDS = frozenset({"strategy-select", "delta-exchange"})


def drive_workload(session):
    """Scripted workload: create, edit in place, append, text file,
    rename, delete — every transfer shape the engine dispatches on."""
    session.advance(1.0)
    session.create_random_file("docs/a.bin", 96 * KB, seed=1)
    session.run_until_idle()
    session.advance(30.0)
    session.modify_random_byte("docs/a.bin", seed=2)
    session.run_until_idle()
    session.advance(30.0)
    session.append("docs/a.bin", random_content(4 * KB, seed=3))
    session.run_until_idle()
    session.advance(90.0)  # crosses idle_timeout: forces a reconnect
    session.create_text_file("notes/b.txt", 8 * KB, seed=4)
    session.run_until_idle()
    session.advance(30.0)
    session.folder.rename("notes/b.txt", "notes/c.txt")
    session.run_until_idle()
    session.advance(30.0)
    session.delete_file("notes/c.txt")
    session.run_until_idle()


def report_fields(report):
    return [report.up_payload, report.up_overhead, report.down_payload,
            report.down_overhead, report.data_update_size, report.up_wasted,
            report.down_wasted]


def span_fingerprint(hub):
    """(sha256, count) over every span except the new strategy markers.

    Span indices are deliberately excluded: inserting zero-cost logical
    spans shifts indices without moving a byte.
    """
    entries = []
    for recorder in hub.recorders:
        for span in recorder.spans:
            if span.kind in STRATEGY_SPAN_KINDS:
                continue
            delta = asdict(span.delta) if span.delta is not None else None
            entries.append([span.kind, span.name, span.source, span.start,
                            span.end, delta, dict(span.attrs)])
    blob = json.dumps(entries, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest(), len(entries)


def run_session(profile, link_spec, strategy=None):
    kwargs = {} if strategy is None else {"strategy": strategy}
    with recording() as hub:
        session = SyncSession(profile, link_spec=link_spec, **kwargs)
        drive_workload(session)
        report = report_fields(session.traffic_report())
    digest, count = span_fingerprint(hub)
    return {"report": report, "span_digest": digest, "span_count": count}


def golden_key(profile, link_name):
    return f"{profile.name}|{link_name}"


def load_golden():
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize("link_name,link_factory", LINKS,
                         ids=[name for name, _ in LINKS])
@pytest.mark.parametrize("profile", ALL, ids=lambda p: p.name)
def test_default_path_matches_pre_refactor_baseline(profile, link_name,
                                                    link_factory):
    observed = run_session(profile, link_factory())
    if os.environ.get("REGEN_GOLDEN"):
        data = load_golden() if GOLDEN.exists() else {}
        data[golden_key(profile, link_name)] = observed
        GOLDEN.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return
    expected = load_golden()[golden_key(profile, link_name)]
    assert observed == expected, (
        f"{profile.name} over {link_name}: the default sync path diverged "
        f"from the pre-refactor client")


@pytest.mark.parametrize("link_name,link_factory", LINKS,
                         ids=[name for name, _ in LINKS])
@pytest.mark.parametrize("profile", ALL, ids=lambda p: p.name)
def test_explicit_strategy_matches_pre_refactor_baseline(profile, link_name,
                                                         link_factory):
    """FullFileStrategy (FixedBlockDeltaStrategy on IDS profiles) pinned
    explicitly must be indistinguishable from the pre-refactor client."""
    from repro.client.strategies import (
        FixedBlockDeltaStrategy,
        FullFileStrategy,
    )

    strategy = (FixedBlockDeltaStrategy() if profile.uses_ids
                else FullFileStrategy())
    observed = run_session(profile, link_factory(), strategy=strategy)
    expected = load_golden()[golden_key(profile, link_name)]
    assert observed == expected, (
        f"{profile.name} over {link_name}: explicit {strategy.name} "
        f"strategy diverged from the pre-refactor client")


@pytest.mark.parametrize("strategy_name",
                         ["full-file", "fixed-delta", "cdc-delta",
                          "set-reconcile", "adaptive"])
def test_strategy_cell_traced_equals_untraced(strategy_name):
    """The audit/trace machinery must not perturb a strategy's bytes."""
    from repro.core.experiments import run_strategy_cell

    untraced = run_strategy_cell(strategy_name, "scatter-edit", "mn",
                                 files=2, seed=5, audit=False)
    traced = run_strategy_cell(strategy_name, "scatter-edit", "mn",
                               files=2, seed=5, audit=True)
    assert traced == untraced

"""lint_project driver tests: incremental cache, --jobs parity, and the
engine edge cases from issue 9 (deleted-file baselines, impersonated
modules with unknown pragma ids, empty/broken files in the project)."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import (ALL_RULES, KNOWN_IDS, META_RULE, PROJECT_RULES,
                        ProjectContext, lint_paths, lint_project)


def _write_tree(root, tree):
    for relative, source in tree.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


@pytest.fixture()
def small_tree(tmp_path):
    _write_tree(tmp_path, {
        "src/repro/clean.py": """\
            def double(x):
                return 2 * x
            """,
        "src/repro/simnet/clocked.py": """\
            import time

            def stamp():
                return time.time()
            """,
    })
    return tmp_path


def _run(tree_root, **kwargs):
    return lint_project([str(tree_root / "src")], ALL_RULES, PROJECT_RULES,
                        known_ids=KNOWN_IDS, **kwargs)


# -- cache ------------------------------------------------------------------

def test_warm_cache_reuses_every_file_and_the_project(small_tree):
    cache = small_tree / "cache"
    cold = _run(small_tree, cache_dir=str(cache))
    assert cold.cache_hits == 0
    assert (cache / "reprolint-cache.json").exists()
    warm = _run(small_tree, cache_dir=str(cache))
    # Every file plus the project-level analysis served from cache.
    assert warm.cache_hits == warm.file_count + 1
    assert [f.to_dict() for f in warm.findings] \
        == [f.to_dict() for f in cold.findings]
    assert warm.module_count == cold.module_count
    assert warm.call_edges == cold.call_edges


def test_single_file_change_invalidates_project_but_not_other_files(
        small_tree):
    cache = small_tree / "cache"
    _run(small_tree, cache_dir=str(cache))
    target = small_tree / "src" / "repro" / "clean.py"
    target.write_text(target.read_text(encoding="utf-8")
                      + "\n\ndef triple(x):\n    return 3 * x\n",
                      encoding="utf-8")
    result = _run(small_tree, cache_dir=str(cache))
    # The untouched file is warm; the edited file and the project graph
    # both re-analyze.
    assert result.cache_hits == result.file_count - 1


def test_rule_set_change_invalidates_the_whole_cache(small_tree):
    cache = small_tree / "cache"
    _run(small_tree, cache_dir=str(cache))
    result = lint_project([str(small_tree / "src")], ALL_RULES[:3],
                          PROJECT_RULES, cache_dir=str(cache),
                          known_ids=KNOWN_IDS)
    assert result.cache_hits == 0


def test_corrupt_cache_file_is_treated_as_cold(small_tree):
    cache = small_tree / "cache"
    cache.mkdir()
    (cache / "reprolint-cache.json").write_text("{not json",
                                               encoding="utf-8")
    result = _run(small_tree, cache_dir=str(cache))
    assert result.cache_hits == 0
    assert json.loads(
        (cache / "reprolint-cache.json").read_text(encoding="utf-8"))


# -- jobs -------------------------------------------------------------------

def test_parallel_jobs_produce_identical_findings(small_tree):
    serial = _run(small_tree)
    parallel = _run(small_tree, jobs=2)
    assert [f.to_dict() for f in parallel.findings] \
        == [f.to_dict() for f in serial.findings]
    assert serial.findings, "fixture should produce at least one finding"


# -- edge cases through ProjectContext --------------------------------------

def test_empty_and_syntax_error_files_flow_through_the_project(tmp_path):
    _write_tree(tmp_path, {
        "src/repro/empty.py": "",
        "src/repro/broken.py": "def half(:\n",
        "src/repro/fine.py": "def ok():\n    return 1\n",
    })
    result = _run(tmp_path)
    # The broken file surfaces as a REP000 finding; the empty file is a
    # module like any other; the project pass still runs.
    assert [f.rule for f in result.findings] == [META_RULE]
    assert "syntax error" in result.findings[0].message
    assert result.module_count == 2  # empty + fine; broken is excluded
    project = ProjectContext(
        [("src/repro/empty.py", ""), ("src/repro/broken.py", "def half(:")],
        KNOWN_IDS)
    assert "repro.empty" in project.modules
    assert project.broken and project.broken[0][0] == "src/repro/broken.py"


def test_unknown_rule_pragma_in_impersonated_module(tmp_path):
    _write_tree(tmp_path, {
        "src/anywhere/fixture.py": """\
            # reprolint: module=repro.simnet.fake
            import time

            def f():
                return time.time()  # reprolint: disable=REP999 bogus id
            """,
    })
    result = _run(tmp_path)
    rules = sorted(f.rule for f in result.findings)
    # The impersonation pragma puts the file in scope (REP001 fires) and
    # the unknown id is a non-suppressible meta error.
    assert rules == [META_RULE, "REP001"]


def test_fail_stale_when_the_baselined_file_was_deleted(tmp_path, capsys):
    _write_tree(tmp_path, {
        "src/repro/present.py": "def ok():\n    return 1\n",
    })
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"entries": [
        {"rule": "REP001", "path": "src/repro/deleted.py",
         "comment": "file was removed in a refactor"},
    ]}), encoding="utf-8")
    result = lint_paths([str(tmp_path / "src")], ALL_RULES,
                        baseline_path=str(baseline), known_ids=KNOWN_IDS)
    assert [entry.path for entry in result.stale] \
        == ["src/repro/deleted.py"]
    assert main(["lint", str(tmp_path / "src"),
                 "--baseline", str(baseline), "--fail-stale"]) == 1
    assert "stale baseline" in capsys.readouterr().out


# -- pragma suppression of project findings ---------------------------------

def test_line_pragma_suppresses_a_project_finding(tmp_path):
    _write_tree(tmp_path, {
        "src/repro/forky.py": """\
            import os

            def spawn():
                pid = os.fork()  # reprolint: disable=REP030 test-only fork
                return pid
            """,
    })
    assert _run(tmp_path).findings == []
    # Without the pragma the same shape is a REP030.
    source = (tmp_path / "src" / "repro" / "forky.py").read_text(
        encoding="utf-8")
    (tmp_path / "src" / "repro" / "forky.py").write_text(
        source.replace("  # reprolint: disable=REP030 test-only fork", ""),
        encoding="utf-8")
    assert [f.rule for f in _run(tmp_path).findings] == ["REP030"]

"""Fleet-scale shared-folder simulation: convergence, determinism, fan-out.

The fleet layer's contract is threefold: every run is a pure function of
its seed (byte-identical reruns), all live members converge to identical
folder state, and every byte the server pushes during fan-out is balanced
by follower-side span evidence (the ``fanout-conservation`` invariant).
"""

import math

import pytest

from repro.content import random_content
from repro.fleet import (
    EPOCH_BACKFILL,
    Fleet,
    conflict_copy_name,
    fleet_tue,
    schedule_writer_workload,
)
from repro.obs import verify_fleet_fanout
from repro.simnet import FaultSchedule
from repro.units import KB


def small_fleet(service="GoogleDrive", clients=3, seed=7, **kwargs):
    fleet = Fleet(service, clients=clients, seed=seed, record=True, **kwargs)
    schedule_writer_workload(fleet, writers=min(2, clients),
                             file_size=16 * KB, seed=seed)
    return fleet


# -- conflict-copy naming ---------------------------------------------------

def test_conflict_copy_name_preserves_extension():
    assert conflict_copy_name("w0/doc.bin", "client2", lambda p: False) \
        == "w0/doc (conflicted copy of client2).bin"


def test_conflict_copy_name_without_extension():
    assert conflict_copy_name("notes", "client1", lambda p: False) \
        == "notes (conflicted copy of client1)"


def test_conflict_copy_name_counters_on_collision():
    taken = {"doc (conflicted copy of c0).txt",
             "doc (conflicted copy of c0) 2.txt"}
    assert conflict_copy_name("doc.txt", "c0", taken.__contains__) \
        == "doc (conflicted copy of c0) 3.txt"


def test_conflict_copy_name_dotfile_keeps_leading_dot_as_stem():
    # Regression: ".gitignore" used to split to an empty stem and become
    # " (conflicted copy of client2).gitignore" (leading space, wrong ext).
    assert conflict_copy_name(".gitignore", "client2", lambda p: False) \
        == ".gitignore (conflicted copy of client2)"


def test_conflict_copy_name_dotfile_in_directory():
    assert conflict_copy_name("w0/.env", "c1", lambda p: False) \
        == "w0/.env (conflicted copy of c1)"


def test_conflict_copy_name_dotfile_with_real_extension_splits():
    # A dotfile that *also* has an extension keeps normal splitting.
    assert conflict_copy_name(".config.yml", "c1", lambda p: False) \
        == ".config (conflicted copy of c1).yml"


def test_conflict_copy_name_multi_dot_splits_at_last_dot():
    assert conflict_copy_name("archive.tar.gz", "c9", lambda p: False) \
        == "archive.tar (conflicted copy of c9).gz"


def test_conflict_copy_name_dotfile_collision_counter():
    taken = {".gitignore (conflicted copy of c0)"}
    assert conflict_copy_name(".gitignore", "c0", taken.__contains__) \
        == ".gitignore (conflicted copy of c0) 2"


# -- run_until_idle return contract -----------------------------------------

def test_fleet_run_until_idle_returns_final_time():
    # Regression: annotated ``-> float`` but returned None because the
    # simulator's own run_until_idle returned nothing.
    fleet = small_fleet()
    end = fleet.run_until_idle()
    assert isinstance(end, float)
    assert end == fleet.sim.now
    assert end > 0.0


# -- fleet_tue conventions --------------------------------------------------

def test_fleet_tue_conventions():
    assert fleet_tue(100, 50) == 2.0
    assert math.isinf(fleet_tue(100, 0))
    assert math.isnan(fleet_tue(0, 0))


# -- convergence ------------------------------------------------------------

def test_fleet_converges_and_audits_clean():
    fleet = small_fleet()
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    report = fleet.report()
    assert report.commit_epochs == 4  # 2 writers x 2 files
    assert report.conflicts == 0
    # Followers moved real bytes: fan-out is not free.
    assert report.fanout_pushed_bytes > 0


def test_followers_receive_content():
    fleet = small_fleet(clients=4)
    fleet.run_until_idle()
    follower = fleet.members[3]  # never wrote anything
    assert follower.data_update_bytes == 0
    assert sorted(follower.folder.paths()) == sorted(
        fleet.members[0].folder.paths())
    assert follower.stats.fanout_fetches == 4
    # A pure follower has traffic but no local updates: TUE is inf.
    traffic = follower.traffic_report()
    assert math.isinf(fleet_tue(int(traffic.total),
                                int(traffic.data_update_size)))


def test_fleet_tue_exceeds_solo_tue():
    solo = Fleet("GoogleDrive", clients=1, seed=7)
    schedule_writer_workload(solo, writers=1, file_size=16 * KB, seed=7)
    solo.run_until_idle()
    shared = Fleet("GoogleDrive", clients=4, seed=7)
    schedule_writer_workload(shared, writers=1, file_size=16 * KB, seed=7)
    shared.run_until_idle()
    assert shared.report().tue > solo.report().tue


# -- determinism ------------------------------------------------------------

def fingerprint(fleet):
    report = fleet.report()
    return (report.traffic_bytes, report.update_bytes,
            report.fanout_pushed_bytes, report.commit_epochs,
            tuple((m.name, int(m.traffic.total), m.notifications,
                   m.fanout_fetches) for m in report.members))


def test_rerun_is_byte_identical():
    prints = []
    for _ in range(2):
        fleet = small_fleet(clients=4)
        fleet.run_until_idle()
        prints.append(fingerprint(fleet))
    assert prints[0] == prints[1]


def test_rerun_under_faults_is_byte_identical():
    prints = []
    for _ in range(2):
        schedule = FaultSchedule.generate(
            seed=5, horizon=300.0, mean_interval=40.0, mean_duration=4.0)
        fleet = Fleet("OneDrive", clients=3, seed=9, faults=schedule,
                      record=True)
        schedule_writer_workload(fleet, writers=2, file_size=16 * KB, seed=9)
        fleet.run_until_idle()
        assert fleet.converged()
        fleet.audit()
        prints.append(fingerprint(fleet))
    assert prints[0] == prints[1]


# -- conflicts --------------------------------------------------------------

def test_write_write_race_yields_conflict_copy():
    # OneDrive defers ~10.5 s: client1's write is still pending when
    # client0's commit fans out, forcing the write-write branch.
    fleet = Fleet("OneDrive", clients=3, seed=3, record=True)
    fleet.sim.schedule_at(1.0, fleet.members[0].folder.create, "doc.txt",
                          random_content(4 * KB, seed=1))
    fleet.sim.schedule_at(9.0, fleet.members[1].folder.create, "doc.txt",
                          random_content(4 * KB, seed=2))
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    report = fleet.report()
    assert report.conflicts == 1
    paths = sorted(fleet.members[0].folder.paths())
    assert paths == ["doc (conflicted copy of client1).txt", "doc.txt"]
    # Both versions survived: nobody's bytes were dropped.
    contents = {fleet.members[0].folder.get(path).md5 for path in paths}
    assert len(contents) == 2


def test_lww_when_both_commits_land():
    # No deferment pressure: both writers commit before fan-out applies, so
    # metadata is last-writer-wins and no conflict copy appears.
    fleet = Fleet("Dropbox", clients=2, seed=3, record=True)
    fleet.sim.schedule_at(1.0, fleet.members[0].folder.create, "doc.txt",
                          random_content(4 * KB, seed=1))
    fleet.sim.schedule_at(1.05, fleet.members[1].folder.create, "doc.txt",
                          random_content(4 * KB, seed=2))
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    assert fleet.report().conflicts == 0
    assert fleet.members[0].folder.paths() == ["doc.txt"]


def converged_pair(service="OneDrive"):
    """Two members with a synced 8 KB ``a.bin`` (defer window ≈ 10.5 s)."""
    fleet = Fleet(service, clients=2, seed=0, record=True)
    fleet.sim.schedule_at(1.0, fleet.members[0].folder.create, "a.bin",
                          random_content(8 * KB, seed=1))
    fleet.run_until_idle()
    assert fleet.converged()
    return fleet


def test_remote_delete_under_pending_edit_edit_wins():
    # client0's delete commits while client1's edit is still deferred: the
    # edit wins, re-commits, and the file survives fleet-wide.
    fleet = converged_pair()
    m0, m1 = fleet.members
    fleet.sim.schedule_at(fleet.sim.now + 1.0, m0.folder.delete, "a.bin")
    fleet.sim.schedule_at(fleet.sim.now + 6.0, m1.folder.write, "a.bin",
                          random_content(8 * KB, seed=2))
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    assert fleet.report().conflicts == 1
    assert m1.stats.conflicts == 1
    assert sorted(m0.folder.paths()) == ["a.bin"]


def test_remote_write_under_pending_delete_write_wins():
    # client1's local delete never reached the cloud when client0's write
    # fans out: the write wins, the pending delete is discarded.
    fleet = converged_pair()
    m0, m1 = fleet.members
    fleet.sim.schedule_at(fleet.sim.now + 1.0, m0.folder.write, "a.bin",
                          random_content(8 * KB, seed=3))
    fleet.sim.schedule_at(fleet.sim.now + 6.0, m1.folder.delete, "a.bin")
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    assert fleet.report().conflicts == 1
    assert sorted(m1.folder.paths()) == ["a.bin"]


def test_remote_rename_under_pending_edit_makes_conflict_copy():
    # client0 renames a→b while client1's edit of a is still deferred: the
    # edit moves to a conflict copy, the rename applies cleanly.
    fleet = converged_pair()
    m0, m1 = fleet.members
    fleet.sim.schedule_at(fleet.sim.now + 1.0, m0.folder.rename,
                          "a.bin", "b.bin")
    fleet.sim.schedule_at(fleet.sim.now + 6.0, m1.folder.write, "a.bin",
                          random_content(8 * KB, seed=4))
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    assert fleet.report().conflicts == 1
    assert sorted(m0.folder.paths()) == [
        "a (conflicted copy of client1).bin", "b.bin"]


# -- deletes and renames ----------------------------------------------------

def test_remote_delete_propagates():
    fleet = Fleet("GoogleDrive", clients=3, seed=1, record=True)
    fleet.sim.schedule_at(1.0, fleet.members[0].folder.create, "a.bin",
                          random_content(8 * KB, seed=1))
    fleet.sim.schedule_at(40.0, fleet.members[0].folder.delete, "a.bin")
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    assert fleet.members[1].folder.paths() == []


def test_remote_rename_is_metadata_only_when_content_matches():
    fleet = Fleet("GoogleDrive", clients=3, seed=1, record=True)
    fleet.sim.schedule_at(1.0, fleet.members[0].folder.create, "a.bin",
                          random_content(64 * KB, seed=1))
    fleet.sim.schedule_at(40.0, fleet.members[0].folder.rename,
                          "a.bin", "b.bin")
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    follower = fleet.members[1]
    assert follower.folder.paths() == ["b.bin"]
    assert follower.stats.fanout_renames == 1
    # The rename crossed the wire as metadata, not a re-download.
    assert follower.stats.fanout_fetches == 2  # create + rename epoch


# -- churn ------------------------------------------------------------------

def test_join_backfills_current_state():
    fleet = Fleet("GoogleDrive", clients=2, seed=11, record=True)
    schedule_writer_workload(fleet, writers=2, spacing=30.0,
                             file_size=16 * KB, seed=11)
    fleet.sim.schedule_at(45.0, fleet.join)
    fleet.run_until_idle()
    assert fleet.converged()
    fleet.audit()
    joiner = fleet.members[2]
    assert joiner.stats.backfilled > 0
    assert sorted(joiner.folder.paths()) == sorted(
        fleet.members[0].folder.paths())


def test_leave_stops_fanout_to_member():
    fleet = Fleet("GoogleDrive", clients=3, seed=11, record=True)
    schedule_writer_workload(fleet, writers=2, spacing=30.0,
                             file_size=16 * KB, seed=11)
    fleet.sim.schedule_at(45.0, fleet.members[2].leave)
    fleet.run_until_idle()
    assert fleet.converged()  # only over live members
    fleet.audit()
    leaver = fleet.members[2]
    assert not leaver.live
    # Commits after t=45 never targeted the departed member.
    late = [entry for entry in fleet.hub.ledger if entry.committed_at > 45.0]
    assert late and all("client2" not in entry.targets for entry in late)


# -- fan-out invariant violations are detected ------------------------------

def test_fanout_audit_catches_byte_imbalance():
    fleet = small_fleet()
    fleet.run_until_idle()
    fleet.hub.ledger[0].pushed_bytes += 1
    recorders = [member.recorder for member in fleet.members]
    violations = verify_fleet_fanout(fleet.hub.ledger, recorders)
    assert violations
    assert violations[0].invariant == "fanout-conservation"
    assert "pushed" in str(violations[0])


def test_fanout_audit_catches_missing_notification():
    fleet = small_fleet()
    fleet.run_until_idle()
    entry = fleet.hub.ledger[0]
    entry.targets = entry.targets + ("ghost",)
    recorders = [member.recorder for member in fleet.members]
    violations = verify_fleet_fanout(fleet.hub.ledger, recorders)
    assert any("targeted" in str(violation) for violation in violations)


def test_backfill_epoch_is_exempt_from_fanout_balance():
    assert EPOCH_BACKFILL < 0
    fleet = Fleet("GoogleDrive", clients=2, seed=11, record=True)
    schedule_writer_workload(fleet, writers=1, spacing=30.0,
                             file_size=16 * KB, seed=11)
    fleet.sim.schedule_at(45.0, fleet.join)
    fleet.run_until_idle()
    # Backfill moved bytes outside any epoch; the audit must stay clean.
    fleet.audit()


# -- scale (slow tier) ------------------------------------------------------

@pytest.mark.slow
def test_large_fleet_converges_deterministically():
    """200 concurrent clients through one event queue, twice, identically."""
    prints = []
    for _ in range(2):
        fleet = Fleet("GoogleDrive", clients=200, seed=17)
        schedule_writer_workload(fleet, writers=4, file_size=8 * KB, seed=17)
        fleet.run_until_idle()
        assert fleet.converged()
        prints.append(fingerprint(fleet))
    assert prints[0] == prints[1]


# -- workload guard ---------------------------------------------------------

def test_workload_rejects_too_many_writers():
    fleet = Fleet("GoogleDrive", clients=2, seed=0)
    with pytest.raises(ValueError):
        schedule_writer_workload(fleet, writers=3)

"""Unit tests for the TUE metric and traffic reports."""

import pytest

from repro.content import text_content
from repro.core import TrafficReport, compressed_update_size, overhead_traffic, tue
from repro.simnet import Direction, TrafficMeter


def test_tue_definition():
    assert tue(2048, 1024) == 2.0


def test_tue_validation():
    with pytest.raises(ValueError):
        tue(100, 0)
    with pytest.raises(ValueError):
        tue(-1, 100)


def test_overhead_traffic_decomposition():
    assert overhead_traffic(total_sync_traffic=1100, payload_size=1000) == 100
    assert overhead_traffic(500, 1000) == 0  # never negative


def test_compressed_update_size_uses_footnote2():
    update = text_content(100_000, seed=1)
    compressed = compressed_update_size(update)
    assert compressed < update.size


def test_report_from_meter():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, payload=1000, overhead=100)
    meter.record(0.0, Direction.DOWN, payload=0, overhead=50)
    report = TrafficReport.from_meter(meter, data_update_size=1000)
    assert report.total == 1150
    assert report.overhead == 150
    assert report.payload == 1000
    assert report.tue == pytest.approx(1.15)
    assert report.overhead_fraction == pytest.approx(150 / 1150)


def test_report_from_snapshot_diff():
    meter = TrafficMeter()
    meter.record(0.0, Direction.UP, payload=500, overhead=0)
    snap = meter.snapshot()
    meter.record(1.0, Direction.UP, payload=300, overhead=30)
    report = TrafficReport.from_snapshot(meter.since(snap), data_update_size=300)
    assert report.total == 330
    assert report.tue == pytest.approx(1.1)

"""Experiment 10 surface: packed shards, bundled commits, honest ledgers.

Covers the three ledger bugfixes (overwrite/delete byte conservation,
paginated LIST cost, mid-manifest failure attribution), the packed-shard
backend, client-side small-file bundling with its conservation audit, and
the backend × mix sweep the CLI and bench report.
"""

import pytest

from repro.chunking import fingerprint
from repro.client import AccessMethod, SyncSession, all_profiles
from repro.cloud import (
    ChunkStore,
    CloudServer,
    IntegrityError,
    LIST_PAGE_SIZE,
    NotFound,
    ObjectStore,
    PackShardConfig,
    PackShardStore,
    annotate_manifest_error,
)
from repro.cloud.packshard import _decode_manifest, _encode_manifest
from repro.content import random_content
from repro.core import (
    BACKENDS,
    FILE_MIXES,
    backend_profile,
    experiment10_backends,
    generate_mix,
    run_backend_cell,
)
from repro.obs import (
    AuditViolation,
    ConservationAuditor,
    audit_hub,
    audit_rest_ledger,
    recording,
    verify_rest_ledger,
)
from repro.units import KB


# ---------------------------------------------------------------------------
# bugfix (a): overwrite/delete byte conservation on the REST ledger
# ---------------------------------------------------------------------------

def test_overwrite_and_delete_bytes_balance_the_ledger():
    store = ObjectStore()
    store.put("a", b"12345")
    store.put("a", b"123")           # overwrite displaces the 5 old bytes
    assert store.ops.overwritten_bytes == 5
    store.delete("a")                # delete displaces the 3 current bytes
    assert store.ops.delete_bytes == 3
    assert store.ops.reclaimed_bytes == 8
    assert store.ops.put_bytes - store.ops.reclaimed_bytes \
        == store.stored_bytes == 0
    assert verify_rest_ledger(store) == []


def test_ledger_detects_uncounted_displacement():
    # Regression: before delete_bytes/overwritten_bytes existed there was
    # no way to balance put_bytes against stored_bytes.  Simulate the old
    # behaviour by zeroing the displacement counters after an overwrite.
    store = ObjectStore()
    store.put("a", b"12345")
    store.put("a", b"123")
    store.ops.overwritten_bytes = 0
    violations = verify_rest_ledger(store)
    assert violations and all(
        v.invariant == "rest-conservation" for v in violations)
    assert "uncounted" in str(violations[0])


def test_ledger_rejects_negative_counters():
    store = ObjectStore()
    store.put("a", b"x")
    store.ops.delete_bytes = -1
    messages = [str(v) for v in verify_rest_ledger(store)]
    assert any("negative counter delete_bytes" in m for m in messages)


def test_audit_rest_ledger_raises_on_imbalance():
    store = ObjectStore()
    store.put("a", b"12345")
    store.delete("a")
    audit_rest_ledger(store)         # balanced: no raise
    store.ops.delete_bytes = 0
    with pytest.raises(AuditViolation):
        audit_rest_ledger(store)


# ---------------------------------------------------------------------------
# bugfix (b): paginated LIST cost
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("keys,expected_ops", [
    (0, 1),       # empty listing is still one round trip
    (1, 1),
    (999, 1),
    (1000, 1),    # exactly one full page
    (1001, 2),    # one key over rolls a second page
])
def test_list_cost_is_paginated(keys, expected_ops):
    store = ObjectStore()
    for index in range(keys):
        store.put(f"k{index:05d}", b"")
    before = store.ops.list
    listed = store.list_keys()
    assert len(listed) == keys
    assert store.ops.list - before == expected_ops


def test_list_pagination_is_per_call():
    store = ObjectStore()
    for index in range(LIST_PAGE_SIZE + 1):
        store.put(f"k{index:05d}", b"")
    store.list_keys()
    store.list_keys("k000")          # prefix under one page: 1 more op
    assert store.ops.list == 3


# ---------------------------------------------------------------------------
# bugfix (c): mid-manifest failure attribution in fetch_many
# ---------------------------------------------------------------------------

def test_chunkstore_fetch_many_attributes_corruption():
    chunks = ChunkStore(ObjectStore())
    keys = [chunks.store(piece) for piece in (b"aaa", b"bbb", b"ccc")]
    chunks.objects._objects[keys[1]].data = b"XXX"   # rot under the etag
    with pytest.raises(IntegrityError) as excinfo:
        chunks.fetch_many(keys)
    assert excinfo.value.key == keys[1]
    assert excinfo.value.position == 1
    assert "manifest position 2 of 3" in str(excinfo.value)


def test_chunkstore_fetch_many_attributes_missing_chunk():
    chunks = ChunkStore(ObjectStore())
    keys = [chunks.store(piece) for piece in (b"aaa", b"bbb", b"ccc")]
    del chunks.objects._objects[keys[2]]
    with pytest.raises(NotFound) as excinfo:
        chunks.fetch_many(keys)
    assert excinfo.value.key == keys[2]
    assert excinfo.value.position == 2
    assert "manifest position 3 of 3" in str(excinfo.value)


def test_annotate_manifest_error_preserves_type():
    annotated = annotate_manifest_error(NotFound("gone"), "k", 0, 4)
    assert isinstance(annotated, NotFound)
    assert annotated.key == "k" and annotated.position == 0
    assert "manifest position 1 of 4" in str(annotated)


# ---------------------------------------------------------------------------
# coverage (d): chunk-store delete/exists, object-store iteration
# ---------------------------------------------------------------------------

def test_chunkstore_delete_exists_and_flush():
    chunks = ChunkStore(ObjectStore())
    key = chunks.store(b"payload")
    assert chunks.exists(key)
    assert chunks.flush() == 0       # eager PUTs: nothing buffered
    chunks.delete(key)
    assert not chunks.exists(key)
    with pytest.raises(NotFound):
        chunks.fetch(key)
    assert verify_rest_ledger(chunks.objects) == []


def test_chunkstore_collect_garbage_deletes_non_live():
    chunks = ChunkStore(ObjectStore())
    keys = [chunks.store(bytes([value]) * 8) for value in range(3)]
    removed = chunks.collect_garbage([keys[0]])
    assert removed == 2
    assert chunks.exists(keys[0])
    assert not chunks.exists(keys[1]) and not chunks.exists(keys[2])


def test_objectstore_iteration_and_stored_bytes():
    store = ObjectStore()
    store.put("a", b"12345")
    store.put("b", b"12")
    records = list(store)
    assert len(store) == len(records) == 2
    assert sum(record.size for record in records) == store.stored_bytes == 7


def test_get_range_semantics_and_metering():
    store = ObjectStore()
    store.put("a", b"0123456789")
    assert store.get_range("a", 2, 4) == b"2345"
    assert store.ops.get == 1 and store.ops.get_bytes == 4
    assert store.get_range("a", 8, 100) == b"89"     # end-clamped
    assert store.get_range("a", 10, 5) == b""        # offset == size is ok
    with pytest.raises(NotFound):
        store.get_range("missing", 0, 1)
    with pytest.raises(ValueError):
        store.get_range("a", -1, 1)
    with pytest.raises(ValueError):
        store.get_range("a", 0, -1)
    with pytest.raises(ValueError):
        store.get_range("a", 11, 1)


def test_get_range_verifies_whole_object_digest():
    store = ObjectStore()
    store.put("a", b"0123456789")
    store._objects["a"].data = b"0123456789!"        # corrupt past the range
    with pytest.raises(IntegrityError):
        store.get_range("a", 0, 4)


# ---------------------------------------------------------------------------
# packed-shard backend
# ---------------------------------------------------------------------------

def _shard(slots=1, target=1 << 20, fraction=0.5):
    return PackShardStore(ObjectStore(), PackShardConfig(
        slots=slots, target_container_bytes=target,
        compact_garbage_fraction=fraction))


def test_placement_is_deterministic_and_in_range():
    shard = _shard(slots=7)
    data = random_content(4 * KB, seed=1).data
    slot = shard.placement_slot(data)
    assert 0 <= slot < 7
    assert shard.placement_slot(data) == slot
    assert shard.placement_slot(data) == PackShardStore(
        ObjectStore(), PackShardConfig(slots=7)).placement_slot(data)


def test_store_buffers_with_zero_rest_ops_until_flush():
    shard = _shard()
    key = shard.store(b"unit-one")
    assert shard.objects.ops.total_ops() == 0
    assert shard.exists(key)
    assert shard.flush() == 1
    assert shard.objects.ops.put == 1
    assert shard.fetch(key) == b"unit-one"
    assert shard.objects.ops.get == 1
    assert shard.objects.ops.get_bytes == len(b"unit-one")


def test_slot_seals_itself_at_target_size():
    shard = _shard(target=100)
    shard.store(b"x" * 60)
    assert shard.stats.containers_sealed == 0
    shard.store(b"y" * 50)
    assert shard.stats.containers_sealed == 1
    assert shard.objects.ops.put == 1


def test_read_of_pending_unit_seals_its_slot():
    shard = _shard()
    key = shard.store(b"pending")
    assert shard.fetch(key) == b"pending"            # sealed on demand
    assert shard.stats.containers_sealed == 1


def test_fetch_many_coalesces_contiguous_runs():
    shard = _shard()
    pieces = [bytes([value]) * 32 for value in range(3)]
    keys = [shard.store(piece) for piece in pieces]
    shard.flush()
    before = shard.objects.ops.get
    assert shard.fetch_many(keys) == b"".join(pieces)
    assert shard.objects.ops.get - before == 1       # one ranged GET
    assert shard.objects.ops.get_bytes == 96


def test_fetch_many_attributes_packshard_failures():
    shard = _shard()
    keys = [shard.store(bytes([value]) * 16) for value in range(2)]
    shard.flush()
    container_key = next(iter(shard._containers))
    shard.objects._objects[container_key].data += b"!"
    with pytest.raises(IntegrityError) as excinfo:
        shard.fetch_many(keys)
    assert excinfo.value.key == keys[0]
    assert excinfo.value.position == 0
    with pytest.raises(NotFound) as missing:
        shard.fetch_many([keys[0], "shards/u999999999999"])
    assert missing.value.position == 1


def test_container_manifest_trailer_roundtrip():
    shard = _shard()
    keys = [shard.store(bytes([value]) * 10) for value in range(3)]
    shard.flush()
    container_key = next(iter(shard._containers))
    blob = shard.objects._objects[container_key].data
    entries = _decode_manifest(blob)
    assert [key for key, _, _ in entries] == keys
    assert [(offset, length) for _, offset, length in entries] \
        == [(0, 10), (10, 10), (20, 10)]
    assert _decode_manifest(_encode_manifest([("k", 0, 5)])) == [("k", 0, 5)]
    with pytest.raises(IntegrityError):
        _decode_manifest(b"tiny")
    with pytest.raises(IntegrityError):
        _decode_manifest(b"body" + (999).to_bytes(8, "big"))


def test_delete_of_pending_unit_costs_nothing():
    shard = _shard()
    key = shard.store(b"ephemeral")
    shard.delete(key)
    assert not shard.exists(key)
    assert shard.flush() == 0
    assert shard.objects.ops.total_ops() == 0
    with pytest.raises(NotFound):
        shard.fetch(key)
    with pytest.raises(NotFound):
        shard.delete(key)


def test_sealed_delete_marks_garbage_then_compacts():
    shard = _shard(fraction=0.5)
    pieces = [bytes([value]) * 100 for value in range(4)]
    keys = [shard.store(piece) for piece in pieces]
    shard.flush()
    shard.delete(keys[0])                    # 100/400 garbage: below 0.5
    assert shard.stats.compactions == 0
    shard.delete(keys[1])                    # 200/400 crosses the threshold
    assert shard.stats.compactions == 1
    assert shard.objects.ops.get == 1        # whole-container GET
    assert shard.objects.ops.delete == 1     # old container DELETE
    assert shard.stats.compaction_copied_bytes == 200
    assert shard.stats.garbage_reclaimed_bytes == 200
    assert shard.fetch(keys[2]) == pieces[2]  # survivor re-sealed + readable
    assert shard.fetch(keys[3]) == pieces[3]
    assert verify_rest_ledger(shard.objects) == []


def test_fully_garbage_container_is_one_delete():
    shard = _shard(fraction=1.0)
    keys = [shard.store(bytes([value]) * 50) for value in range(2)]
    shard.flush()
    shard.delete(keys[0])
    shard.delete(keys[1])                    # manifest empties: drop
    assert shard.objects.ops.get == 0
    assert shard.objects.ops.delete == 1
    assert len(shard.objects) == 0
    assert shard.stats.garbage_reclaimed_bytes == 100
    assert verify_rest_ledger(shard.objects) == []


def test_packshard_collect_garbage_needs_no_list_ops():
    shard = _shard(fraction=1.0)
    keys = [shard.store(bytes([value]) * 20) for value in range(4)]
    shard.flush()
    removed = shard.collect_garbage(keys[:1])
    assert removed == 3
    assert shard.objects.ops.list == 0
    assert shard.fetch(keys[0]) == bytes([0]) * 20


def test_packshard_config_validation():
    with pytest.raises(ValueError):
        PackShardConfig(slots=0)
    with pytest.raises(ValueError):
        PackShardConfig(target_container_bytes=0)
    with pytest.raises(ValueError):
        PackShardConfig(compact_garbage_fraction=0.0)
    with pytest.raises(ValueError):
        PackShardConfig(compact_garbage_fraction=1.5)
    assert PackShardConfig(compact_garbage_fraction=1.0).slots == 4


# ---------------------------------------------------------------------------
# server integration
# ---------------------------------------------------------------------------

def _upload(server, user, path, content, chunk_size=None):
    unit = chunk_size or max(content.size, 1)
    digests, keys, sizes = [], [], []
    for offset in range(0, max(content.size, 1), unit):
        piece = content.data[offset:offset + unit]
        digest = fingerprint(piece)
        key = server.resolve(user, digest)
        if key is None:
            key = server.upload_chunk(user, digest, piece)
        digests.append(digest)
        keys.append(key)
        sizes.append(len(piece))
    return server.commit(user, path, content.size, content.md5,
                         digests, keys, sizes)


def test_server_backend_selection():
    assert isinstance(CloudServer(backend="chunk").chunks, ChunkStore)
    assert isinstance(CloudServer(backend="packshard").chunks, PackShardStore)
    with pytest.raises(ValueError):
        CloudServer(backend="tape")


def test_server_packshard_end_to_end():
    server = CloudServer(backend="packshard", storage_chunk_size=1024)
    first = random_content(5000, seed=1)
    second = random_content(3000, seed=2)
    _upload(server, "u", "a.bin", first, chunk_size=1024)
    _upload(server, "u", "b.bin", second, chunk_size=1024)
    assert server.download("u", "a.bin") == first.data
    assert server.download("u", "b.bin") == second.data
    assert server.stats.shards_sealed >= 1      # mirrored from the backend
    server.delete_file("u", "a.bin")
    server.purge_history("u", "a.bin", keep_last=1)
    assert server.download("u", "b.bin") == second.data
    audit_rest_ledger(server.objects)


def test_server_packshard_commit_flushes_for_durability():
    server = CloudServer(backend="packshard")
    content = random_content(2000, seed=3)
    _upload(server, "u", "f.bin", content)
    assert server.objects.ops.put >= 1          # sealed at commit, not read


# ---------------------------------------------------------------------------
# client-side bundling + bundle-conservation audit
# ---------------------------------------------------------------------------

def _bundled_session():
    """Four small files synced through the packshard/bundling profile."""
    hub_session = SyncSession(backend_profile("packshard"))
    for index in range(4):
        hub_session.create_random_file(f"s{index}.bin", 2 * KB,
                                       seed=10 + index)
    hub_session.run_until_idle()
    return hub_session


def test_bundled_commit_converges_and_counts():
    with recording() as hub:
        session = _bundled_session()
    assert session.client.stats.bundle_commits == 1
    assert session.client.stats.bundled_files == 4
    for index in range(4):
        assert session.server.download("user1", f"s{index}.bin") \
            == random_content(2 * KB, seed=10 + index).data
    audit_hub(hub)                               # bundle-conservation holds


def test_bundle_ledger_explains_every_wire_byte():
    with recording():
        session = _bundled_session()
    spans = [s for s in session.recorder.spans if s.kind == "bundle-commit"]
    assert len(spans) == 1
    ledger = spans[0].attrs["ledger"]
    assert spans[0].attrs["files"] == len(ledger) == 4
    assert sum(entry[1] for entry in ledger) == spans[0].attrs["payload"]
    wire = [s for s in session.recorder.spans
            if s.kind == "exchange" and s.name == "bundle-commit"
            and s.attrs.get("op") == "exchange"]
    assert sum(s.attrs["up_payload"] for s in wire) \
        == spans[0].attrs["payload"]


def test_tampered_bundle_ledger_fails_the_audit():
    with recording() as hub:
        session = _bundled_session()
    span = next(s for s in session.recorder.spans
                if s.kind == "bundle-commit")
    span.attrs["ledger"][0][1] += 1              # claim one extra wire byte
    violations = ConservationAuditor().verify(session.recorder)
    bundle = [v for v in violations if v.invariant == "bundle-conservation"]
    assert len(bundle) >= 2                      # span sum + trace total
    with pytest.raises(AuditViolation):
        audit_hub(hub)


def test_bundle_span_without_ledger_is_a_violation():
    from repro.obs import BUNDLE_COMMIT, TraceRecorder
    recorder = TraceRecorder("synthetic")
    recorder.record_span(BUNDLE_COMMIT, "bundle", "client", 0.0, 1.0,
                         files=2, payload=10)
    violations = ConservationAuditor().verify(recorder)
    assert any("no per-file ledger" in str(v) for v in violations)


def test_large_files_are_not_bundled():
    profile = backend_profile("packshard")
    session = SyncSession(profile)
    for index in range(3):
        session.create_random_file(f"s{index}.bin", 2 * KB, seed=index)
    session.create_random_file(
        "big.bin", profile.bundle.max_file_bytes + 1, seed=99)
    session.run_until_idle()
    assert session.client.stats.bundled_files == 3
    assert session.server.download("user1", "big.bin") \
        == random_content(profile.bundle.max_file_bytes + 1, seed=99).data


def test_single_small_file_skips_the_bundle_path():
    session = SyncSession(backend_profile("packshard"))
    session.create_random_file("only.bin", 2 * KB, seed=1)
    session.run_until_idle()
    assert session.client.stats.bundle_commits == 0
    assert session.server.download("user1", "only.bin") \
        == random_content(2 * KB, seed=1).data


def test_default_profiles_never_bundle():
    assert all(not profile.bundle.enabled for profile in all_profiles())
    assert all(profile.storage_backend == "chunk"
               for profile in all_profiles())
    session = SyncSession("Dropbox", AccessMethod.PC)
    for index in range(3):
        session.create_random_file(f"s{index}.bin", 2 * KB, seed=index)
    session.run_until_idle()
    assert session.client.stats.bundle_commits == 0
    assert not any(s.kind == "bundle-commit"
                   for s in (session.recorder.spans
                             if session.recorder else []))


# ---------------------------------------------------------------------------
# experiment 10: the backend × mix sweep
# ---------------------------------------------------------------------------

def test_generate_mix_shape_and_determinism():
    with pytest.raises(ValueError):
        generate_mix("bogus", 10)
    sizes = generate_mix("paper", 200, seed=0)
    assert len(sizes) == 200 and all(size >= 1 for size in sizes)
    assert sizes == generate_mix("paper", 200, seed=0)
    small = sum(1 for size in sizes if size <= 8 * KB)
    assert 0.6 < small / len(sizes) < 0.9       # the paper's small-file skew


def test_backend_profile_declarations():
    with pytest.raises(ValueError):
        backend_profile("tape")
    assert backend_profile("object").storage_chunk_size is None
    assert not backend_profile("chunk").bundle.enabled
    shard = backend_profile("packshard")
    assert shard.bundle.enabled and shard.storage_backend == "packshard"


def test_backend_cell_is_rerun_identical():
    first = run_backend_cell("packshard", "paper", files=24)
    second = run_backend_cell("packshard", "paper", files=24)
    assert first == second


def test_paper_mix_packshard_cuts_rest_ops_tenfold():
    chunk = run_backend_cell("chunk", "paper")
    shard = run_backend_cell("packshard", "paper")
    assert shard.bundle_commits >= 1
    assert chunk.rest_ops_per_file / shard.rest_ops_per_file >= 10.0


def test_experiment10_matrix_is_mix_major():
    cells = experiment10_backends(files=6)
    assert len(cells) == len(BACKENDS) * len(FILE_MIXES)
    assert [cell.mix for cell in cells[:len(BACKENDS)]] \
        == [FILE_MIXES[0]] * len(BACKENDS)
    assert [cell.backend for cell in cells[:len(BACKENDS)]] == list(BACKENDS)
    assert all(cell.rest_ops > 0 and cell.stored_bytes > 0
               for cell in cells)
    assert all(cell.tue >= 1.0 for cell in cells)

"""Unit tests for the compression policies (§5.1 behaviours)."""

import pytest

from repro.compress import (
    CompressionLevel,
    CompressionPolicy,
    HIGH_COMPRESSION,
    LOW_COMPRESSION,
    MODERATE_COMPRESSION,
    NO_COMPRESSION,
    winzip_reference_size,
)
from repro.content import Content, random_content, text_content
from repro.units import MB


def test_none_is_identity():
    content = text_content(10_000, seed=1)
    assert NO_COMPRESSION.wire_size(content) == content.size
    assert NO_COMPRESSION.compress(content.data) == content.data
    assert not NO_COMPRESSION.enabled


def test_levels_ordered_on_text():
    """The paper's ordering: low saves least, high saves most (Table 8)."""
    content = text_content(1 * MB, seed=2)
    low = LOW_COMPRESSION.wire_size(content)
    moderate = MODERATE_COMPRESSION.wire_size(content)
    high = HIGH_COMPRESSION.wire_size(content)
    assert high < moderate < low < content.size


def test_calibrated_ratios_match_paper():
    """Table 8 anchors: high ≈ 0.45 (WinZip), moderate ≈ 0.58, low ≈ 0.77."""
    content = text_content(2 * MB, seed=3)
    assert HIGH_COMPRESSION.ratio(content) == pytest.approx(0.45, abs=0.05)
    assert MODERATE_COMPRESSION.ratio(content) == pytest.approx(0.58, abs=0.06)
    assert LOW_COMPRESSION.ratio(content) == pytest.approx(0.77, abs=0.06)


def test_wire_size_never_expands():
    """Stored-fallback: incompressible data ships at original size."""
    content = random_content(100_000, seed=4)
    for policy in (LOW_COMPRESSION, MODERATE_COMPRESSION, HIGH_COMPRESSION):
        assert policy.wire_size(content) == content.size


def test_empty_content():
    empty = Content(b"")
    for policy in (NO_COMPRESSION, LOW_COMPRESSION, HIGH_COMPRESSION):
        assert policy.wire_size(empty) == 0
        assert policy.ratio(empty) == 1.0


def test_compress_roundtrippable_for_whole_stream():
    import zlib
    content = text_content(50_000, seed=5)
    compressed = HIGH_COMPRESSION.compress(content.data)
    assert zlib.decompress(compressed) == content.data


def test_segmented_compress_starts_with_valid_stream():
    """Each segment is an independent zlib stream; the first must
    reconstruct the deflated prefix of the original data exactly."""
    import zlib
    content = text_content(200_000, seed=6)
    compressed = MODERATE_COMPRESSION.compress(content.data)
    first = zlib.decompressobj()
    head = first.decompress(compressed)
    covered = int(16 * 1024 * 0.85)  # MODERATE: 85 % of each 16 KB segment
    assert head == content.data[:covered]


def test_winzip_reference_is_high_level():
    content = text_content(100_000, seed=7)
    assert winzip_reference_size(content) == HIGH_COMPRESSION.wire_size(content)


def test_ratio_definition():
    content = text_content(100_000, seed=8)
    policy = CompressionPolicy(CompressionLevel.HIGH)
    assert policy.ratio(content) == pytest.approx(
        policy.wire_size(content) / content.size)

"""Tests for multi-device propagation (the Figure 1 fan-out)."""

import pytest

from repro.client import (
    AccessMethod,
    DeviceFleet,
    attach_commit_feed,
    service_profile,
)
from repro.content import random_content
from repro.units import KB, MB


def make_fleet(service="Dropbox", mirrors=1):
    return DeviceFleet(service_profile(service, AccessMethod.PC),
                       mirror_count=mirrors)


def test_single_file_propagates_to_all_mirrors():
    fleet = make_fleet(mirrors=3)
    content = random_content(64 * KB, seed=1)
    fleet.primary.create_file("a.bin", content)
    fleet.run_until_idle()
    assert fleet.converged()
    for mirror in fleet.mirrors:
        assert mirror.files["a.bin"].data == content.data
        assert mirror.stats.downloads == 1


def test_modification_propagates():
    fleet = make_fleet()
    fleet.primary.create_file("a.bin", random_content(64 * KB, seed=1))
    fleet.run_until_idle()
    fleet.primary.modify_random_byte("a.bin", seed=2)
    fleet.run_until_idle()
    assert fleet.converged()


def test_ids_mirror_downloads_delta_not_full_file():
    fleet = make_fleet("Dropbox")
    fleet.primary.create_file("big.bin", random_content(1 * MB, seed=1))
    fleet.run_until_idle()
    mirror = fleet.mirrors[0]
    baseline = mirror.total_traffic
    fleet.primary.modify_random_byte("big.bin", seed=2)
    fleet.run_until_idle()
    assert mirror.stats.delta_downloads == 1
    # The delta download is tiny compared to the 1 MB file.
    assert mirror.total_traffic - baseline < 100 * KB
    assert fleet.converged()


def test_full_file_mirror_redownloads_everything():
    fleet = make_fleet("GoogleDrive")
    fleet.primary.create_file("big.bin", random_content(1 * MB, seed=1))
    fleet.run_until_idle()
    mirror = fleet.mirrors[0]
    baseline = mirror.total_traffic
    fleet.primary.modify_random_byte("big.bin", seed=2)
    fleet.run_until_idle()
    assert mirror.stats.delta_downloads == 0
    assert mirror.total_traffic - baseline > 1 * MB


def test_deletion_propagates():
    fleet = make_fleet()
    fleet.primary.create_file("gone.bin", random_content(16 * KB, seed=1))
    fleet.run_until_idle()
    fleet.primary.delete_file("gone.bin")
    fleet.run_until_idle()
    assert "gone.bin" not in fleet.mirrors[0].files
    assert fleet.converged()


def test_fleet_traffic_split_matches_isp_view():
    """Fan-out makes outbound (cloud→clients) exceed inbound with ≥2 mirrors,
    matching the ISP trace's 5.18 MB out vs. 2.8 MB in asymmetry (§1)."""
    fleet = make_fleet("GoogleDrive", mirrors=2)
    fleet.primary.create_file("f.bin", random_content(512 * KB, seed=3))
    fleet.run_until_idle()
    assert fleet.download_traffic > fleet.upload_traffic
    assert fleet.total_traffic == fleet.upload_traffic + fleet.download_traffic


def test_stale_notifications_do_not_redownload():
    fleet = make_fleet()
    fleet.primary.create_file("f.bin", random_content(8 * KB, seed=1))
    fleet.run_until_idle()
    mirror = fleet.mirrors[0]
    downloads = mirror.stats.downloads
    # Re-delivering an old version is a no-op.
    mirror._fetch("f.bin", 1)
    fleet.run_until_idle()
    assert mirror.stats.downloads == downloads


def test_commit_feed_isolates_users():
    from repro.cloud import CloudServer
    server = CloudServer()
    feed = attach_commit_feed(server)
    seen = []
    feed.subscribe("alice", lambda event: seen.append(event))
    digest_content = random_content(10, seed=1)
    from repro.chunking import fingerprint
    digest = fingerprint(digest_content.data)
    key = server.upload_chunk("bob", digest, digest_content.data)
    server.commit("bob", "p", 10, digest_content.md5, [digest], [key], [10])
    assert seen == []  # bob's commit must not reach alice's devices
    key = server.upload_chunk("alice", digest, digest_content.data)
    server.commit("alice", "p", 10, digest_content.md5, [digest], [key], [10])
    assert len(seen) == 1 and seen[0].path == "p"


def test_two_commits_within_one_notification_delay():
    """Regression: a download that already delivered the head must suppress
    the second notification's re-fetch — without ever skipping content.

    Two commits land inside one notification delay, so the first fetch
    already downloads the *second* commit's bytes.  The device used to
    record only the first notification's version and re-download identical
    content when the second notification fired; it must now record the head
    version it actually received and download exactly once.
    """
    from repro.chunking import fingerprint

    fleet = make_fleet("GoogleDrive")
    mirror = fleet.mirrors[0]
    server = fleet.primary.server  # commit feed already attached
    first = random_content(32 * KB, seed=1)
    second = random_content(32 * KB, seed=2)

    def commit(content):
        digest = fingerprint(content.data)
        key = server.upload_chunk("user1", digest, content.data)
        server.commit("user1", "f.bin", content.size, content.md5,
                      [digest], [key], [content.size])

    # Versions 1 and 2 land at the same sim instant — strictly inside one
    # notification delay — so both fetches race one download.
    commit(first)
    commit(second)
    fleet.run_until_idle()

    # The second commit's content was never skipped...
    assert mirror.files["f.bin"].data == second.data
    # ...and the identical head was not downloaded twice.
    assert mirror.stats.downloads == 1
    assert mirror.versions["f.bin"] == 2


def test_notified_version_still_downloads_after_suppression():
    """A commit *after* a suppressing download must still be fetched."""
    fleet = make_fleet("GoogleDrive")
    mirror = fleet.mirrors[0]
    fleet.primary.create_file("f.bin", random_content(16 * KB, seed=1))
    fleet.primary.write_file("f.bin", random_content(16 * KB, seed=2))
    fleet.run_until_idle()
    downloads = mirror.stats.downloads
    third = random_content(16 * KB, seed=3)
    fleet.primary.write_file("f.bin", third)
    fleet.run_until_idle()
    assert mirror.files["f.bin"].data == third.data
    assert mirror.stats.downloads == downloads + 1

"""Unit and property tests for the rsync delta engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.content import random_content, text_content
from repro.delta import (
    CopyOp,
    LiteralOp,
    RollingChecksum,
    apply_delta,
    compute_delta,
    compute_signature,
    diff_stats,
    weak_checksum,
)


# ---------------------------------------------------------------------------
# rolling checksum
# ---------------------------------------------------------------------------

def test_rolling_matches_recompute():
    data = random_content(5000, seed=1).data
    window = 128
    roller = RollingChecksum(data[:window])
    for position in range(1, 200):
        roller.roll(data[position - 1], data[position + window - 1])
        assert roller.digest == weak_checksum(data[position:position + window])


@given(st.binary(min_size=2, max_size=300), st.integers(min_value=1, max_value=50))
@settings(max_examples=60, deadline=None)
def test_rolling_property(data, window):
    window = min(window, len(data) - 1)
    if window < 1:
        return
    roller = RollingChecksum(data[:window])
    for position in range(1, len(data) - window + 1):
        roller.roll(data[position - 1], data[position + window - 1])
        assert roller.digest == weak_checksum(data[position:position + window])


def test_roll_out_shrinks_window():
    data = b"hello world"
    roller = RollingChecksum(data)
    roller.roll_out(data[0])
    assert roller.digest == weak_checksum(data[1:])
    assert roller.window_len == len(data) - 1


def test_weak_checksum_vectorised_matches_scalar():
    # Cross the numpy threshold (64 bytes) both ways.
    for size in (1, 63, 64, 65, 1000):
        data = random_content(size, seed=size).data
        a = sum(data) & 0xFFFF
        b = sum((len(data) - i) * byte for i, byte in enumerate(data)) & 0xFFFF
        assert weak_checksum(data) == ((b << 16) | a)


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------

def test_signature_block_count():
    data = random_content(2500, seed=2).data
    signature = compute_signature(data, block_size=1000)
    assert [b.length for b in signature.blocks] == [1000, 1000, 500]
    assert signature.file_length == 2500


def test_signature_wire_size_scales_with_blocks():
    data = random_content(10_000, seed=3).data
    fine = compute_signature(data, block_size=100)
    coarse = compute_signature(data, block_size=5000)
    assert fine.wire_size > coarse.wire_size


def test_signature_invalid_block_size():
    with pytest.raises(ValueError):
        compute_signature(b"abc", block_size=0)


# ---------------------------------------------------------------------------
# delta round trips
# ---------------------------------------------------------------------------

def roundtrip(old: bytes, new: bytes, block_size: int = 512) -> None:
    signature = compute_signature(old, block_size)
    delta = compute_delta(signature, new)
    assert apply_delta(old, delta) == new
    return delta


def test_identical_files_ship_no_literals():
    data = random_content(8192, seed=4).data
    delta = roundtrip(data, data)
    assert delta.literal_bytes == 0


def test_one_byte_edit_ships_one_block():
    old = random_content(50_000, seed=5)
    new = old.modify_byte(25_000)
    delta = roundtrip(old.data, new.data, block_size=1000)
    assert delta.literal_bytes == 1000
    assert delta.wire_size < 1200


def test_append_ships_only_tail():
    old = random_content(10_000, seed=6)
    new = old.append(random_content(300, seed=7))
    delta = roundtrip(old.data, new.data, block_size=1000)
    # Tail = appended 300 bytes + displaced final short block (10_000 % 1000 == 0
    # means the old final block is full-size, so only the new tail is literal).
    assert delta.literal_bytes == 300


def test_prepend_resyncs_on_block_boundaries():
    old = random_content(10_000, seed=8)
    new_head = random_content(100, seed=9)
    new = new_head.append(old)
    delta = roundtrip(old.data, new.data, block_size=1000)
    # Blocks are head-aligned, so a 100-byte prepend misaligns everything...
    # but rsync's rolling match re-finds every old block at offset +100.
    assert delta.literal_bytes == pytest.approx(100, abs=1000)


def test_total_rewrite_ships_everything():
    old = random_content(5000, seed=10).data
    new = random_content(5000, seed=11).data
    delta = roundtrip(old, new, block_size=500)
    assert delta.literal_bytes == 5000


def test_empty_old_file():
    new = random_content(1234, seed=12).data
    delta = roundtrip(b"", new)
    assert delta.literal_bytes == 1234


def test_empty_new_file():
    old = random_content(1234, seed=13).data
    delta = roundtrip(old, b"")
    assert delta.literal_bytes == 0
    assert delta.ops == []


def test_signature_size_zero_explicit_branch():
    """An empty basis takes the explicit zero-length branch: no blocks,
    the requested block size preserved (never floored), header-only wire."""
    for block_size in (1, 512, 10 * 1024):
        signature = compute_signature(b"", block_size)
        assert signature.blocks == []
        assert signature.file_length == 0
        assert signature.block_size == block_size
        assert signature.wire_size == 16  # header only
    delta = compute_delta(compute_signature(b"", 512), b"")
    assert delta.ops == []
    assert delta.wire_size == 8  # stream header only
    assert apply_delta(b"", delta) == b""


def test_signature_size_one():
    """A one-byte basis is one short block, matchable like any other."""
    signature = compute_signature(b"x", 512)
    assert [(b.index, b.length) for b in signature.blocks] == [(0, 1)]
    assert signature.file_length == 1
    delta = compute_delta(signature, b"x")
    assert apply_delta(b"x", delta) == b"x"
    assert delta.literal_bytes <= 1
    # Size 1 -> 0 and 0 -> 1 round-trip through the same explicit branches.
    assert apply_delta(b"x", compute_delta(signature, b"")) == b""
    empty_sig = compute_signature(b"", 512)
    assert apply_delta(b"", compute_delta(empty_sig, b"y")) == b"y"


def test_cdc_delta_sizes_zero_and_one():
    """The CDC codec's zero-length branches mirror the rsync ones."""
    from repro.delta import apply_cdc_delta, chunk_digest_map, compute_cdc_delta

    assert chunk_digest_map(b"") == {}
    empty = compute_cdc_delta(b"", b"")
    assert empty.ops == []
    assert apply_cdc_delta(b"", empty) == b""
    one_up = compute_cdc_delta(b"", b"z")
    assert apply_cdc_delta(b"", one_up) == b"z"
    one_down = compute_cdc_delta(b"z", b"")
    assert one_down.ops == []
    assert apply_cdc_delta(b"z", one_down) == b""
    same = compute_cdc_delta(b"z", b"z")
    assert apply_cdc_delta(b"z", same) == b"z"
    assert same.literal_bytes <= 1


def test_apply_delta_wrong_basis_rejected():
    old = random_content(1000, seed=14).data
    delta = compute_delta(compute_signature(old, 100), old)
    with pytest.raises(ValueError):
        apply_delta(old[:500], delta)


def test_apply_delta_missing_block_rejected():
    from repro.delta import Delta
    bad = Delta(block_size=100, basis_length=100, ops=[CopyOp(block_index=5)])
    with pytest.raises(ValueError):
        apply_delta(b"x" * 100, bad)


def test_adjacent_copies_coalesce():
    data = random_content(10_000, seed=15).data
    signature = compute_signature(data, 1000)
    delta = compute_delta(signature, data)
    assert len(delta.ops) == 1
    assert isinstance(delta.ops[0], CopyOp)
    assert delta.ops[0].count == 10


def test_wire_size_accounting():
    old = random_content(4000, seed=16)
    new = old.modify_byte(100)
    stats = diff_stats(old.data, new.data, block_size=500)
    assert stats.delta_wire_bytes >= stats.literal_bytes
    assert stats.delta_wire_bytes < stats.new_size
    assert stats.signature_wire_bytes > 0


@given(st.binary(max_size=4000), st.binary(max_size=4000),
       st.sampled_from([64, 128, 700, 1024]))
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(old, new, block_size):
    """apply(old, delta(sig(old), new)) == new for arbitrary inputs."""
    signature = compute_signature(old, block_size)
    delta = compute_delta(signature, new)
    assert apply_delta(old, delta) == new


@given(st.binary(min_size=1, max_size=2000),
       st.integers(min_value=0, max_value=1999),
       st.sampled_from([128, 512]))
@settings(max_examples=40, deadline=None)
def test_single_edit_literal_bounded_property(old, offset, block_size):
    """A one-byte edit never ships more than two blocks of literals."""
    offset = offset % len(old)
    new = bytearray(old)
    new[offset] = (new[offset] + 1) % 256
    signature = compute_signature(old, block_size)
    delta = compute_delta(signature, bytes(new))
    assert apply_delta(old, delta) == bytes(new)
    assert delta.literal_bytes <= 2 * block_size

"""CLI behaviour of ``repro lint``: formats, exit codes, baseline modes."""

import json

import pytest

from repro.cli import main

FIXTURES = "tests/lint_fixtures"


@pytest.fixture()
def violating_tree(tmp_path):
    package = tmp_path / "src" / "repro" / "simnet"
    package.mkdir(parents=True)
    (package / "clocked.py").write_text(
        "import time\n\n\ndef f():\n    return time.time()\n",
        encoding="utf-8")
    return tmp_path


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "ok.py").write_text("def f():\n    return 0\n",
                                   encoding="utf-8")
    assert main(["lint", str(tmp_path / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out and "ok" in out


def test_lint_text_format_reports_findings(violating_tree, capsys):
    assert main(["lint", str(violating_tree / "src")]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "clocked.py:5" in out
    assert "FAILED" in out
    assert "hint:" in out


def test_lint_json_format(violating_tree, capsys):
    assert main(["lint", str(violating_tree / "src"),
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["REP001"]
    finding = payload["findings"][0]
    assert finding["path"].endswith("clocked.py")
    assert finding["line"] == 5 and finding["hint"]


def test_lint_explicit_missing_baseline_exits_two(violating_tree, capsys):
    code = main(["lint", str(violating_tree / "src"),
                 "--baseline", str(violating_tree / "missing.json")])
    assert code == 2
    assert "does not exist" in capsys.readouterr().err


def test_lint_baseline_suppresses_and_reports_stale(violating_tree, capsys,
                                                    tmp_path):
    baseline = tmp_path / "b.json"
    baseline.write_text(json.dumps({"version": 1, "entries": [
        {"rule": "REP001", "path": "src/repro/simnet/clocked.py",
         "comment": "known, tracked"},
        {"rule": "REP002", "path": "src/repro/simnet/clocked.py",
         "comment": "stale: nothing fires here"},
    ]}), encoding="utf-8")
    assert main(["lint", str(violating_tree / "src"),
                 "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out and "1 stale" in out

    # --fail-stale turns the stale warning into a failure (the CI step).
    assert main(["lint", str(violating_tree / "src"),
                 "--baseline", str(baseline), "--fail-stale"]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_lint_fixture_files_only_when_named_explicitly(capsys):
    # Directory walks skip lint_fixtures/; naming a file lints it.
    assert main(["lint", "tests"]) == 0
    capsys.readouterr()
    assert main(["lint", f"{FIXTURES}/rep001_bad.py"]) == 1
    assert "REP001" in capsys.readouterr().out


def test_lint_listed_in_cli_index(capsys):
    assert main(["list"]) == 0
    assert "lint" in capsys.readouterr().out


# -- whole-program mode (issue 9) -------------------------------------------

def test_lint_graph_text_mode_prints_graph_stats(violating_tree, capsys):
    assert main(["lint", str(violating_tree / "src"), "--graph"]) == 1
    out = capsys.readouterr().out
    assert "project graph:" in out and "call edge(s)" in out
    assert "REP001" in out


def test_lint_graph_json_payload_includes_graph_block(violating_tree,
                                                      tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["lint", str(violating_tree / "src"), "--graph",
                 "--jobs", "2", "--cache-dir", str(cache),
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["graph"]["modules"] >= 1
    assert payload["graph"]["cache_hits"] == 0
    # Warm run against the same cache reports the hits.
    assert main(["lint", str(violating_tree / "src"), "--graph",
                 "--cache-dir", str(cache), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["graph"]["cache_hits"] == payload["files"] + 1

"""Zero-size TUE convention across report types, plus its rendering.

PR 3 fixed the simulator cells to report inf (traffic with a zero-byte
update) / nan (no traffic at all) instead of masking the zero with a
``max(x, 1)`` denominator.  This locks the replay and tradeoff reports —
and the table renderer — to the same convention.
"""

import math

from repro.core.tradeoffs import CostReport
from repro.reporting import fmt_tue
from repro.trace.replay import ReplayReport


def test_replay_report_tue_inf_when_traffic_without_update():
    report = ReplayReport(service="p", access="sync",
                          traffic_bytes=1024, data_update_bytes=0)
    assert math.isinf(report.tue)


def test_replay_report_tue_nan_only_for_zero_over_zero():
    report = ReplayReport(service="p", access="sync",
                          traffic_bytes=0, data_update_bytes=0)
    assert math.isnan(report.tue)


def test_replay_report_tue_plain_ratio():
    report = ReplayReport(service="p", access="sync",
                          traffic_bytes=300, data_update_bytes=100)
    assert report.tue == 3.0


def test_cost_report_matches_convention():
    make = lambda traffic, update: CostReport(
        profile_name="p", traffic_bytes=traffic, data_update_bytes=update)
    assert math.isinf(make(10, 0).tue)
    assert math.isnan(make(0, 0).tue)
    assert make(10, 5).tue == 2.0
    # The old max(update, 1) guard silently reported tue == traffic here.
    assert make(10, 0).tue != 10


def test_fmt_tue_rendering():
    assert fmt_tue(float("nan")) == "—"
    assert fmt_tue(float("inf")) == "inf"
    assert fmt_tue(3.14159) == "3.14"
    assert fmt_tue(3.14159, precision=1) == "3.1"
    assert fmt_tue(0.0) == "0.00"

"""Shape tests for Experiment 7: network environment and hardware (§6.2)."""

import pytest

from repro.client import AccessMethod, AdaptiveSyncDefer, M1, M2, M3
from repro.core import (
    asd_comparison,
    experiment7_bandwidth,
    experiment7_latency,
    run_appending,
)
from repro.simnet import LinkSpec, bj_link, mn_link
from repro.units import KB, MB, Mbps


def test_simple_operation_tue_insensitive_to_network():
    """§6.2: TUE of a simple file operation is not affected by the network."""
    from repro.core import measure_creation
    at_mn = measure_creation("OneDrive", AccessMethod.PC, 1 * MB,
                             link_spec=mn_link())
    at_bj = measure_creation("OneDrive", AccessMethod.PC, 1 * MB,
                             link_spec=bj_link())
    assert at_bj.traffic == pytest.approx(at_mn.traffic, rel=0.02)


def test_poor_network_lowers_tue_under_frequent_mods():
    """Figure 7: the BJ vantage point batches more, so TUE drops."""
    at_mn = run_appending("Dropbox", 1.0, total=256 * KB, link_spec=mn_link())
    at_bj = run_appending("Dropbox", 1.0, total=256 * KB, link_spec=bj_link())
    assert at_bj.tue < at_mn.tue
    assert at_bj.sync_transactions < at_mn.sync_transactions


def test_higher_latency_lowers_tue():
    """Figure 8(b)."""
    curve = experiment7_latency(rtts=(0.040, 0.400, 1.000), total=128 * KB)
    tues = [tue for _, tue in curve]
    assert tues[0] > tues[1] > tues[2]


def test_higher_bandwidth_raises_tue():
    """Figure 8(a): monotone non-decreasing, strictly higher at the top."""
    curve = experiment7_bandwidth(bandwidths_mbps=(0.4, 0.8, 1.6, 20),
                                  total=128 * KB)
    tues = [tue for _, tue in curve]
    assert all(a <= b + 1e-9 for a, b in zip(tues, tues[1:]))
    assert tues[-1] > tues[0]


def test_slower_hardware_lowers_tue():
    """Figure 8(c): M2 (Atom) batches more than M1, M3 batches least."""
    def tue_for(machine):
        return run_appending("Dropbox", 1.0, total=256 * KB,
                             machine=machine).tue
    m1, m2, m3 = tue_for(M1), tue_for(M2), tue_for(M3)
    assert m2 < m1 <= m3 + 1e-9


def test_hardware_does_not_change_simple_operation_tue():
    from repro.core import measure_creation
    fast = measure_creation("Box", AccessMethod.PC, 1 * MB, machine=M3)
    slow = measure_creation("Box", AccessMethod.PC, 1 * MB, machine=M2)
    assert slow.traffic == pytest.approx(fast.traffic, rel=0.02)


def test_asd_fixes_the_fixed_defer_gap():
    """§6.1: with ASD, TUE ≈ 1 even for X > T (Google Drive's T ≈ 4.2 s)."""
    rows = asd_comparison("GoogleDrive", xs=(6,),
                          defer_factory=lambda: AdaptiveSyncDefer(),
                          total=128 * KB)
    (x, original, with_asd), = rows
    assert original > 10
    assert with_asd < 2.0


def test_asd_does_not_hurt_below_the_deferment():
    rows = asd_comparison("GoogleDrive", xs=(2,),
                          defer_factory=lambda: AdaptiveSyncDefer(),
                          total=64 * KB)
    (_, original, with_asd), = rows
    assert with_asd < max(2.0, original * 1.5)


def test_link_spec_sweep_is_deterministic():
    spec = LinkSpec(up_bw=4 * Mbps, down_bw=4 * Mbps, rtt=0.1)
    a = run_appending("Box", 2.0, total=64 * KB, link_spec=spec)
    b = run_appending("Box", 2.0, total=64 * KB, link_spec=spec)
    assert a.traffic == b.traffic
    assert a.tue == b.tue

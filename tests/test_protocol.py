"""Unit tests for the HTTPS channel cost model."""

import pytest

from repro.simnet import Channel, Link, ProtocolCosts, Simulator, TrafficMeter, mn_link


def make_channel(costs=None, rtt=0.05):
    sim = Simulator()
    link = Link(mn_link(rtt=rtt))
    meter = TrafficMeter()
    return sim, Channel(sim, link, meter, costs or ProtocolCosts()), meter


def test_first_exchange_pays_handshake():
    _, channel, meter = make_channel()
    channel.exchange(up_payload=100)
    kinds = meter.bytes_by_kind()
    assert "handshake" in kinds
    assert channel.handshake_count == 1


def test_connection_reused_within_idle_window():
    sim, channel, _ = make_channel()
    channel.exchange(up_payload=10)
    sim.run_until(1.0)
    channel.exchange(up_payload=10)
    assert channel.handshake_count == 1


def test_connection_reestablished_after_idle_timeout():
    costs = ProtocolCosts(idle_timeout=5.0)
    sim, channel, _ = make_channel(costs)
    channel.exchange(up_payload=10)
    sim.run_until(60.0)
    channel.exchange(up_payload=10)
    assert channel.handshake_count == 2


def test_drop_connection_forces_handshake():
    _, channel, _ = make_channel()
    channel.exchange()
    channel.drop_connection()
    channel.exchange()
    assert channel.handshake_count == 2


def test_payload_metered_as_payload():
    _, channel, meter = make_channel()
    channel.exchange(up_payload=5000, down_payload=2000)
    assert meter.up.payload == 5000
    assert meter.down.payload == 2000
    assert meter.up.overhead > 0  # headers + packet framing
    assert meter.down.overhead > 0


def test_meta_bytes_metered_as_overhead():
    _, plain_channel, plain_meter = make_channel()
    plain_channel.exchange()
    _, meta_channel, meta_meter = make_channel()
    meta_channel.exchange(up_meta=10_000)
    assert meta_meter.up.overhead >= plain_meter.up.overhead + 10_000
    assert meta_meter.up.payload == 0


def test_exchange_duration_increases_with_latency():
    _, fast, _ = make_channel(rtt=0.05)
    _, slow, _ = make_channel(rtt=0.5)
    assert slow.exchange(up_payload=1000) > fast.exchange(up_payload=1000)


def test_exchange_duration_increases_with_payload():
    _, channel, _ = make_channel()
    channel.exchange()  # absorb handshake
    small = channel.exchange(up_payload=1_000)
    large = channel.exchange(up_payload=1_000_000)
    assert large > small


def test_slow_start_adds_rounds_for_large_transfers():
    _, channel, _ = make_channel()
    assert channel._slow_start_rtts(1_000) == 0
    assert channel._slow_start_rtts(1_000_000) >= 3
    # Monotone non-decreasing in size.
    values = [channel._slow_start_rtts(n) for n in (10_000, 100_000, 1_000_000)]
    assert values == sorted(values)


def test_no_tls_costs_less():
    _, tls_channel, tls_meter = make_channel(ProtocolCosts(use_tls=True))
    tls_channel.exchange()
    _, raw_channel, raw_meter = make_channel(ProtocolCosts(use_tls=False))
    raw_channel.exchange()
    assert raw_meter.total_bytes < tls_meter.total_bytes


def test_notify_is_downstream_overhead():
    _, channel, meter = make_channel()
    channel.notify(500)
    assert meter.down.overhead >= 500
    assert meter.down.payload == 0


def test_extra_rtts_extend_duration():
    _, channel, _ = make_channel()
    channel.exchange()
    base = channel.exchange()
    longer = channel.exchange(extra_rtts=4)
    assert longer == pytest.approx(base + 4 * 0.05, rel=0.01)

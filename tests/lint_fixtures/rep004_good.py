# reprolint: module=repro.cloud.fixture
"""Good: identifiers come from seeded RNGs and counters."""


def fresh_object_id(rng, counter):
    return f"obj-{counter:08d}-{rng.integers(1 << 32):08x}"

# reprolint: module=repro.core.fixture
"""Good: the zero propagates and TUE reports inf/nan."""


def tue(traffic, update):
    if update <= 0:
        return float("inf") if traffic > 0 else float("nan")
    return traffic / update

# reprolint: module=repro.content.fixture
"""Bad: builtin hash() is salted per process (PYTHONHASHSEED)."""


def chunk_key(data):
    return hash(data) & 0xFFFF  # expect: REP005

# reprolint: module=repro.cloud.fixture
"""Bad: poking the TrafficMeter from outside the Channel wire path."""


def sneak_bytes(session, recorder, nbytes):
    session.meter.record("up", nbytes, 0)  # expect: REP011
    session.meter.records.append(None)  # expect: REP011
    session.meter._totals["up"] = nbytes  # expect: REP011
    # The span emit keeps this fixture REP020-clean; the mutations above
    # are still on the wrong side of the Channel boundary.
    recorder.record_span("exchange", up=nbytes, down=0)

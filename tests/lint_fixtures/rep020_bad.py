# reprolint: module=repro.simnet.protocol.fixture
"""Bad: meter mutation with no recorder emit in the same function."""


def unpaired_exchange(self, nbytes):
    self.meter.record("up", nbytes, 0)  # expect: REP020
    return nbytes

# reprolint: module=repro.trace.fixture
"""Bad: unseeded constructors and process-global RNG draws."""
import random

import numpy as np


def draw_sizes(count):
    rng = random.Random()  # expect: REP002
    generator = np.random.default_rng()  # expect: REP002
    jitter = np.random.normal(0.0, 1.0)  # expect: REP002
    base = random.randint(1, 10)  # expect: REP002
    return [rng.random() + jitter + base for _ in range(count)], generator

# reprolint: module=repro.obs.fixture
"""Bad: accounting code iterating unordered views."""


def merge_totals(shards):
    totals = {}
    for key in shards.keys():  # expect: REP003
        totals[key] = shards[key]
    seen = {1, 2, 3}
    ordered = [value for value in seen]  # expect: REP003
    labels = set(totals)
    for label in labels:  # expect: REP003
        totals[label] += 0
    return totals, ordered

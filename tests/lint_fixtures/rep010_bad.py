# reprolint: module=repro.simnet.fixture
"""Bad: float arithmetic flowing back into byte counters."""


def account(send, wire_bytes, scale):
    traffic_bytes = wire_bytes * 1.5 / scale  # expect: REP010
    payload = float(wire_bytes)  # expect: REP010
    traffic_bytes /= 2  # expect: REP010
    send(overhead_bytes=wire_bytes / 3)  # expect: REP010
    deduped_wire = int(wire_bytes * scale / 3)  # expect: REP010
    return traffic_bytes, payload, deduped_wire

# reprolint: module=repro.trace.fixture
"""Good: every RNG is constructed with an explicit seed."""
import random

import numpy as np


def draw_sizes(count, seed):
    rng = random.Random(seed)
    generator = np.random.default_rng(seed)
    return [rng.random() for _ in range(count)], generator.integers(10)

# reprolint: module=repro.content.fixture
"""Good: hashlib for persisted keys; hash() only inside __hash__."""
import hashlib


class ChunkRef:
    def __init__(self, digest):
        self.digest = digest

    def __hash__(self):
        return hash(self.digest)


def chunk_key(data):
    return hashlib.sha256(data).hexdigest()[:16]

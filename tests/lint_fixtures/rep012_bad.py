# reprolint: module=repro.core.fixture
"""Bad: max(x, 1) masking zero-update denominators."""


def tue(report, traffic, update):
    safe = traffic / max(update, 1)  # expect: REP012
    report(data_update_bytes=max(update, 1))  # expect: REP012
    denominator = max(1, update)  # expect: REP012
    return safe, denominator

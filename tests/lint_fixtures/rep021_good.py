# reprolint: module=repro.client.fixture
"""Good: narrow exception types, and what is caught is recorded."""
import logging

log = logging.getLogger(__name__)


def drain(queue):
    for item in queue:
        try:
            item.flush()
        except OSError as error:
            log.warning("flush failed: %s", error)

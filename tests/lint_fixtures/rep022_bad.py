# reprolint: module=repro.simnet.fixture
"""Bad: span kinds the conservation auditor does not understand."""


def emit(recorder, nbytes):
    recorder.record_span("wire-noise", up=nbytes, down=0)  # expect: REP022
    recorder.record_span(kind="bogus", up=0, down=0)  # expect: REP022
    recorder.record_span(MYSTERY_KIND, up=0, down=0)  # expect: REP022

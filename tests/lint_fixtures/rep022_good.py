# reprolint: module=repro.simnet.fixture
"""Good: span kinds come from repro.obs.recorder.SPAN_KINDS."""
from repro.obs.recorder import EXCHANGE


def emit(recorder, nbytes):
    recorder.record_span("exchange", up=nbytes, down=0)
    recorder.record_span(EXCHANGE, up=0, down=0)

# reprolint: module=repro.cloud.fixture
"""Bad: fresh entropy on every run."""
import os
import uuid


def fresh_object_id():
    token = os.urandom(8)  # expect: REP004
    name = uuid.uuid4()  # expect: REP004
    return f"{name}-{token.hex()}"

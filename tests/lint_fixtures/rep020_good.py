# reprolint: module=repro.simnet.protocol.fixture
"""Good: every meter mutation is paired with a span emit."""


def paired_exchange(self, recorder, nbytes):
    self.meter.record("up", nbytes, 0)
    if recorder is not None:
        recorder.record_span("exchange", up=nbytes, down=0)
    return nbytes

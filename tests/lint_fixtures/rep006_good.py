# reprolint: module=repro.client.fixture
"""Good: configuration is threaded through parameters."""


def pick_endpoint(config):
    return config.endpoint

# reprolint: module=repro.cloud.fixture
"""Good: bytes go through the audited Channel path."""


def send_bytes(channel, nbytes):
    return channel.exchange(up_payload=nbytes, down_payload=0)

# reprolint: module=repro.simnet.fixture
"""Good: integer-exact counters; floats only for derived ratios."""


def account(send, wire_bytes, scale):
    traffic_bytes = wire_bytes * 3 // (2 * scale)
    efficiency = traffic_bytes / wire_bytes  # derived ratio, not a counter
    send(overhead_bytes=int(wire_bytes * 1.5))
    return traffic_bytes, efficiency

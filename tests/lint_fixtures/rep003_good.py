# reprolint: module=repro.obs.fixture
"""Good: every unordered view is pinned with sorted()."""


def merge_totals(shards):
    totals = {}
    for key in sorted(shards.keys()):
        totals[key] = shards[key]
    seen = {1, 2, 3}
    ordered = [value for value in sorted(seen)]
    return totals, ordered

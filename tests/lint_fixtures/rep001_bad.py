# reprolint: module=repro.simnet.fixture
"""Bad: wall clocks inside deterministic simulation code."""
import time
from datetime import datetime


def stamp_events(events):
    started = time.time()  # expect: REP001
    now = datetime.now()  # expect: REP001
    return [(started, now, event) for event in events]

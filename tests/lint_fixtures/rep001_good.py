# reprolint: module=repro.simnet.fixture
"""Good: time comes from the Simulator's virtual clock."""


def stamp_events(sim, events):
    return [(sim.now, event) for event in events]

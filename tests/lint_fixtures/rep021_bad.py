# reprolint: module=repro.client.fixture
"""Bad: do-nothing handlers destroying failure evidence."""


def drain(queue):
    for item in queue:
        try:
            item.flush()
        except FaultError:  # expect: REP021
            pass
        try:
            item.close()
        except Exception:  # expect: REP021
            continue

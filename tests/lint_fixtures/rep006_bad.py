# reprolint: module=repro.client.fixture
"""Bad: simulation behaviour keyed off the ambient environment."""
import os
import sys


def pick_endpoint():
    if os.environ.get("REPRO_ENDPOINT"):  # expect: REP006
        return os.getenv("REPRO_ENDPOINT")  # expect: REP006
    return sys.argv[1]  # expect: REP006

"""Hypothesis properties for the delta sync strategies (PR 10).

Two families:

* **reconstruction exactness** — for arbitrary (base, edit) pairs, every
  delta codec round-trips byte-exactly, and a live session pinned to each
  delta strategy converges the cloud to the folder;
* **wire economy** — a delta stream is never unboundedly worse than
  shipping the file whole: its wire size is bounded by the new file's
  size plus per-op framing, with op counts bounded by the geometry
  (blocks for rsync, ``min_size`` chunks for CDC).

Failing examples get shrunk by Hypothesis and committed as ``@example``
fixtures (the PR 2 convention), so a regression replays deterministically.
"""

from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.chunking.cdc import DEFAULT_MIN
from repro.client import AdaptiveSelector, SyncSession, make_strategy
from repro.content import Content
from repro.core import strategy_link, strategy_profile
from repro.delta import (
    COPY_TOKEN_BYTES,
    LITERAL_HEADER_BYTES,
    apply_cdc_delta,
    apply_delta,
    compute_cdc_delta,
    compute_delta,
    compute_signature,
)
from repro.delta.cdc_delta import CDC_STREAM_HEADER_BYTES, CHUNK_REF_BYTES

#: An "edit script": (offset-ish int, replacement bytes) pairs applied to
#: the base — scattered overwrites, the delta strategies' home turf.
edits_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 20),
              st.binary(min_size=0, max_size=200)),
    min_size=0, max_size=6)


def apply_edits(base: bytes, edits) -> bytes:
    data = bytearray(base)
    for offset, replacement in edits:
        if not data:
            data.extend(replacement)
            continue
        at = offset % len(data)
        data[at:at + len(replacement)] = replacement
    return bytes(data)


@given(base=st.binary(max_size=6000), edits=edits_strategy,
       block_size=st.sampled_from([64, 512, 1024]))
@example(base=b"", edits=[(0, b"x")], block_size=64)
@example(base=b"\x00", edits=[], block_size=64)
@settings(max_examples=50, deadline=None)
def test_rsync_strategy_pair_roundtrips_exactly(base, edits, block_size):
    new = apply_edits(base, edits)
    delta = compute_delta(compute_signature(base, block_size), new)
    assert apply_delta(base, delta) == new


@given(base=st.binary(max_size=6000), edits=edits_strategy)
@example(base=b"", edits=[(0, b"x")])
@example(base=b"\x00", edits=[])
@settings(max_examples=50, deadline=None)
def test_cdc_strategy_pair_roundtrips_exactly(base, edits):
    new = apply_edits(base, edits)
    cdelta = compute_cdc_delta(base, new)
    assert apply_cdc_delta(base, cdelta) == new


@given(base=st.binary(max_size=6000), edits=edits_strategy,
       block_size=st.sampled_from([64, 512, 1024]))
@settings(max_examples=50, deadline=None)
def test_rsync_wire_bounded_by_full_file_plus_framing(base, edits, block_size):
    """Coalesced runs bound the stream: at most one copy token per matched
    block and one literal header per run between copies."""
    new = apply_edits(base, edits)
    delta = compute_delta(compute_signature(base, block_size), new)
    copies = len(new) // block_size + 1
    bound = (8 + len(new)
             + copies * COPY_TOKEN_BYTES
             + (copies + 1) * LITERAL_HEADER_BYTES)
    assert delta.wire_size <= bound


@given(base=st.binary(max_size=6000), edits=edits_strategy)
@settings(max_examples=50, deadline=None)
def test_cdc_wire_bounded_by_full_file_plus_framing(base, edits):
    """Every op covers at least ``min_size`` new-file bytes (bar the final
    chunk), so framing is bounded by the chunk-count geometry."""
    new = apply_edits(base, edits)
    cdelta = compute_cdc_delta(base, new)
    chunks = len(new) // DEFAULT_MIN + 1
    bound = (CDC_STREAM_HEADER_BYTES + len(new)
             + chunks * max(CHUNK_REF_BYTES, LITERAL_HEADER_BYTES))
    assert cdelta.wire_size <= bound


delta_names = st.sampled_from(["fixed-delta", "cdc-delta", "set-reconcile"])


@given(name=delta_names, base_size=st.integers(min_value=0, max_value=40),
       edits=edits_strategy, seed=st.integers(min_value=0, max_value=99))
@example(name="set-reconcile", base_size=0, edits=[(0, b"x")], seed=0)
@example(name="fixed-delta", base_size=1, edits=[(0, b"")], seed=1)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_pinned_strategy_sessions_converge(name, base_size, edits, seed):
    """End-to-end: a session pinned to each delta strategy syncs arbitrary
    (create, edit) pairs and the cloud converges byte-exactly."""
    from repro.content import random_content

    session = SyncSession(strategy_profile(), link_spec=strategy_link("mn"),
                          strategy=make_strategy(name))
    base = random_content(base_size * 64, seed=seed)
    session.create_file("f.bin", base)
    session.run_until_idle()
    new = apply_edits(base.data, edits)
    session.advance(30.0)
    session.write_file("f.bin", Content(new))
    session.run_until_idle()
    assert session.server.download(session.client.user, "f.bin") == new


@given(edits=edits_strategy, seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_adaptive_never_beaten_by_pinned_full_file(edits, seed):
    """Property form of the Experiment 11 headline on a single file: total
    traffic under the adaptive selector never exceeds the pinned full-file
    session's for the same (create, edit) history."""
    from repro.content import random_content

    def run(strategy):
        session = SyncSession(strategy_profile(),
                              link_spec=strategy_link("mn"),
                              strategy=strategy)
        session.create_file("f.bin", random_content(2048, seed=seed))
        session.run_until_idle()
        new = apply_edits(session.folder.get("f.bin").data, edits)
        session.advance(30.0)
        session.write_file("f.bin", Content(new))
        session.run_until_idle()
        return session.total_traffic

    assert run(AdaptiveSelector()) <= run(make_strategy("full-file"))

"""Fixture-driven tests for every reprolint rule.

Each rule has a ``repNNN_bad.py`` fixture whose violating lines carry an
``# expect: REPNNN`` marker, and a ``repNNN_good.py`` fixture that must
produce zero findings.  The test asserts *exact* (line, rule) sets, so a
rule that drifts (fires on the wrong line, or stops firing) fails loudly.
"""

import re
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, PROJECT_RULES, RULES_BY_ID, lint_source

FIXTURES = Path(__file__).parent / "lint_fixtures"
_EXPECT_RE = re.compile(r"#\s*expect:\s*(REP\d+)")

# Per-file rules only: project rules need a multi-module ProjectContext and
# get their good/bad pairs inline in test_lint_rules_project.py instead.
RULE_IDS = sorted(rule.id for rule in ALL_RULES)


def test_registry_covers_file_and_project_rules():
    assert set(RULES_BY_ID) == set(RULE_IDS) | {r.id for r in PROJECT_RULES}


def _expected_markers(source):
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _EXPECT_RE.finditer(line):
            expected.add((lineno, match.group(1)))
    return expected


def _fixture(name):
    path = FIXTURES / name
    return path, path.read_text(encoding="utf-8")


def test_every_rule_has_fixture_pair():
    for rule_id in RULE_IDS:
        stem = rule_id.lower()
        assert (FIXTURES / f"{stem}_bad.py").is_file(), rule_id
        assert (FIXTURES / f"{stem}_good.py").is_file(), rule_id


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_fires_exactly_where_expected(rule_id):
    path, source = _fixture(f"{rule_id.lower()}_bad.py")
    expected = _expected_markers(source)
    assert expected, f"{path.name} has no # expect: markers"
    assert all(marker[1] == rule_id for marker in expected), \
        f"{path.name} expects findings from a different rule"
    findings = lint_source(source, str(path), ALL_RULES)
    assert {(f.line, f.rule) for f in findings} == expected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    path, source = _fixture(f"{rule_id.lower()}_good.py")
    findings = lint_source(source, str(path), ALL_RULES)
    assert findings == []


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_findings_carry_location_and_hint(rule_id):
    path, source = _fixture(f"{rule_id.lower()}_bad.py")
    for finding in lint_source(source, str(path), ALL_RULES):
        assert finding.path.endswith(f"{rule_id.lower()}_bad.py")
        assert finding.line >= 1 and finding.col >= 0
        assert finding.message
        assert finding.hint  # every rule ships a fix hint
        assert f"{finding.path}:{finding.line}" in finding.format()


def test_fixture_modules_impersonate_scoped_packages():
    # The module= pragma is what puts fixtures in scope for scoped rules.
    path, source = _fixture("rep001_bad.py")
    unscoped = lint_source(source.replace(
        "# reprolint: module=repro.simnet.fixture", "# plain comment"),
        str(path), ALL_RULES)
    assert unscoped == []  # out of scope -> silent

"""Integration-level tests of the sync client engine's behaviours."""

import pytest

from repro.client import (
    AccessMethod,
    M1,
    M2,
    SyncSession,
    service_profile,
)
from repro.cloud import CloudServer
from repro.content import random_content
from repro.simnet import LinkSpec, Simulator, mn_link
from repro.units import KB, MB


def session_for(service="GoogleDrive", access=AccessMethod.PC, **kwargs):
    return SyncSession(service, access, **kwargs)


def test_creation_reaches_cloud():
    session = session_for()
    content = random_content(10 * KB, seed=1)
    session.create_file("a.bin", content)
    session.run_until_idle()
    assert session.server.download("user1", "a.bin") == content.data
    assert session.client.stats.files_synced == 1


def test_modification_updates_cloud():
    session = session_for()
    session.create_file("a.bin", random_content(10 * KB, seed=1))
    session.run_until_idle()
    session.modify_random_byte("a.bin", seed=2)
    session.run_until_idle()
    assert session.server.download("user1", "a.bin") == \
        session.folder.get("a.bin").data


def test_ids_client_uses_delta_for_modification():
    session = session_for("Dropbox")
    session.create_file("a.bin", random_content(1 * MB, seed=1))
    session.run_until_idle()
    assert session.client.stats.full_file_syncs == 1
    session.modify_random_byte("a.bin", seed=2)
    session.run_until_idle()
    assert session.client.stats.delta_syncs == 1
    assert session.server.download("user1", "a.bin") == \
        session.folder.get("a.bin").data


def test_delta_traffic_much_smaller_than_full_file():
    """The Figure 4 contrast: IDS vs full-file for a 1-byte edit."""
    ids = session_for("Dropbox")
    ids.create_file("a.bin", random_content(1 * MB, seed=1))
    ids.run_until_idle()
    ids.reset_meter()
    ids.modify_random_byte("a.bin", seed=2)
    ids.run_until_idle()

    full = session_for("GoogleDrive")
    full.create_file("a.bin", random_content(1 * MB, seed=1))
    full.run_until_idle()
    full.reset_meter()
    full.modify_random_byte("a.bin", seed=2)
    full.run_until_idle()

    assert ids.total_traffic < full.total_traffic / 5


def test_full_file_client_resends_whole_file():
    session = session_for("Box")
    session.create_file("a.bin", random_content(1 * MB, seed=1))
    session.run_until_idle()
    session.reset_meter()
    session.modify_random_byte("a.bin", seed=2)
    session.run_until_idle()
    assert session.total_traffic > 1 * MB


def test_deletion_traffic_negligible():
    """Experiment 2: deletion costs < 100 KB regardless of size."""
    session = session_for("OneDrive")
    session.create_file("big.bin", random_content(2 * MB, seed=1))
    session.run_until_idle()
    session.reset_meter()
    session.delete_file("big.bin")
    session.run_until_idle()
    assert session.total_traffic < 100 * KB
    # Fake deletion: the cloud can still roll back to version 1.
    restored = session.server.restore_version("user1", "big.bin", 1)
    assert restored.size == 2 * MB


def test_create_then_delete_before_sync_sends_nothing_heavy():
    session = session_for("GoogleDrive")  # 4.2 s defer holds the create back
    session.create_file("temp.bin", random_content(1 * MB, seed=1))
    session.delete_file("temp.bin")
    session.run_until_idle()
    assert session.total_traffic < 10 * KB


def test_natural_batching_during_upload():
    """Condition 1: updates arriving mid-upload coalesce into one sync."""
    spec = LinkSpec(up_bw=200_000, down_bw=200_000, rtt=0.2)  # slow link
    session = session_for("Box", link_spec=spec)
    session.create_file("f.bin", random_content(0))
    session.run_until_idle()
    session.reset_meter()
    for index in range(10):
        session.append("f.bin", random_content(50 * KB, seed=10 + index))
        session.advance(0.05)
    session.run_until_idle()
    stats = session.client.stats
    assert stats.sync_transactions < 10
    assert max(stats.ops_per_sync) > 1


def test_slow_hardware_batches_more():
    """Condition 2: metadata computation time forces batching (Fig. 8c)."""
    def run(machine):
        session = session_for("Dropbox", machine=machine)
        session.create_file("f.bin", random_content(0))
        session.run_until_idle()
        session.reset_meter()
        for index in range(30):
            session.append("f.bin", random_content(1 * KB, seed=index))
            session.advance(1.0)
        session.run_until_idle()
        return session

    fast = run(M1)
    slow = run(M2)
    assert slow.client.stats.sync_transactions < fast.client.stats.sync_transactions
    assert slow.total_traffic < fast.total_traffic


def test_bds_full_batches_into_one_transaction():
    session = session_for("Dropbox")
    for index in range(20):
        session.create_file(f"b/{index}.bin", random_content(1 * KB, seed=index))
    session.run_until_idle()
    assert session.client.stats.sync_transactions == 1
    assert session.client.stats.files_synced == 20


def test_non_bds_service_syncs_files_individually():
    session = session_for("GoogleDrive")
    for index in range(5):
        session.create_file(f"b/{index}.bin", random_content(1 * KB, seed=index))
    session.run_until_idle()
    # One transaction (they're batched in time by the defer) but each file
    # pays its own full overhead: traffic is ~5x the single-file cost.
    single = session_for("GoogleDrive")
    single.create_file("one.bin", random_content(1 * KB, seed=0))
    single.run_until_idle()
    assert session.total_traffic > 4 * single.total_traffic


def test_dedup_skips_reupload_same_user():
    session = session_for("UbuntuOne")
    content = random_content(512 * KB, seed=1)
    session.create_file("a.bin", content)
    session.run_until_idle()
    first = session.total_traffic
    session.reset_meter()
    session.create_file("copy.bin", content)
    session.run_until_idle()
    assert session.total_traffic < first / 10
    assert session.client.stats.dedup_skipped_units == 1


def test_no_dedup_service_reuploads():
    session = session_for("Box")
    content = random_content(512 * KB, seed=1)
    session.create_file("a.bin", content)
    session.run_until_idle()
    session.reset_meter()
    session.create_file("copy.bin", content)
    session.run_until_idle()
    assert session.total_traffic > 512 * KB


def test_cross_user_dedup_only_when_scoped():
    def pair(service):
        profile = service_profile(service, AccessMethod.PC)
        sim = Simulator()
        server = CloudServer(dedup=profile.dedup,
                             storage_chunk_size=profile.storage_chunk_size)
        alice = SyncSession(profile, sim=sim, server=server, user="alice")
        bob = SyncSession(profile, sim=sim, server=server, user="bob")
        return alice, bob

    content = random_content(512 * KB, seed=2)

    alice, bob = pair("UbuntuOne")  # cross-user full-file dedup
    alice.create_file("f.bin", content)
    alice.run_until_idle()
    bob.create_file("f.bin", content)
    bob.run_until_idle()
    assert bob.total_traffic < 50 * KB

    alice, bob = pair("Dropbox")  # same-user only
    alice.create_file("f.bin", content)
    alice.run_until_idle()
    bob.create_file("f.bin", content)
    bob.run_until_idle()
    assert bob.total_traffic > 512 * KB


def test_rename_after_source_recreated_keeps_both_files():
    """Regression: a deferred rename whose *source* path was recreated
    locally used to ship as a metadata-only server move, tombstoning the
    recreated file.  Sequence (distilled from a failing random op run):
    create a → rename a→b → let b sync → rename b→c → recreate b → write c.
    Both b and c must survive on the cloud."""
    session = session_for("UbuntuOne", AccessMethod.PC)
    session.create_file("a.bin", random_content(0, seed=1))
    session.folder.rename("a.bin", "b.bin")
    session.advance(3.5)  # long enough for b.bin to reach the server
    session.folder.rename("b.bin", "c.bin")
    session.create_file("b.bin", random_content(0, seed=2))
    session.write_file("c.bin", random_content(1, seed=3))
    session.run_until_idle()
    for path in ("b.bin", "c.bin"):
        assert session.server.download("user1", path) == \
            session.folder.get(path).data, path


def test_download_restores_content_and_meters_down():
    session = session_for("Dropbox")
    content = random_content(256 * KB, seed=3)
    session.create_file("a.bin", content)
    session.run_until_idle()
    session.reset_meter()
    fetched = session.download("a.bin")
    assert fetched.data == content.data
    assert session.meter.down.payload > 0
    assert session.meter.up.payload == 0


def test_shadow_tracks_synced_state():
    session = session_for("Dropbox")
    session.create_file("a.bin", random_content(64 * KB, seed=1))
    session.run_until_idle()
    session.append("a.bin", random_content(1 * KB, seed=2))
    session.run_until_idle()
    session.append("a.bin", random_content(1 * KB, seed=3))
    session.run_until_idle()
    assert session.client.stats.delta_syncs == 2
    assert session.server.download("user1", "a.bin") == \
        session.folder.get("a.bin").data


def test_update_tracking_matches_folder_events():
    session = session_for()
    session.create_file("a.bin", random_content(100, seed=1))
    session.append("a.bin", random_content(50, seed=2))
    assert session.data_update_bytes == 150


def test_tue_requires_positive_denominator():
    session = session_for()
    with pytest.raises(ValueError):
        session.tue()

"""Smoke/unit tests for the Table 5 findings verifier."""

import pytest

from repro.core import Finding, verify_findings


@pytest.fixture(scope="module")
def findings():
    # Small trace scale keeps this under test-suite time; the bench runs
    # the calibrated scale.
    return verify_findings(trace_scale=0.15)


def test_all_sections_covered(findings):
    sections = {finding.section for finding in findings}
    assert sections == {"4.1", "4.2", "4.3", "5.1", "5.2", "6.1", "6.2"}


def test_every_finding_holds(findings):
    failed = [finding for finding in findings if not finding.holds]
    assert not failed, failed


def test_evidence_strings_are_informative(findings):
    for finding in findings:
        assert finding.evidence
        assert any(char.isdigit() for char in finding.evidence), finding


def test_finding_count_matches_table5(findings):
    # Seven findings, several with two executable claims.
    assert len(findings) == 10

"""Tests for Algorithm 1 (iterative self-duplication) and the defer probe."""

import pytest

from repro.client import AccessMethod, SyncSession, service_profile
from repro.cloud import CloudServer, DedupConfig
from repro.core import (
    detect_full_file_dedup,
    infer_sync_deferment,
    iterative_self_duplication,
)
from repro.core.algorithm1 import _paired_sessions, experiment5_dedup
from repro.simnet import Simulator, mn_link
from repro.units import KB, MB


def custom_session(dedup: DedupConfig, storage_chunk=None) -> SyncSession:
    """A Dropbox-like client against a cloud with a custom dedup config."""
    profile = service_profile("Box", AccessMethod.PC)  # plain full-file client
    server = CloudServer(dedup=dedup, storage_chunk_size=storage_chunk)
    # Override the profile's dedup with the server's (negotiation follows
    # profile.dedup.enabled, so rebuild the profile).
    from dataclasses import replace
    profile = replace(profile, dedup=dedup, storage_chunk_size=storage_chunk)
    return SyncSession(profile, server=server)


def test_detect_full_file_dedup_positive_and_negative():
    yes = custom_session(DedupConfig.full_file())
    assert detect_full_file_dedup(yes, size=256 * KB)
    no = custom_session(DedupConfig.none())
    assert not detect_full_file_dedup(no, size=256 * KB)


def test_self_duplication_finds_power_of_two_block():
    session = custom_session(DedupConfig.block(1 * MB), storage_chunk=1 * MB)
    result = iterative_self_duplication(session, initial_guess=256 * KB,
                                        max_block=8 * MB)
    assert result.granularity == 1 * MB
    assert result.full_file  # block dedup implies full-file dedup


def test_self_duplication_confirmation_rejects_multiple_of_b():
    """Starting *above* B at a multiple must not fool the probe."""
    session = custom_session(DedupConfig.block(1 * MB), storage_chunk=1 * MB)
    result = iterative_self_duplication(session, initial_guess=4 * MB,
                                        max_block=8 * MB)
    assert result.granularity == pytest.approx(1 * MB, rel=0.3)


def test_self_duplication_reports_none_without_dedup():
    session = custom_session(DedupConfig.none())
    result = iterative_self_duplication(session, initial_guess=256 * KB,
                                        max_block=2 * MB)
    assert result.granularity is None
    assert not result.full_file
    assert result.label() == "No"


def test_self_duplication_full_file_only():
    session = custom_session(DedupConfig.full_file())
    result = iterative_self_duplication(session, initial_guess=256 * KB,
                                        max_block=2 * MB)
    assert result.granularity is None
    assert result.full_file
    assert result.label() == "Full file"


def test_probe_rounds_are_logarithmic():
    session = custom_session(DedupConfig.block(2 * MB), storage_chunk=2 * MB)
    result = iterative_self_duplication(session, initial_guess=256 * KB,
                                        max_block=16 * MB)
    assert result.granularity == 2 * MB
    # O(log B) iterations: doubling 256K→2M is 3 rounds, plus the hit.
    assert len(result.rounds) <= 6


def test_table9_dropbox_and_ubuntuone():
    """The two interesting rows of Table 9, end to end."""
    findings = {f.service: f
                for f in experiment5_dedup(services=("Dropbox", "UbuntuOne"),
                                           max_block=8 * MB)}
    assert findings["Dropbox"].same_user == "4 MB"
    assert findings["Dropbox"].cross_user == "No"
    assert findings["UbuntuOne"].same_user == "Full file"
    assert findings["UbuntuOne"].cross_user == "Full file"


def test_table9_no_dedup_service():
    findings = experiment5_dedup(services=("SugarSync",), max_block=2 * MB)
    assert findings[0].same_user == "No"
    assert findings[0].cross_user == "No"


def test_paired_sessions_share_cloud_and_clock():
    alice, bob = _paired_sessions("Dropbox", AccessMethod.PC)
    assert alice.server is bob.server
    assert alice.sim is bob.sim
    assert alice.client.user != bob.client.user


# ---------------------------------------------------------------------------
# defer probe
# ---------------------------------------------------------------------------

def test_defer_probe_finds_google_drive():
    result = infer_sync_deferment("GoogleDrive")
    assert result.deferment == pytest.approx(4.2, abs=0.15)


def test_defer_probe_finds_onedrive():
    result = infer_sync_deferment("OneDrive")
    assert result.deferment == pytest.approx(10.5, abs=0.2)


def test_defer_probe_finds_sugarsync():
    result = infer_sync_deferment("SugarSync")
    assert result.deferment == pytest.approx(6.0, abs=0.2)


def test_defer_probe_rejects_no_defer_service():
    result = infer_sync_deferment("Dropbox")
    assert result.deferment is None

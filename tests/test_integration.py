"""Cross-module integration scenarios: multi-user, multi-step workflows."""

import pytest

from repro.client import (
    AccessMethod,
    ByteCounterDefer,
    SyncSession,
    service_profile,
)
from repro.cloud import CloudServer, NotFound
from repro.content import random_content, text_content
from repro.simnet import Simulator, mn_link
from repro.units import KB, MB


def shared_cloud(service="Dropbox", users=("alice", "bob")):
    profile = service_profile(service, AccessMethod.PC)
    sim = Simulator()
    server = CloudServer(dedup=profile.dedup,
                         storage_chunk_size=profile.storage_chunk_size)
    return sim, server, [
        SyncSession(profile, sim=sim, server=server, user=user,
                    link_spec=mn_link())
        for user in users
    ]


def test_two_users_namespaces_are_isolated():
    _, server, (alice, bob) = shared_cloud()
    alice.create_file("doc.bin", random_content(10 * KB, seed=1))
    alice.run_until_idle()
    with pytest.raises(NotFound):
        server.download("bob", "doc.bin")
    assert server.download("alice", "doc.bin")


def test_full_lifecycle_create_modify_delete_restore():
    session = SyncSession("Dropbox", AccessMethod.PC)
    original = random_content(512 * KB, seed=1)
    session.create_file("life.bin", original)
    session.run_until_idle()
    session.modify_random_byte("life.bin", seed=2)
    session.run_until_idle()
    modified = session.folder.get("life.bin")
    session.delete_file("life.bin")
    session.run_until_idle()
    server = session.server
    with pytest.raises(NotFound):
        server.download("user1", "life.bin")
    # Roll back to version 2 (the modification) — fake deletion kept it.
    server.restore_version("user1", "life.bin", 2)
    assert server.download("user1", "life.bin") == modified.data
    # Version 1 (the original) is also intact.
    server.restore_version("user1", "life.bin", 1)
    assert server.download("user1", "life.bin") == original.data


def test_many_files_many_operations_consistency():
    """Torture: interleaved creates/modifies/deletes all converge."""
    session = SyncSession("Dropbox", AccessMethod.PC)
    for index in range(12):
        session.create_file(f"d/f{index}.bin",
                            random_content(8 * KB, seed=index))
    session.run_until_idle()
    for index in range(0, 12, 2):
        session.modify_random_byte(f"d/f{index}.bin", seed=50 + index)
    for index in range(1, 12, 4):
        session.delete_file(f"d/f{index}.bin")
    session.run_until_idle()
    for index in range(12):
        path = f"d/f{index}.bin"
        if index % 4 == 1:
            with pytest.raises(NotFound):
                session.server.download("user1", path)
        else:
            assert session.server.download("user1", path) == \
                session.folder.get(path).data


def test_text_files_compressed_end_to_end():
    session = SyncSession("UbuntuOne", AccessMethod.PC)
    content = text_content(1 * MB, seed=3)
    session.create_file("notes.txt", content)
    session.run_until_idle()
    # Wire bytes well below the file size; cloud content still exact.
    assert session.total_traffic < 0.75 * MB
    assert session.server.download("user1", "notes.txt") == content.data


def test_byte_counter_defer_like_uds():
    """The UDS baseline [36]: TUE ≈ 1 under frequent modifications."""
    profile = service_profile("GoogleDrive", AccessMethod.PC).with_defer(
        lambda: ByteCounterDefer(threshold_bytes=256 * KB, flush_timeout=30.0))
    session = SyncSession(profile)
    session.create_file("log.bin", random_content(0))
    session.run_until_idle()
    session.reset_meter()
    for index in range(64):
        session.append("log.bin", random_content(8 * KB, seed=index))
        session.advance(1.0)
    session.run_until_idle()
    tue = session.tue(64 * 8 * KB)
    assert tue < 3.0


def test_meter_direction_sanity_for_upload_heavy_session():
    session = SyncSession("Box", AccessMethod.PC)
    session.create_file("big.bin", random_content(2 * MB, seed=1))
    session.run_until_idle()
    assert session.meter.up.total > session.meter.down.total
    assert session.meter.up.payload == pytest.approx(2 * MB, rel=0.01)


def test_server_storage_accounting_after_dedup():
    sim, server, (alice, bob) = shared_cloud("UbuntuOne")
    content = random_content(1 * MB, seed=9)
    alice.create_file("x.bin", content)
    alice.run_until_idle()
    bob.create_file("x.bin", content)
    bob.run_until_idle()
    # One physical copy; two logical accounts charged.
    assert server.objects.stored_bytes == pytest.approx(1 * MB, rel=0.01)
    assert server.accounts.get("alice").used_bytes == 1 * MB
    assert server.accounts.get("bob").used_bytes == 1 * MB


def test_simulation_time_advances_realistically():
    session = SyncSession("GoogleDrive", AccessMethod.PC)
    session.create_file("f.bin", random_content(1 * MB, seed=1))
    session.run_until_idle()
    # Defer 4.2 s + upload at 20 Mbps (~0.5 s) + handshakes.
    assert 4.2 < session.sim.now < 20.0
